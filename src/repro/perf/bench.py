"""Old-vs-new kernel benchmark harness (``python -m repro.cli bench``).

Every workload runs twice on identical, seed-fixed inputs: once through
the fast-path kernels (the default backends) and once inside
:func:`repro.perf.reference_kernels` (the pre-fast-path implementations).
For the workloads whose kernels promise bit-identical results — greedy
bundling, the fig13 node sweep, the Theorem 4/5 anchor search — the
harness compares outputs exactly and refuses to report a speedup for a
run whose results diverged.  The TSP ``*-fast`` strategies are heuristic
variants (documented as such), so their entry reports tour quality
instead of identity.

The report is written as JSON (``BENCH_PR7.json`` by default; the
``benchmark`` field follows the file name) so speedup trajectories can
be tracked across PRs — each PR writes its own ``BENCH_PR<k>.json`` with
the same entry keys.  Beyond the kernel entries, three end-to-end
entries measure the serving layers: the cold-vs-warm radius sweep
(``cache_warm_sweep``), the planning service's HTTP throughput at
several client concurrencies (``service_throughput``), and the
service's cold-vs-warm latency percentiles under open-loop burst load
(``service_latency``, built on :mod:`repro.loadgen`).
"""

from __future__ import annotations

import json
import math
import os
import platform
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from .counters import PERF
from .kernels import reference_kernels

#: Workload sizes: full scale (the checked-in ``BENCH_PR<k>.json``) and
#: quick scale (the CI smoke run).
_FULL = {"greedy_n": 400, "greedy_radius": 20.0, "greedy_reps": 5,
         "ellipse_cases": 2000, "tsp_n": 300,
         "soa_n": 1000, "soa_radius": 20.0, "soa_reps": 7,
         "cache_n": 300, "cache_runs": 5,
         "cache_radii": (10.0, 20.0, 30.0, 40.0),
         "service_n": 300, "service_requests": 8,
         "service_concurrency": (1, 4, 16),
         "latency_n": 300, "latency_requests": 8,
         "latency_concurrency": (1, 4),
         "scaling_n": 300, "scaling_requests": 12,
         "scaling_workers": (1, 4),
         "replan_ns": (40, 300, 1000, 2000), "replan_reps": 3}
_QUICK = {"greedy_n": 150, "greedy_radius": 20.0, "greedy_reps": 3,
          "ellipse_cases": 400, "tsp_n": 120,
          "soa_n": 250, "soa_radius": 20.0, "soa_reps": 3,
          "cache_n": 100, "cache_runs": 2,
          "cache_radii": (10.0, 20.0),
          "service_n": 100, "service_requests": 4,
          "service_concurrency": (1, 4),
          "latency_n": 100, "latency_requests": 4,
          "latency_concurrency": (1, 4),
          "scaling_n": 100, "scaling_requests": 6,
          "scaling_workers": (1, 4),
          "replan_ns": (40, 300), "replan_reps": 3}


def _best_of(func: Callable[[], object], reps: int) -> Tuple[float, object]:
    """Return (best wall-clock seconds, last result) over ``reps`` runs."""
    best = math.inf
    result: object = None
    for _ in range(reps):
        started = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best, result


def _entry(name: str, reference_s: float, fast_s: float,
           identical: Optional[bool], detail: Dict) -> Dict:
    return {
        "name": name,
        "reference_s": round(reference_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(reference_s / fast_s, 3) if fast_s > 0 else None,
        "identical": identical,
        "detail": detail,
    }


def _bench_greedy_bundles(sizes: Dict) -> Dict:
    """Greedy bundling (candidates + maximal + cover + materialize)."""
    from ..bundling.greedy import greedy_bundles
    from ..network import uniform_deployment

    n = sizes["greedy_n"]
    network = uniform_deployment(n, 12345)
    radius = sizes["greedy_radius"]
    reps = sizes["greedy_reps"]

    def signature(bundle_set):
        return tuple((tuple(sorted(b.members)), b.anchor.x, b.anchor.y,
                      b.radius) for b in bundle_set)

    fast_s, fast_result = _best_of(
        lambda: greedy_bundles(network, radius), reps)

    def reference_run():
        with reference_kernels():
            return greedy_bundles(network, radius)

    reference_s, reference_result = _best_of(reference_run, reps)
    identical = signature(fast_result) == signature(reference_result)
    return _entry(
        f"greedy_bundles_n{n}", reference_s, fast_s, identical,
        {"radius_m": radius, "bundles": len(fast_result),
         "best_of": reps})


def _bench_soa_candidates_cover(sizes: Dict) -> Dict:
    """SoA candidate enumeration + bitmask cover vs the original
    object-graph stages (the dense-deployment kernel entry).

    Measures the two timed pipeline stages — ``bundling.candidates``
    (family enumeration) and ``bundling.cover`` (greedy selection) — on
    one seed-fixed deployment.  The fast phase runs first on a clean
    heap and a ``gc.collect()`` fences it from the reference phase: the
    reference enumeration allocates ~100k frozensets/Points at n=1000,
    and interleaving the passes measurably pollutes the fast timings.
    ``identical`` gates on the full candidate family (canonical order
    included) and on the exact cover selection sequence.
    """
    import gc

    from ..bundling.bitset import mask_from_indices
    from ..bundling.candidates import (candidate_member_masks,
                                       candidate_member_sets_reference,
                                       maximal_candidates, maximal_masks)
    from ..bundling.greedy import (greedy_cover_masks,
                                   greedy_set_cover_reference)
    from ..geometry.soa import FlatDeployment
    from ..network import uniform_deployment

    n = sizes["soa_n"]
    radius = sizes["soa_radius"]
    reps = sizes["soa_reps"]
    points = uniform_deployment(n, 12345).locations

    # One FlatDeployment per run, exactly like the pipeline (it is
    # shared by enumeration, validation and the distance matrix, and
    # costs well under a millisecond at n=1000).
    flat = FlatDeployment.from_points(points)
    fast_enum_s, fast_masks = _best_of(
        lambda: candidate_member_masks(points, radius, flat=flat), reps)
    fast_maximal = maximal_masks(fast_masks)
    fast_cover_s, fast_cover = _best_of(
        lambda: greedy_cover_masks(fast_maximal, n), reps)
    gc.collect()

    def reference_enum():
        with reference_kernels():
            return candidate_member_sets_reference(points, radius)

    ref_enum_s, ref_sets = _best_of(reference_enum, reps)
    ref_maximal = maximal_candidates(ref_sets)

    def reference_cover():
        with reference_kernels():
            return greedy_set_cover_reference(ref_maximal, n)

    ref_cover_s, ref_cover = _best_of(reference_cover, reps)

    identical = (
        fast_masks == [mask_from_indices(s) for s in ref_sets]
        and list(fast_cover) == [mask_from_indices(s)
                                 for s in ref_cover])
    return _entry(
        f"soa_candidates_cover_n{n}",
        ref_enum_s + ref_cover_s, fast_enum_s + fast_cover_s, identical,
        {"radius_m": radius, "candidates": len(fast_masks),
         "maximal": len(fast_maximal), "bundles": len(fast_cover),
         "reference_candidates_s": round(ref_enum_s, 6),
         "reference_cover_s": round(ref_cover_s, 6),
         "fast_candidates_s": round(fast_enum_s, 6),
         "fast_cover_s": round(fast_cover_s, 6),
         "best_of": reps})


def _bench_soa_distance_matrix(sizes: Dict) -> Dict:
    """Flat-buffer distance rows vs the per-Point reference build."""
    from ..geometry import Point
    from ..tsp.distance import DistanceMatrix

    rng = random.Random(9099)
    n = sizes["soa_n"]
    points = [Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
              for _ in range(n)]

    fast_s, fast_matrix = _best_of(lambda: DistanceMatrix(points), 3)

    def reference_run():
        with reference_kernels():
            return DistanceMatrix(points)

    reference_s, reference_matrix = _best_of(reference_run, 3)
    identical = all(fast_matrix.row(i) == reference_matrix.row(i)
                    for i in range(n))
    return _entry(
        f"soa_distance_matrix_n{n}", reference_s, fast_s, identical,
        {"cities": n, "best_of": 3})


def _bench_fig13_sweep(quick: bool) -> Dict:
    """The fig13 node sweep: full planner pipelines over seeded networks."""
    from ..experiments.config import ExperimentConfig
    from ..experiments.runner import run_averaged
    from ..planners import PAPER_ALGORITHMS

    config = ExperimentConfig.fast()
    node_counts = config.node_counts[:2] if quick else config.node_counts
    algorithms = list(PAPER_ALGORITHMS)

    def sweep():
        rows = []
        for node_count in node_counts:
            aggregated = run_averaged(config, node_count,
                                      config.default_radius, algorithms,
                                      "fig13")
            rows.append({
                name: {metric: (cell.mean, cell.std, cell.count)
                       for metric, cell in aggregated[name].items()}
                for name in algorithms})
        return rows

    started = time.perf_counter()
    fast_rows = sweep()
    fast_s = time.perf_counter() - started

    started = time.perf_counter()
    with reference_kernels():
        reference_rows = sweep()
    reference_s = time.perf_counter() - started

    identical = fast_rows == reference_rows
    return _entry(
        "fig13_node_sweep", reference_s, fast_s, identical,
        {"node_counts": list(node_counts), "runs": config.runs,
         "algorithms": algorithms})


def _bench_ellipse_kernel(sizes: Dict) -> Dict:
    """The Theorem 4/5 anchor search (min focal-distance sum on a circle)."""
    from ..geometry import Point
    from ..geometry.ellipse import min_focal_sum_on_circle

    rng = random.Random(777)
    cases = []
    for _ in range(sizes["ellipse_cases"]):
        center = Point(rng.uniform(-50, 50), rng.uniform(-50, 50))
        radius = rng.uniform(0.1, 30.0)
        focus1 = Point(rng.uniform(-80, 80), rng.uniform(-80, 80))
        focus2 = Point(rng.uniform(-80, 80), rng.uniform(-80, 80))
        cases.append((center, radius, focus1, focus2))

    def run_all():
        return [min_focal_sum_on_circle(c, r, f1, f2)
                for c, r, f1, f2 in cases]

    fast_s, fast_result = _best_of(run_all, 3)

    def reference_run():
        with reference_kernels():
            return run_all()

    reference_s, reference_result = _best_of(reference_run, 3)
    identical = all(
        fast_point.x == ref_point.x and fast_point.y == ref_point.y
        and fast_sum == ref_sum
        for (fast_point, fast_sum), (ref_point, ref_sum)
        in zip(fast_result, reference_result))
    return _entry(
        f"ellipse_anchor_search_{len(cases)}cases", reference_s, fast_s,
        identical, {"cases": len(cases), "best_of": 3})


def _bench_tsp_fast(sizes: Dict) -> Dict:
    """Neighbor-list local search vs the full sweeps (heuristic entry).

    The ``*-fast`` strategies are documented as approximate variants, so
    this entry reports tour-quality ratio instead of identity
    (``identical`` stays ``None`` and does not gate ``all_identical``).
    """
    from ..geometry import Point
    from ..tsp.distance import DistanceMatrix
    from ..tsp.solver import solve_tsp_matrix

    rng = random.Random(4242)
    n = sizes["tsp_n"]
    points = [Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
              for _ in range(n)]
    distance = DistanceMatrix(points)

    fast_s, fast_tour = _best_of(
        lambda: solve_tsp_matrix(distance, "nn+2opt-fast"), 3)
    reference_s, full_tour = _best_of(
        lambda: solve_tsp_matrix(distance, "nn+2opt"), 3)
    fast_len = fast_tour.length(distance)
    full_len = full_tour.length(distance)
    return _entry(
        f"tsp_local_search_n{n}", reference_s, fast_s, None,
        {"fast_length": round(fast_len, 3),
         "full_length": round(full_len, 3),
         "length_ratio": round(fast_len / full_len, 5)})


def _bench_cache_sweep(sizes: Dict) -> Dict:
    """Cold-vs-warm stage-cache radius sweep (cross-run memoization).

    Runs the same radius sweep twice with the stage cache active: the
    cold pass computes and stores every stage, the warm pass replays the
    identical request from the cache.  ``reference_s`` is the cold pass,
    ``fast_s`` the warm one, and ``identical`` gates on the aggregated
    rows being equal — the cache's bit-identity contract, measured
    end-to-end.
    """
    from dataclasses import replace

    from ..cache import reset_cache_state
    from ..experiments.config import ExperimentConfig
    from ..experiments.runner import run_averaged
    from ..planners import PAPER_ALGORITHMS

    n = sizes["cache_n"]
    radii = tuple(sizes["cache_radii"])
    config = replace(ExperimentConfig.fast(), runs=sizes["cache_runs"],
                     node_count=n, radii=radii, use_cache=True,
                     cache_entries=8192)
    algorithms = list(PAPER_ALGORITHMS)

    def sweep():
        rows = []
        for radius in radii:
            aggregated = run_averaged(config, n, radius, algorithms,
                                      "bench_cache")
            rows.append({
                name: {metric: (cell.mean, cell.std, cell.count)
                       for metric, cell in aggregated[name].items()}
                for name in algorithms})
        return rows

    def cache_counters():
        return {"hits": PERF.counter("cache.hit"),
                "misses": PERF.counter("cache.miss")}

    reset_cache_state()
    before = cache_counters()
    started = time.perf_counter()
    cold_rows = sweep()
    cold_s = time.perf_counter() - started
    after_cold = cache_counters()

    started = time.perf_counter()
    warm_rows = sweep()
    warm_s = time.perf_counter() - started
    after_warm = cache_counters()
    reset_cache_state()

    identical = cold_rows == warm_rows
    return _entry(
        f"cache_warm_sweep_n{n}", cold_s, warm_s, identical,
        {"radii": list(radii), "runs": config.runs,
         "algorithms": algorithms,
         "cold": {key: after_cold[key] - before[key]
                  for key in before},
         "warm": {key: after_warm[key] - after_cold[key]
                  for key in before}})


def _bench_service_throughput(sizes: Dict) -> Dict:
    """Planning-service throughput over real HTTP, cold vs warm cache.

    For each concurrency level a fresh server (fresh cache) answers the
    same set of distinct ``/v1/plan`` requests twice: the cold pass
    computes and stores every payload, the warm pass replays them from
    the stage cache.  ``reference_s``/``fast_s`` are the summed cold and
    warm pass times, and ``identical`` gates on every request's cold
    and warm payload bytes being equal — the service's byte-identity
    contract, measured end-to-end through the wire.
    """
    import threading
    import urllib.request
    from ..service import ServiceConfig, start_server, stop_server

    n = sizes["service_n"]
    count = sizes["service_requests"]
    levels = sizes["service_concurrency"]
    bodies = [json.dumps({
        "schema": "bundle-charging/request/v1",
        "deployment": {"kind": "uniform", "n": n, "seed": seed},
        "planner": "BC",
        "radius_m": 20.0,
    }).encode("utf-8") for seed in range(count)]

    def fire(url: str, body: bytes) -> Dict:
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=600) as response:
            return json.loads(response.read().decode("utf-8"))

    def pass_over(url: str, concurrency: int) -> Tuple[float, List]:
        payloads: List[Optional[str]] = [None] * len(bodies)

        def worker(offset: int) -> None:
            for index in range(offset, len(bodies), concurrency):
                document = fire(url, bodies[index])
                payloads[index] = json.dumps(
                    document.get("payload"), sort_keys=True,
                    separators=(",", ":"))

        threads = [threading.Thread(target=worker, args=(offset,))
                   for offset in range(concurrency)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - started, payloads

    detail: Dict[str, Dict] = {}
    cold_total = 0.0
    warm_total = 0.0
    identical = True
    for level in levels:
        config = ServiceConfig(
            port=0, jobs=min(level, 4),
            queue_limit=max(32, 2 * count), timeout_s=600.0)
        server, _ = start_server(config)
        url = f"http://{config.host}:{server.port}/v1/plan"
        try:
            cold_s, cold_payloads = pass_over(url, level)
            warm_s, warm_payloads = pass_over(url, level)
        finally:
            stop_server(server)
        identical = (identical and None not in cold_payloads
                     and cold_payloads == warm_payloads)
        cold_total += cold_s
        warm_total += warm_s
        detail[f"c{level}"] = {
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "cold_rps": round(count / cold_s, 2),
            "warm_rps": round(count / warm_s, 2),
        }
    return _entry(
        f"service_throughput_n{n}", cold_total, warm_total, identical,
        {"requests": count, "planner": "BC", "levels": detail})


def _bench_service_latency(sizes: Dict) -> Dict:
    """Cold-vs-warm service latency percentiles under open-loop load.

    Built on :mod:`repro.loadgen`: per concurrency level a fresh server
    answers a burst of distinct ``/v1/plan`` requests (every arrival
    scheduled at t=0, so the recorder's coordinated-omission-safe
    latencies include queueing at saturation), then the identical burst
    again warm from the stage cache.  ``reference_s``/``fast_s`` are
    the summed cold/warm burst durations; the percentile decomposition
    per level lives in ``detail``.  ``identical`` stays ``None`` —
    payload identity over the wire is already gated by
    ``service_throughput``.
    """
    from ..loadgen.mix import build_pool
    from ..loadgen.runner import run_load, serialize_pool
    from ..service import ServiceConfig, start_server, stop_server

    n = sizes["latency_n"]
    count = sizes["latency_requests"]
    levels = sizes["latency_concurrency"]
    bodies = serialize_pool(build_pool(count, n, "BC"))
    offsets = [0.0] * count
    assignment = list(range(count))

    def percentiles(summary: Dict) -> Dict:
        latency = summary["latency_s"]
        return {key: (round(latency[key], 6)
                      if latency[key] is not None else None)
                for key in ("p50", "p95", "p99", "max")}

    detail: Dict[str, Dict] = {}
    cold_total = 0.0
    warm_total = 0.0
    for level in levels:
        config = ServiceConfig(
            port=0, jobs=min(level, 4),
            queue_limit=max(32, 2 * count), timeout_s=600.0)
        server, _ = start_server(config)
        url = f"http://{config.host}:{server.port}/v1/plan"
        try:
            cold_rec, cold_s = run_load(url, offsets, bodies,
                                        assignment, timeout_s=600.0,
                                        concurrency=level)
            warm_rec, warm_s = run_load(url, offsets, bodies,
                                        assignment, timeout_s=600.0,
                                        concurrency=level)
        finally:
            stop_server(server)
        cold_total += cold_s
        warm_total += warm_s
        detail[f"c{level}"] = {
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "cold": percentiles(cold_rec.summary()),
            "warm": percentiles(warm_rec.summary()),
            "errors": cold_rec.errors + warm_rec.errors,
        }
    return _entry(
        f"service_latency_n{n}", cold_total, warm_total, None,
        {"requests": count, "planner": "BC", "levels": detail})


def _bench_service_scaling(sizes: Dict) -> Dict:
    """Horizontal scaling: pre-forked pool vs single-process server.

    For each worker count a fresh deployment (fresh shared cache)
    answers a full-backlog burst of distinct cold ``/v1/plan``
    requests — the achieved rate under a saturated backlog *is* the
    saturation throughput — then the identical burst again warm from
    the shared on-disk tier.  ``reference_s``/``fast_s`` are the cold
    burst times of the first and last worker counts, so ``speedup`` is
    the measured horizontal scaling factor.  ``identical`` gates on
    every payload being byte-equal across worker counts and across
    cold/warm — the dispatcher must not change a single byte.

    The pool forks *processes*, so the scaling ceiling is the CPU
    actually granted to the container, reported honestly as
    ``effective_cores`` in the detail (a 4-worker pool on ~2 granted
    cores cannot reach 4x, or even 2.5x, no matter how good the
    dispatcher is).
    """
    import hashlib
    import tempfile
    import urllib.request
    from ..loadgen.mix import build_pool
    from ..loadgen.runner import run_load, serialize_pool
    from ..service import ServiceConfig, start_server, stop_server
    from ..service.pool import start_pool, stop_pool

    def payload_sha(url: str, body: bytes) -> str:
        request = urllib.request.Request(
            url, data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=600) as response:
            document = json.loads(response.read().decode("utf-8"))
        canonical = json.dumps(document.get("payload"), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    n = sizes["scaling_n"]
    count = sizes["scaling_requests"]
    worker_counts = [w for w in sizes["scaling_workers"]
                     if w == 1 or hasattr(os, "fork")]
    bodies = serialize_pool(build_pool(count, n, "BC"))
    offsets = [0.0] * count
    assignment = list(range(count))

    try:
        effective_cores = len(os.sched_getaffinity(0))
    except AttributeError:
        effective_cores = os.cpu_count() or 1

    detail: Dict[str, Dict] = {
        "requests": count, "planner": "BC",
        "effective_cores": effective_cores,
    }
    cold_times: List[float] = []
    payload_digests: List[Tuple[str, ...]] = []
    identical = True
    for workers in worker_counts:
        with tempfile.TemporaryDirectory(prefix="bc-bench-") as warm:
            config = ServiceConfig(
                port=0, jobs=2, workers=workers,
                queue_limit=max(32, 2 * count), timeout_s=600.0,
                cache_dir=warm)
            if workers > 1:
                server, _ = start_pool(config)
            else:
                server, _ = start_server(config)
            url = f"http://{config.host}:{server.port}/v1/plan"
            try:
                cold_rec, cold_s = run_load(
                    url, offsets, bodies, assignment,
                    timeout_s=600.0, concurrency=count)
                warm_rec, warm_s = run_load(
                    url, offsets, bodies, assignment,
                    timeout_s=600.0, concurrency=count)
                # Warm replay of every body — cheap, and the digest
                # tuple must be equal across worker counts.
                digests = tuple(payload_sha(url, body)
                                for body in bodies)
            finally:
                if workers > 1:
                    stop_pool(server)
                else:
                    stop_server(server)
        identical = identical and cold_rec.errors == 0 \
            and warm_rec.errors == 0
        cold_times.append(cold_s)
        payload_digests.append(digests)
        detail[f"w{workers}"] = {
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "cold_rps": round(count / cold_s, 3),
            "warm_rps": round(count / warm_s, 3),
            "routing": cold_rec.summary()["workers"],
        }
    identical = identical and len(set(payload_digests)) == 1
    return _entry(
        f"service_scaling_n{n}", cold_times[0], cold_times[-1],
        identical, detail)


def _bench_replan_latency(sizes: Dict) -> Dict:
    """Incremental repair vs a full replan for single-sensor churn.

    Per deployment size, a retained :class:`repro.delta.PlanState`
    absorbs one seeded drift move (a ±5 m teleport) two ways:
    ``fast_s`` is the dirty-region repair
    (:func:`repro.delta.repair_plan`), ``reference_s`` the full replan
    of the post-edit network — summed over the sizes so ``speedup`` is
    the aggregate delta advantage (per-size speedups live in
    ``detail``).  ``identical`` gates on the empty-delta contract: a
    no-op repair must return the retained state object with a
    byte-identical serialized plan, at every size.  Repair quality
    (energy within 1.05x of the full replan) is gated separately by the
    live-HTTP delta smoke; here the shadow energy ratio is reported in
    the detail for trajectory tracking.
    """
    from ..charging import CostParameters, FriisChargingModel
    from ..delta.engine import (apply_delta_set, full_replan,
                                initial_state, repair_plan)
    from ..delta.events import DeltaSet, SensorMoved
    from ..delta.session import plan_to_dict
    from ..network import uniform_deployment
    from ..planners import make_planner
    from ..tour import plan_total_energy

    radius = 10.0
    field = 100.0
    reps = sizes["replan_reps"]
    cost = CostParameters(model=FriisChargingModel())
    detail: Dict[str, Dict] = {"radius_m": radius,
                               "field_side_m": field, "best_of": reps}
    fast_total = 0.0
    reference_total = 0.0
    identical = True
    for n in sizes["replan_ns"]:
        network = uniform_deployment(n, 12345, field_side_m=field)
        planner = make_planner("BC", radius)
        plan = planner.plan(network, cost)
        state = initial_state(network, plan, radius, planner.name,
                              planner.tsp_strategy, planner.seed)

        # The empty-delta identity gate.
        noop_state, noop_report = repair_plan(state, [], cost)
        identical = (identical and noop_state is state
                     and noop_report.strategy == "noop"
                     and plan_to_dict(noop_state.plan)
                     == plan_to_dict(state.plan))

        rng = random.Random(1000 + n)
        index = rng.randrange(n)
        origin = state.locations[index]
        move = SensorMoved(
            index=index,
            x=min(field, max(0.0, origin.x + rng.uniform(-5.0, 5.0))),
            y=min(field, max(0.0, origin.y + rng.uniform(-5.0, 5.0))))

        fast_s, (repaired, report) = _best_of(
            lambda: repair_plan(state, [move], cost), reps)
        locations, alive, _, _ = apply_delta_set(state,
                                                 DeltaSet((move,)))
        reference_s, baseline = _best_of(
            lambda: full_replan(locations, alive, state, cost), reps)
        repaired_j = plan_total_energy(repaired.plan,
                                       repaired.locations, cost)
        baseline_j = plan_total_energy(baseline, locations, cost)
        fast_total += fast_s
        reference_total += reference_s
        detail[f"n{n}"] = {
            "fast_s": round(fast_s, 6),
            "reference_s": round(reference_s, 6),
            "speedup": round(reference_s / fast_s, 3)
            if fast_s > 0 else None,
            "strategy": report.strategy,
            "dirty_sensors": report.dirty_sensors,
            "energy_ratio": round(repaired_j / baseline_j, 5)
            if baseline_j > 0 else None,
        }
    return _entry("replan_latency", reference_total, fast_total,
                  identical, detail)


def run_benchmarks(quick: bool = False,
                   out_path: Optional[str] = "BENCH_PR7.json",
                   only: Optional[str] = None) -> Dict:
    """Run every kernel benchmark and (optionally) write the JSON report.

    Args:
        quick: use CI-scale workloads.
        out_path: where to write the report; ``None`` skips the write.
            The report's ``benchmark`` field is the file's stem (so
            ``BENCH_PR4.json`` labels itself ``BENCH_PR4``).
        only: run only the workloads whose key contains this substring
            (``--only replan_latency`` is the CI delta gate).

    Returns:
        The report dict; ``report["all_identical"]`` is True when every
        bit-identity workload produced byte-equal results on both
        backends.

    Raises:
        ValueError: when ``only`` matches no workload.
    """
    from ..obs.manifest import build_manifest

    sizes = _QUICK if quick else _FULL
    workloads: List[Tuple[str, Callable[[], Dict]]] = [
        ("greedy_bundles", lambda: _bench_greedy_bundles(sizes)),
        ("soa_candidates_cover",
         lambda: _bench_soa_candidates_cover(sizes)),
        ("soa_distance_matrix",
         lambda: _bench_soa_distance_matrix(sizes)),
        ("ellipse_anchor_search", lambda: _bench_ellipse_kernel(sizes)),
        ("tsp_local_search", lambda: _bench_tsp_fast(sizes)),
        ("fig13_node_sweep", lambda: _bench_fig13_sweep(quick)),
        ("cache_warm_sweep", lambda: _bench_cache_sweep(sizes)),
        ("service_throughput",
         lambda: _bench_service_throughput(sizes)),
        ("service_latency", lambda: _bench_service_latency(sizes)),
        ("service_scaling", lambda: _bench_service_scaling(sizes)),
        ("replan_latency", lambda: _bench_replan_latency(sizes)),
    ]
    if only is not None:
        workloads = [(key, build) for key, build in workloads
                     if only in key]
        if not workloads:
            raise ValueError(f"--only {only!r} matches no workload")
    PERF.reset()
    started = time.perf_counter()
    entries: List[Dict] = [build() for _key, build in workloads]
    elapsed = time.perf_counter() - started
    label = (os.path.splitext(os.path.basename(out_path))[0]
             if out_path else "BENCH_PR7")
    report = {
        "benchmark": label,
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "entries": entries,
        "all_identical": all(e["identical"] for e in entries
                             if e["identical"] is not None),
        "perf_counters": PERF.snapshot(),
        # Provenance rides along under its own key; the established
        # keys above stay unchanged for trajectory compatibility.
        "provenance": build_manifest(
            "bench", {"quick": quick, "sizes": dict(sizes),
                      "only": only}, [],
            elapsed),
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
    return report


def render_report(report: Dict) -> str:
    """Human-readable summary of a benchmark report."""
    lines = [f"kernel benchmark ({'quick' if report['quick'] else 'full'} "
             f"scale, python {report['python']})", ""]
    header = f"{'workload':<34} {'ref (s)':>9} {'fast (s)':>9} " \
             f"{'speedup':>8}  identical"
    lines.append(header)
    lines.append("-" * len(header))
    for entry in report["entries"]:
        identical = {True: "yes", False: "NO", None: "n/a"}[
            entry["identical"]]
        lines.append(
            f"{entry['name']:<34} {entry['reference_s']:>9.4f} "
            f"{entry['fast_s']:>9.4f} {entry['speedup']:>7.2f}x  "
            f"{identical}")
    lines.append("")
    verdict = ("all bit-identity checks passed"
               if report["all_identical"]
               else "IDENTITY VIOLATION: fast and reference results differ")
    lines.append(verdict)
    return "\n".join(lines)
