"""Performance layer: counters, timers, kernel backends, benchmarks.

* :data:`PERF` / :class:`PerfRegistry` — process-wide scoped timers and
  op counters the fast-path kernels report into, with JSON emission for
  the ``BENCH_*.json`` trajectory files.
* :func:`reference_kernels` — context manager that reruns the original
  (pre-fast-path) kernel implementations for honest old-vs-new
  comparisons; outputs are bit-identical either way.
* :mod:`repro.perf.bench` — the old-vs-new kernel benchmark harness
  behind ``python -m repro.cli bench``.
"""

from .counters import (PERF, PerfRegistry, perf_add, perf_reset,
                       perf_snapshot, perf_timer)
from .kernels import reference_kernels, using_reference_kernels

__all__ = [
    "PERF",
    "PerfRegistry",
    "perf_add",
    "perf_reset",
    "perf_snapshot",
    "perf_timer",
    "reference_kernels",
    "using_reference_kernels",
]
