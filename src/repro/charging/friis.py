"""The paper's quadratic-attenuation (WISP / Friis) charging model, Eq. 1.

``p_r = alpha / (d + beta)^2 * p_c`` where ``alpha`` bundles the antenna
gains, wavelength, polarization loss and rectifier efficiency, and
``beta`` corrects the Friis equation at short range.  The paper's
simulations use the fit ``alpha = 36``, ``beta = 30`` from Fu et al.
(INFOCOM 2013) and a WISP charging requirement of 2 J.
"""

from __future__ import annotations

import math

from .. import constants
from ..errors import ModelError
from .model import ChargingModel


class FriisChargingModel(ChargingModel):
    """Quadratic-attenuation charging (the paper's Eq. 1)."""

    def __init__(self,
                 alpha: float = constants.ALPHA,
                 beta: float = constants.BETA,
                 source_power_w: float = constants.CHARGE_POWER_W) -> None:
        """Create the model.

        Args:
            alpha: Friis gain constant (m^2); paper value 36.
            beta: short-range correction (m); paper value 30.
            source_power_w: charger radiated power ``p_c`` (W); paper value
                0.9 J/min = 0.015 W.
        """
        super().__init__(source_power_w)
        if alpha <= 0.0 or not math.isfinite(alpha):
            raise ModelError(f"invalid alpha: {alpha!r}")
        if beta <= 0.0 or not math.isfinite(beta):
            raise ModelError(f"invalid beta: {beta!r}")
        self.alpha = alpha
        self.beta = beta

    def received_power(self, distance_m: float) -> float:
        """Return ``alpha / (d + beta)^2 * p_c``; strictly decreasing in d."""
        self._check_distance(distance_m)
        return self.alpha / (distance_m + self.beta) ** 2 * self.source_power_w

    def charge_energy_cost(self, distance_m: float,
                           energy_j: float) -> float:
        """Return ``delta * (d + beta)^2 / alpha``.

        For Eq. 1 the charger-side cost is independent of ``p_c``: a larger
        source power shortens the dwell exactly in proportion.  Overridden
        here in closed form to avoid the inf/0 dance of the generic path.
        """
        self._check_distance(distance_m)
        if energy_j < 0.0:
            raise ModelError(f"negative energy request: {energy_j!r}")
        return energy_j * (distance_m + self.beta) ** 2 / self.alpha

    @classmethod
    def from_friis_parameters(cls, transmit_gain_dbi: float,
                              receive_gain_dbi: float,
                              wavelength_m: float,
                              rectifier_efficiency: float,
                              polarization_loss: float,
                              beta: float,
                              source_power_w: float) -> "FriisChargingModel":
        """Build alpha from first principles (Eq. 1's second formula).

        ``alpha = G_s * G_r * eta * (lambda / (4 pi))^2 / L_p`` with gains
        converted from dBi.  The paper quotes G_s = 8 dBi (WISP reader),
        G_r = 2 dBi (dipole tag), lambda ~= 0.33 m at 915-925 MHz.
        """
        if wavelength_m <= 0.0:
            raise ModelError(f"invalid wavelength: {wavelength_m!r}")
        if not 0.0 < rectifier_efficiency <= 1.0:
            raise ModelError(
                f"rectifier efficiency must be in (0, 1]: "
                f"{rectifier_efficiency!r}")
        if polarization_loss <= 0.0:
            raise ModelError(
                f"invalid polarization loss: {polarization_loss!r}")
        transmit_gain = 10.0 ** (transmit_gain_dbi / 10.0)
        receive_gain = 10.0 ** (receive_gain_dbi / 10.0)
        alpha = (transmit_gain * receive_gain * rectifier_efficiency
                 * (wavelength_m / (4.0 * math.pi)) ** 2
                 / polarization_loss)
        return cls(alpha=alpha, beta=beta, source_power_w=source_power_w)
