"""Cost parameters and energy accounting for a charging mission.

This module is the single place where "energy" is defined, so every
planner, the tour optimizer and the simulator agree on the objective:

``total = E_m * tour_length + sum_i p_c * t_i``    (Eq. 3's objective)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from .. import constants
from ..errors import ModelError
from .friis import FriisChargingModel
from .model import ChargingModel

#: Valid dwell policies (see :class:`CostParameters.dwell_policy`).
DWELL_POLICIES = ("simultaneous", "sequential")


@dataclass(frozen=True)
class CostParameters:
    """Mission-level cost constants (paper Section VI-A defaults).

    Attributes:
        model: the distance-to-power charging model.
        move_cost_j_per_m: ``E_m``, joules per meter of charger travel.
        delta_j: per-sensor required energy (the charging threshold).
        dwell_policy: how a stop's dwell time is sized.
            ``"simultaneous"`` (default, the paper's stated rule from
            Fig. 1): one-to-many charging, dwell = time for the
            *farthest* assigned sensor.  ``"sequential"``: the charger
            effectively serves assigned sensors one at a time, dwell =
            *sum* of per-sensor times — an alternative Eq. 3 reading
            used by the accounting ablation (see EXPERIMENTS.md).
    """

    model: ChargingModel
    move_cost_j_per_m: float = constants.MOVE_COST_J_PER_M
    delta_j: float = constants.DELTA_J
    dwell_policy: str = "simultaneous"

    def __post_init__(self) -> None:
        if self.move_cost_j_per_m < 0.0 or not math.isfinite(
                self.move_cost_j_per_m):
            raise ModelError(
                f"invalid movement cost: {self.move_cost_j_per_m!r}")
        if self.delta_j <= 0.0 or not math.isfinite(self.delta_j):
            raise ModelError(f"invalid delta: {self.delta_j!r}")
        if self.dwell_policy not in DWELL_POLICIES:
            raise ModelError(
                f"unknown dwell policy {self.dwell_policy!r}; choose "
                f"from {DWELL_POLICIES}")

    @staticmethod
    def paper_defaults() -> "CostParameters":
        """Return the exact Section VI-A simulation configuration."""
        return CostParameters(model=FriisChargingModel())

    def movement_energy(self, length_m: float) -> float:
        """Return the energy to move ``length_m`` meters."""
        if length_m < 0.0:
            raise ModelError(f"negative length: {length_m!r}")
        return self.move_cost_j_per_m * length_m

    def dwell_time_for_distance(self, worst_distance_m: float) -> float:
        """Return the stop dwell time for a worst assigned distance.

        The stop must deliver ``delta_j`` to its *farthest* assigned sensor
        (all nearer ones are then over-provisioned automatically, because
        received power is monotone in distance).
        """
        return self.model.charge_time(worst_distance_m, self.delta_j)

    def charging_energy_for_distance(self, worst_distance_m: float) -> float:
        """Return charger-side energy for a stop, ``p_c * dwell``."""
        return self.model.charge_energy_cost(worst_distance_m, self.delta_j)

    def dwell_time_for_distances(self,
                                 distances_m: Iterable[float]) -> float:
        """Return the stop dwell for a full assigned-distance list.

        Dispatches on :attr:`dwell_policy`; an empty list means a stop
        with no assigned sensors, which needs zero dwell.
        """
        distances = list(distances_m)
        if not distances:
            return 0.0
        if self.dwell_policy == "simultaneous":
            return self.model.charge_time(max(distances), self.delta_j)
        return sum(self.model.charge_time(d, self.delta_j)
                   for d in distances)

    def charging_energy_for_distances(self,
                                      distances_m: Iterable[float]
                                      ) -> float:
        """Return charger-side stop energy for an assigned-distance list."""
        distances = list(distances_m)
        if not distances:
            return 0.0
        if self.dwell_policy == "simultaneous":
            return self.model.charge_energy_cost(max(distances),
                                                 self.delta_j)
        return sum(self.model.charge_energy_cost(d, self.delta_j)
                   for d in distances)


@dataclass
class EnergyBreakdown:
    """A mission's energy ledger, split by cause.

    Attributes:
        movement_j: total movement energy.
        charging_j: total charger-side radiated energy over all stops.
        tour_length_m: total tour length.
        dwell_times_s: per-stop dwell durations, in tour order.
    """

    movement_j: float = 0.0
    charging_j: float = 0.0
    tour_length_m: float = 0.0
    dwell_times_s: List[float] = field(default_factory=list)

    @property
    def total_j(self) -> float:
        """Return movement + charging energy."""
        return self.movement_j + self.charging_j

    @property
    def total_charging_time_s(self) -> float:
        """Return the summed dwell time over all stops."""
        return sum(self.dwell_times_s)

    def add_leg(self, length_m: float, cost: CostParameters) -> None:
        """Account one movement leg of ``length_m`` meters."""
        self.tour_length_m += length_m
        self.movement_j += cost.movement_energy(length_m)

    def add_stop(self, dwell_s: float, cost: CostParameters) -> None:
        """Account one charging stop of ``dwell_s`` seconds."""
        if dwell_s < 0.0 or not math.isfinite(dwell_s):
            raise ModelError(f"invalid dwell time: {dwell_s!r}")
        self.dwell_times_s.append(dwell_s)
        self.charging_j += cost.model.source_power_w * dwell_s

    def as_dict(self) -> Dict[str, float]:
        """Return a plain-dict summary (for tables/CSV)."""
        return {
            "total_j": self.total_j,
            "movement_j": self.movement_j,
            "charging_j": self.charging_j,
            "tour_length_m": self.tour_length_m,
            "charging_time_s": self.total_charging_time_s,
            "stops": float(len(self.dwell_times_s)),
        }
