"""Abstract charging model.

The paper's algorithms only ever ask a charging model two questions:

1. *received power* at a given charger-to-sensor distance, and
2. *dwell time* needed to deliver a required energy at that distance.

Everything else (Friis constants, harvester curves, cutoffs) is a model
detail, so alternative hardware plugs in by subclassing
:class:`ChargingModel` — exactly the extensibility the paper claims for
Eq. 1 ("our work can extend to other charging models with the minimum
modification").
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from ..errors import ModelError


class ChargingModel(ABC):
    """Maps charger-sensor distance to received power.

    Attributes:
        source_power_w: the charger's radiated (source) power ``p_c`` in
            watts; the charger spends ``p_c * t`` joules to dwell ``t``
            seconds regardless of how much any sensor harvests.
    """

    def __init__(self, source_power_w: float) -> None:
        if source_power_w <= 0.0 or not math.isfinite(source_power_w):
            raise ModelError(f"invalid source power: {source_power_w!r}")
        self.source_power_w = source_power_w

    @abstractmethod
    def received_power(self, distance_m: float) -> float:
        """Return the power (W) harvested by a sensor ``distance_m`` away."""

    def charge_time(self, distance_m: float, energy_j: float) -> float:
        """Return the dwell time (s) to deliver ``energy_j`` at a distance.

        Returns ``inf`` when the received power at that distance is zero
        (e.g. beyond a hard cutoff), so callers can detect infeasibility.

        Raises:
            ModelError: if ``energy_j`` is negative.
        """
        if energy_j < 0.0:
            raise ModelError(f"negative energy request: {energy_j!r}")
        if energy_j == 0.0:
            return 0.0
        power = self.received_power(distance_m)
        if power <= 0.0:
            return math.inf
        return energy_j / power

    def charge_energy_cost(self, distance_m: float,
                           energy_j: float) -> float:
        """Return the *charger-side* energy (J) to deliver ``energy_j``.

        This is ``p_c * charge_time`` — what the objective in Eq. 3 counts.
        """
        return self.source_power_w * self.charge_time(distance_m, energy_j)

    def efficiency(self, distance_m: float) -> float:
        """Return the power-transfer efficiency ``p_r / p_c`` at a distance."""
        return self.received_power(distance_m) / self.source_power_w

    def _check_distance(self, distance_m: float) -> None:
        """Validate a distance argument; shared by subclasses."""
        if distance_m < 0.0 or not math.isfinite(distance_m):
            raise ModelError(f"invalid distance: {distance_m!r}")
