"""Simulated Powercast hardware (the paper's Section VII testbed).

The real testbed uses a TX91501 3 W transmitter at 915 MHz on a robot car
and P2110 Powerharvester receivers.  We do not have that hardware, so this
module builds the closest synthetic equivalent: a Friis-form front end
parameterized with the TX91501/P2110 datasheet figures, plus a hard
sensitivity cutoff (the P2110 stops harvesting below about -11 dBm RF
input).  The planner code path exercised is *identical* to simulation —
only the ``ChargingModel`` differs, which is the substitution DESIGN.md
documents.
"""

from __future__ import annotations

import math

from .. import constants
from ..errors import ModelError
from .model import ChargingModel

#: Speed of light (m/s) for wavelength computation.
_SPEED_OF_LIGHT = 299_792_458.0

#: P2110 harvester sensitivity: RF input below this power yields nothing.
P2110_SENSITIVITY_W = 10.0 ** (-11.0 / 10.0) / 1000.0  # -11 dBm


class PowercastChargingModel(ChargingModel):
    """Friis propagation + P2110 harvester efficiency + sensitivity cutoff.

    ``p_rf(d) = p_c * G_t * G_r * (lambda / (4 pi (d + d0)))^2`` and the
    harvested power is ``eta * p_rf`` when ``p_rf`` exceeds the harvester
    sensitivity, else zero.  ``d0`` regularizes the near field the same way
    the paper's ``beta`` does.
    """

    def __init__(self,
                 source_power_w: float = constants.TESTBED_TX_POWER_W,
                 frequency_hz: float = constants.TESTBED_FREQUENCY_HZ,
                 transmit_gain_dbi: float = 8.0,
                 receive_gain_dbi: float = 2.0,
                 harvester_efficiency: float = 0.55,
                 near_field_offset_m: float = 0.25,
                 sensitivity_w: float = P2110_SENSITIVITY_W) -> None:
        """Create the model from datasheet-style figures.

        Args:
            source_power_w: TX91501 radiated power (3 W).
            frequency_hz: carrier frequency (915 MHz).
            transmit_gain_dbi: transmitter antenna gain.
            receive_gain_dbi: P2110 patch-antenna gain.
            harvester_efficiency: RF-to-DC conversion efficiency.
            near_field_offset_m: near-field regularization distance.
            sensitivity_w: minimum RF input that produces DC output.
        """
        super().__init__(source_power_w)
        if frequency_hz <= 0.0:
            raise ModelError(f"invalid frequency: {frequency_hz!r}")
        if not 0.0 < harvester_efficiency <= 1.0:
            raise ModelError(
                f"harvester efficiency must be in (0, 1]: "
                f"{harvester_efficiency!r}")
        if near_field_offset_m <= 0.0:
            raise ModelError(
                f"invalid near-field offset: {near_field_offset_m!r}")
        if sensitivity_w < 0.0:
            raise ModelError(f"invalid sensitivity: {sensitivity_w!r}")
        self.wavelength_m = _SPEED_OF_LIGHT / frequency_hz
        self.transmit_gain = 10.0 ** (transmit_gain_dbi / 10.0)
        self.receive_gain = 10.0 ** (receive_gain_dbi / 10.0)
        self.harvester_efficiency = harvester_efficiency
        self.near_field_offset_m = near_field_offset_m
        self.sensitivity_w = sensitivity_w

    def rf_input_power(self, distance_m: float) -> float:
        """Return the RF power (W) arriving at the harvester antenna."""
        self._check_distance(distance_m)
        path = distance_m + self.near_field_offset_m
        gain = (self.wavelength_m / (4.0 * math.pi * path)) ** 2
        return (self.source_power_w * self.transmit_gain
                * self.receive_gain * gain)

    def received_power(self, distance_m: float) -> float:
        """Return harvested DC power; zero below the P2110 sensitivity."""
        rf = self.rf_input_power(distance_m)
        if rf < self.sensitivity_w:
            return 0.0
        return self.harvester_efficiency * rf

    def max_charging_range(self) -> float:
        """Return the distance at which the sensitivity cutoff is reached."""
        if self.sensitivity_w == 0.0:
            return math.inf
        numerator = (self.source_power_w * self.transmit_gain
                     * self.receive_gain)
        path = (self.wavelength_m / (4.0 * math.pi)) * math.sqrt(
            numerator / self.sensitivity_w)
        return max(0.0, path - self.near_field_offset_m)
