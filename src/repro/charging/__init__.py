"""Charging physics: attenuation models and energy accounting.

The paper's Eq. 1 (quadratic WISP/Friis attenuation) is
:class:`FriisChargingModel`; alternative laws and the simulated Powercast
testbed front end plug into the same :class:`ChargingModel` interface.
"""

from .empirical import EmpiricalChargingModel
from .energy import DWELL_POLICIES, CostParameters, EnergyBreakdown
from .friis import FriisChargingModel
from .linear import IdealDiskChargingModel, LinearChargingModel
from .model import ChargingModel
from .powercast import P2110_SENSITIVITY_W, PowercastChargingModel

__all__ = [
    "ChargingModel",
    "CostParameters",
    "DWELL_POLICIES",
    "EmpiricalChargingModel",
    "EnergyBreakdown",
    "FriisChargingModel",
    "IdealDiskChargingModel",
    "LinearChargingModel",
    "P2110_SENSITIVITY_W",
    "PowercastChargingModel",
]
