"""Alternative charging models.

The paper argues its framework extends to other attenuation laws with
"minimum modification"; these models make that concrete and power the
ablation benchmarks:

* :class:`LinearChargingModel` — efficiency decays linearly to a cutoff
  range (a common simplification in earlier literature).
* :class:`IdealDiskChargingModel` — full power inside a range, nothing
  outside.  This is the "charging is instant within proximity" assumption
  of Qi-Ferry-style work [1, 5], the assumption the paper criticizes.
"""

from __future__ import annotations

import math

from ..errors import ModelError
from .model import ChargingModel


class LinearChargingModel(ChargingModel):
    """Received power decays linearly from ``peak`` at d=0 to 0 at cutoff."""

    def __init__(self, peak_efficiency: float, cutoff_m: float,
                 source_power_w: float) -> None:
        """Create the model.

        Args:
            peak_efficiency: ``p_r / p_c`` at zero distance, in (0, 1].
            cutoff_m: distance at which received power reaches zero.
            source_power_w: charger radiated power in watts.
        """
        super().__init__(source_power_w)
        if not 0.0 < peak_efficiency <= 1.0:
            raise ModelError(
                f"peak efficiency must be in (0, 1]: {peak_efficiency!r}")
        if cutoff_m <= 0.0 or not math.isfinite(cutoff_m):
            raise ModelError(f"invalid cutoff: {cutoff_m!r}")
        self.peak_efficiency = peak_efficiency
        self.cutoff_m = cutoff_m

    def received_power(self, distance_m: float) -> float:
        """Return linearly decaying power, zero at and beyond the cutoff."""
        self._check_distance(distance_m)
        if distance_m >= self.cutoff_m:
            return 0.0
        fraction = 1.0 - distance_m / self.cutoff_m
        return self.peak_efficiency * fraction * self.source_power_w


class IdealDiskChargingModel(ChargingModel):
    """Distance-independent charging inside a hard range (legacy baseline)."""

    def __init__(self, efficiency: float, range_m: float,
                 source_power_w: float) -> None:
        """Create the model.

        Args:
            efficiency: constant ``p_r / p_c`` within range, in (0, 1].
            range_m: hard charging range in meters.
            source_power_w: charger radiated power in watts.
        """
        super().__init__(source_power_w)
        if not 0.0 < efficiency <= 1.0:
            raise ModelError(f"efficiency must be in (0, 1]: {efficiency!r}")
        if range_m <= 0.0 or not math.isfinite(range_m):
            raise ModelError(f"invalid range: {range_m!r}")
        self.efficiency_value = efficiency
        self.range_m = range_m

    def received_power(self, distance_m: float) -> float:
        """Return constant power within range, zero outside."""
        self._check_distance(distance_m)
        if distance_m > self.range_m:
            return 0.0
        return self.efficiency_value * self.source_power_w
