"""Empirical (measured-curve) charging model.

The paper's Eq. 1 constants come from fitting measurements; downstream
users often have the measurements but not the fit.  This model skips
the fitting step: give it ``(distance, received power)`` sample pairs
and it interpolates — log-linear between samples (power curves are
near-exponential on the ranges of interest), zero beyond the last
sample, constant below the first.

Monotonicity is enforced at construction: planners assume received
power never *increases* with distance (dwell sizing uses the farthest
member), so a noisy, non-monotone measurement table is rejected
loudly rather than silently producing invalid dwells.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple

from ..errors import ModelError
from .model import ChargingModel


class EmpiricalChargingModel(ChargingModel):
    """Interpolate received power from measured samples."""

    def __init__(self, samples: Sequence[Tuple[float, float]],
                 source_power_w: float) -> None:
        """Create the model.

        Args:
            samples: ``(distance_m, received_power_w)`` pairs; at least
                two, strictly increasing distances, non-increasing and
                positive powers.
            source_power_w: the transmitter's radiated power (used only
                for charger-side cost accounting).

        Raises:
            ModelError: on malformed or non-monotone samples.
        """
        super().__init__(source_power_w)
        points = sorted(samples)
        if len(points) < 2:
            raise ModelError(
                f"need at least two samples, got {len(points)}")
        distances: List[float] = []
        powers: List[float] = []
        for distance, power in points:
            if distance < 0.0 or not math.isfinite(distance):
                raise ModelError(f"invalid sample distance: {distance!r}")
            if power <= 0.0 or not math.isfinite(power):
                raise ModelError(f"invalid sample power: {power!r}")
            if distances and distance <= distances[-1]:
                raise ModelError(
                    f"duplicate sample distance: {distance!r}")
            if powers and power > powers[-1] + 1e-15:
                raise ModelError(
                    "received power must be non-increasing with "
                    f"distance; sample at {distance} m breaks it")
            distances.append(distance)
            powers.append(power)
        self._distances = distances
        self._log_powers = [math.log(p) for p in powers]

    @property
    def max_distance_m(self) -> float:
        """Return the last measured distance (power is 0 beyond it)."""
        return self._distances[-1]

    def received_power(self, distance_m: float) -> float:
        """Log-linear interpolation; clamped below, zero above."""
        self._check_distance(distance_m)
        if distance_m <= self._distances[0]:
            return math.exp(self._log_powers[0])
        if distance_m > self._distances[-1]:
            return 0.0
        index = bisect.bisect_right(self._distances, distance_m) - 1
        index = min(index, len(self._distances) - 2)
        d0 = self._distances[index]
        d1 = self._distances[index + 1]
        t = (distance_m - d0) / (d1 - d0)
        log_power = (self._log_powers[index] * (1.0 - t)
                     + self._log_powers[index + 1] * t)
        return math.exp(log_power)

    @classmethod
    def from_model(cls, model: ChargingModel,
                   distances_m: Sequence[float]
                   ) -> "EmpiricalChargingModel":
        """Tabulate another model (testing/round-trip helper)."""
        samples = [(d, model.received_power(d)) for d in distances_m]
        return cls(samples, source_power_w=model.source_power_w)
