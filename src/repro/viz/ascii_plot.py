"""ASCII visualization of deployments, bundles and charging tours.

No plotting backend is available offline, so the library renders its
"figures" as character rasters — good enough to eyeball a tour (the
role of the paper's Fig. 10) directly in a terminal or a log file.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ExperimentError
from ..geometry import Point

#: Drawing characters, in paint order (later overwrites earlier).
SENSOR_CHAR = "*"
ANCHOR_CHAR = "A"
DEPOT_CHAR = "D"
PATH_CHAR = "."


class AsciiCanvas:
    """A fixed-size character raster over a square field."""

    def __init__(self, field_side_m: float, width: int = 72,
                 height: int = 28) -> None:
        """Create a canvas.

        Args:
            field_side_m: world-coordinate side length being mapped.
            width: raster width in characters.
            height: raster height in characters.
        """
        if field_side_m <= 0.0:
            raise ExperimentError(
                f"invalid field side: {field_side_m!r}")
        if width < 2 or height < 2:
            raise ExperimentError(
                f"canvas too small: {width}x{height}")
        self.field_side_m = field_side_m
        self.width = width
        self.height = height
        self._grid: List[List[str]] = [
            [" "] * width for _ in range(height)]

    def _to_cell(self, point: Point) -> "tuple[int, int]":
        col = int(point.x / self.field_side_m * (self.width - 1))
        row = int(point.y / self.field_side_m * (self.height - 1))
        col = min(self.width - 1, max(0, col))
        # Invert rows so y grows upward like a normal plot.
        row = self.height - 1 - min(self.height - 1, max(0, row))
        return row, col

    def put(self, point: Point, char: str) -> None:
        """Paint one character at a world coordinate."""
        row, col = self._to_cell(point)
        self._grid[row][col] = char

    def line(self, start: Point, end: Point,
             char: str = PATH_CHAR) -> None:
        """Paint a straight path between two world coordinates.

        Existing non-space cells are not overwritten, so markers stay
        visible on top of the path.
        """
        length = start.distance_to(end)
        steps = max(2, int(length / self.field_side_m
                           * max(self.width, self.height) * 2))
        for i in range(steps + 1):
            t = i / steps
            row, col = self._to_cell(start + (end - start) * t)
            if self._grid[row][col] == " ":
                self._grid[row][col] = char

    def render(self) -> str:
        """Return the raster with a simple border."""
        top = "+" + "-" * self.width + "+"
        rows = ["|" + "".join(row) + "|" for row in self._grid]
        return "\n".join([top] + rows + [top])


def render_plan(plan, locations: Sequence[Point], field_side_m: float,
                width: int = 72, height: int = 28,
                legend: bool = True) -> str:
    """Render a :class:`~repro.tour.ChargingPlan` as ASCII art.

    Sensors are ``*``, anchors ``A``, the depot ``D``, tour legs ``.``.

    Args:
        plan: the plan to draw.
        locations: sensor locations.
        field_side_m: world side length of the square field.
        width / height: raster size.
        legend: append a one-line legend.
    """
    canvas = AsciiCanvas(field_side_m, width=width, height=height)
    waypoints = plan.waypoints()
    for i, point in enumerate(waypoints):
        canvas.line(point, waypoints[(i + 1) % len(waypoints)])
    for location in locations:
        canvas.put(location, SENSOR_CHAR)
    for stop in plan.stops:
        canvas.put(stop.position, ANCHOR_CHAR)
    if plan.depot is not None:
        canvas.put(plan.depot, DEPOT_CHAR)
    art = canvas.render()
    if legend:
        art += ("\n  * sensor   A anchor   D depot   . tour "
                f"({len(plan)} stops, {plan.tour_length():.0f} m)")
    return art


def render_network(network, width: int = 72, height: int = 28) -> str:
    """Render a bare deployment (sensors + depot only)."""
    canvas = AsciiCanvas(network.field_side_m, width=width,
                         height=height)
    for sensor in network:
        canvas.put(sensor.location, SENSOR_CHAR)
    canvas.put(network.base_station, DEPOT_CHAR)
    return canvas.render()


def sparkline(values: Sequence[float], width: Optional[int] = None
              ) -> str:
    """Render a numeric series as a unicode sparkline.

    Used by the CLI to give radius sweeps a visual shape cue.
    """
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo = min(values)
    hi = max(values)
    span = hi - lo
    picked = list(values)
    if width is not None and width > 0 and len(picked) > width:
        stride = len(picked) / width
        picked = [picked[int(i * stride)] for i in range(width)]
    if span == 0.0:
        return blocks[0] * len(picked)
    return "".join(
        blocks[min(len(blocks) - 1,
                   int((v - lo) / span * (len(blocks) - 1)))]
        for v in picked)
