"""ASCII visualization (the offline stand-in for the paper's plots)."""

from .ascii_plot import (AsciiCanvas, render_network, render_plan,
                         sparkline)

__all__ = [
    "AsciiCanvas",
    "render_network",
    "render_plan",
    "sparkline",
]
