"""Charging-trajectory planners: the four algorithms of Figs. 12-13.

* :class:`SingleChargingPlanner` (SC) — per-sensor TSP baseline [6].
* :class:`CombineSkipSubstitutePlanner` (CSS) — mobile-ferry baseline
  [36] adapted to charging.
* :class:`BundleChargingPlanner` (BC) — the paper's bundle scheme.
* :class:`BundleChargingOptPlanner` (BC-OPT) — BC + Algorithm 3.
"""

from .base import Planner
from .bc import BundleChargingPlanner
from .bc_opt import BundleChargingOptPlanner
from .css import CombineSkipSubstitutePlanner
from .registry import (PAPER_ALGORITHMS, known_planners, make_planner,
                       planner_names, register_planner)
from .sc import SingleChargingPlanner

__all__ = [
    "PAPER_ALGORITHMS",
    "BundleChargingOptPlanner",
    "BundleChargingPlanner",
    "CombineSkipSubstitutePlanner",
    "Planner",
    "SingleChargingPlanner",
    "known_planners",
    "make_planner",
    "planner_names",
    "register_planner",
]
