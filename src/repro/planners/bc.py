"""Bundle Charging (BC) — the paper's main algorithm without tour
refinement.

Pipeline: Algorithm 2 greedy bundle generation, anchor each bundle at its
members' SED center, TSP over the anchors, dwell per bundle sized by its
farthest member (its SED radius).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..bundling import BundleSet, greedy_bundles
from ..charging import CostParameters
from ..errors import PlanError
from ..network import SensorNetwork
from ..tour import ChargingPlan, stop_for_sensors
from .base import Planner

BundleGenerator = Callable[[SensorNetwork, float], BundleSet]


class BundleChargingPlanner(Planner):
    """Greedy bundles + TSP over bundle anchors."""

    name = "BC"

    def __init__(self, radius: float, tsp_strategy: str = "nn+2opt",
                 use_depot: bool = True, seed: int = 0,
                 bundle_generator: Optional[BundleGenerator] = None
                 ) -> None:
        """Create the planner.

        Args:
            radius: the bundle generation radius ``r``.
            tsp_strategy: TSP pipeline over the anchors.
            use_depot: root the tour at the base station.
            seed: TSP seed.
            bundle_generator: override the OBG algorithm (defaults to the
                paper's greedy Algorithm 2; pass ``grid_bundles`` or
                ``optimal_bundles`` for ablations).
        """
        super().__init__(tsp_strategy=tsp_strategy, use_depot=use_depot,
                         seed=seed)
        if radius < 0.0:
            raise PlanError(f"negative bundle radius: {radius!r}")
        self.radius = radius
        self.bundle_generator = bundle_generator or greedy_bundles

    def generate_bundles(self, network: SensorNetwork) -> BundleSet:
        """Run the configured OBG algorithm."""
        return self.bundle_generator(network, self.radius)

    def plan(self, network: SensorNetwork,
             cost: CostParameters) -> ChargingPlan:
        """Build the bundle-charging plan."""
        bundle_set = self.generate_bundles(network)
        return self.plan_from_bundles(network, cost, bundle_set)

    def plan_from_bundles(self, network: SensorNetwork,
                          cost: CostParameters,
                          bundle_set: BundleSet) -> ChargingPlan:
        """Order a given bundle configuration into a plan.

        Exposed separately so BC-OPT (and tests) can reuse the exact same
        bundle set for both the unoptimized and optimized tours.
        """
        locations = network.locations
        depot = self._depot_for(network)
        anchors = bundle_set.anchors()
        order = self.order_positions(anchors, depot)
        stops = tuple(
            stop_for_sensors(anchors[i],
                             sorted(bundle_set.bundles[i].members),
                             locations, cost)
            for i in order
        )
        plan = ChargingPlan(stops=stops, depot=depot, label=self.name)
        plan.validate_complete(len(network))
        return plan
