"""Single Charging (SC) — the traditional per-sensor baseline [6].

No bundling: the charger drives a TSP tour through *every sensor* and
charges each at zero distance.  Charging efficiency is maximal (shortest
possible dwell per sensor) but the tour is as long as tours get, which is
why SC degrades with density (Fig. 13).
"""

from __future__ import annotations

from ..charging import CostParameters
from ..network import SensorNetwork
from ..tour import ChargingPlan, stop_for_sensors
from .base import Planner


class SingleChargingPlanner(Planner):
    """TSP over all sensors; one stop per sensor at the sensor itself."""

    name = "SC"

    def plan(self, network: SensorNetwork,
             cost: CostParameters) -> ChargingPlan:
        """Build the per-sensor plan."""
        locations = network.locations
        depot = self._depot_for(network)
        order = self.order_positions(locations, depot)
        stops = tuple(
            stop_for_sensors(locations[i], [i], locations, cost)
            for i in order
        )
        plan = ChargingPlan(stops=stops, depot=depot, label=self.name)
        plan.validate_complete(len(network))
        return plan
