"""The planner interface and shared tour-ordering machinery.

A planner turns a :class:`SensorNetwork` plus :class:`CostParameters`
into a :class:`ChargingPlan`.  All four algorithms the paper compares
(SC, CSS, BC, BC-OPT) implement this interface, so the experiment harness
treats them uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from ..charging import CostParameters
from ..errors import PlanError
from ..geometry import Point
from ..network import SensorNetwork
from ..tour import ChargingPlan
from ..tsp import Tour, solve_tsp

try:  # tracing is optional: planning works with repro.obs absent
    from ..obs.tracer import obs_span
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()

try:  # memoization is optional: planning works with repro.cache absent
    from ..cache import get_active_cache, stage_memo
except ImportError:  # pragma: no cover - repro.cache stripped/blocked
    def get_active_cache():  # type: ignore[misc]
        return None

    def stage_memo(stage, params_fn, compute):  # type: ignore[misc]
        return compute()


class Planner(ABC):
    """Base class for charging-trajectory planners.

    Attributes:
        name: short algorithm label used in result tables.
        tsp_strategy: which TSP pipeline orders the stops.
        use_depot: when True the tour starts and ends at the network's
            base station, as the paper's mission model prescribes.
    """

    name: str = "planner"

    def __init__(self, tsp_strategy: str = "nn+2opt",
                 use_depot: bool = True, seed: int = 0) -> None:
        self.tsp_strategy = tsp_strategy
        self.use_depot = use_depot
        self.seed = seed

    @abstractmethod
    def plan(self, network: SensorNetwork,
             cost: CostParameters) -> ChargingPlan:
        """Produce a complete charging plan for ``network``."""

    def _depot_for(self, network: SensorNetwork) -> Optional[Point]:
        """Return the depot to use, honoring ``use_depot``."""
        return network.base_station if self.use_depot else None

    def order_positions(self, positions: Sequence[Point],
                        depot: Optional[Point]) -> List[int]:
        """Return visiting order (indices into ``positions``) via TSP.

        When a depot is given it is appended as an extra TSP city and the
        tour is rotated to start right after it, so the returned order is
        the stop sequence of a depot-rooted round trip.
        """
        n = len(positions)
        if n == 0:
            return []
        if n == 1:
            return [0]
        with obs_span("bto.tsp", cities=n, strategy=self.tsp_strategy,
                      depot=depot is not None):
            cities = list(positions)
            if depot is not None:
                cities.append(depot)
            # The raw solver order is the memoized value (``tsp`` stage);
            # the depot rotation below is a cheap pure function of it.
            raw_order = stage_memo(
                "tsp",
                lambda: {"points": cities, "strategy": self.tsp_strategy,
                         "seed": self.seed},
                lambda: self._solve_order(cities))
            if depot is not None:
                tour = Tour(list(raw_order))
                rooted = tour.rotated_to_start(n)  # depot has index n
                order = [city for city in rooted if city != n]
            else:
                order = list(raw_order)
            if sorted(order) != list(range(n)):
                raise PlanError("TSP ordering lost or duplicated stops")
            return order

    def _solve_order(self, cities: Sequence[Point]) -> List[int]:
        """Run the TSP solver, threading warm-start hints when enabled.

        With an active cache in ``warm_start`` mode, local search starts
        from the last tour of the same (strategy, size) — e.g. the
        previous radius of a sweep — and the result becomes the next
        hint.  The cache skips memoizing the ``tsp`` stage in this mode,
        since the output depends on hint state, not only on the inputs.
        """
        cache = get_active_cache()
        initial = None
        if cache is not None and cache.warm_start:
            initial = cache.tsp_hint(self.tsp_strategy, len(cities))
        tour = solve_tsp(cities, strategy=self.tsp_strategy,
                         seed=self.seed, initial_order=initial)
        if cache is not None and cache.warm_start:
            cache.store_tsp_hint(self.tsp_strategy, len(cities),
                                 tour.order)
        return tour.order
