"""Bundle Charging with tour Optimization (BC-OPT) — the paper's full
scheme.

BC's plan, then Algorithm 3: every anchor is re-optimized against its
tour neighbours via the Theorem 4/5 ellipse-tangency search, trading a
longer worst charging distance for shorter tour legs whenever that lowers
total energy.
"""

from __future__ import annotations

from typing import Optional

from ..charging import CostParameters
from ..network import SensorNetwork
from ..tour import (ChargingPlan, TourOptimizationReport, optimize_tour)
from .bc import BundleChargingPlanner, BundleGenerator

try:  # memoization is optional: planning works with repro.cache absent
    from ..cache import stage_memo
except ImportError:  # pragma: no cover - repro.cache stripped/blocked
    def stage_memo(stage, params_fn, compute):  # type: ignore[misc]
        return compute()


class BundleChargingOptPlanner(BundleChargingPlanner):
    """BC + Algorithm 3 anchor refinement."""

    name = "BC-OPT"

    def __init__(self, radius: float, tsp_strategy: str = "nn+2opt",
                 use_depot: bool = True, seed: int = 0,
                 bundle_generator: Optional[BundleGenerator] = None,
                 max_sweeps: int = 8, radius_steps: int = 24) -> None:
        """Create the planner.

        Args:
            radius: bundle generation radius ``r``.
            tsp_strategy: TSP pipeline over the anchors.
            use_depot: root the tour at the base station.
            seed: TSP seed.
            bundle_generator: OBG algorithm override (see BC).
            max_sweeps: Algorithm 3 pass limit.
            radius_steps: Theorem 4 displacement discretization ``h``.
        """
        super().__init__(radius, tsp_strategy=tsp_strategy,
                         use_depot=use_depot, seed=seed,
                         bundle_generator=bundle_generator)
        self.max_sweeps = max_sweeps
        self.radius_steps = radius_steps
        self.last_report: Optional[TourOptimizationReport] = None

    def plan(self, network: SensorNetwork,
             cost: CostParameters) -> ChargingPlan:
        """Build the BC plan, then refine anchors with Algorithm 3."""
        base_plan = super().plan(network, cost)

        def _stage_params():
            return {
                "stops": [[stop.position, stop.sensors, stop.dwell_s]
                          for stop in base_plan.stops],
                "depot": base_plan.depot,
                "locations": list(network.locations),
                "cost": cost,
                "radius": self.radius,
                "max_sweeps": self.max_sweeps,
                "radius_steps": self.radius_steps,
            }

        optimized, report = stage_memo(
            "anchor_opt", _stage_params,
            lambda: optimize_tour(
                base_plan, network.locations, cost,
                bundle_radius=self.radius,
                max_sweeps=self.max_sweeps,
                radius_steps=self.radius_steps))
        self.last_report = report
        return optimized.with_label(self.name)
