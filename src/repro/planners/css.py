"""Combine-Skip-Substitute (CSS) — He, Pan & Xu's mobile-ferry baseline.

CSS was designed for data collection: the ferry must come within a
communication range ``r`` of every sensor, and three tour-shortening
passes are applied to an initial per-sensor TSP tour:

* **Combine** — merge consecutive stops whose range disks admit a common
  stop position (here: the run of sensors fits in a radius-``r`` disk).
* **Skip** — drop a stop whose feasible disk the remaining path already
  crosses, stopping at the crossing point instead.
* **Substitute** — slide each stop to the feasible point nearest the
  surrounding path, shortening the two adjacent legs.

Adapted to charging, the dwell at each stop follows Eq. 1 with the
*actual* stop-to-sensor distances.  CSS therefore shortens the tour like
bundle charging does, but chooses stop positions for path length only —
it never trades charging efficiency against movement, which is exactly
the deficiency the paper's Figs. 12-13 expose.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..charging import CostParameters
from ..errors import PlanError
from ..geometry import (Disk, Point, Segment, fits_in_radius,
                        smallest_enclosing_disk)
from ..network import SensorNetwork
from ..tour import ChargingPlan, stop_for_sensors
from .base import Planner


class _Group:
    """A combined stop: member sensors plus a feasible stop position."""

    __slots__ = ("members", "center", "slack", "position")

    def __init__(self, members: List[int], center: Point, slack: float,
                 position: Point) -> None:
        self.members = members
        self.center = center      # SED center of the members
        self.slack = slack        # r - SED radius: feasible-disk radius
        self.position = position  # current stop position

    def feasible_disk(self) -> Disk:
        """Positions guaranteed within range of every member."""
        return Disk(self.center, max(0.0, self.slack))


class CombineSkipSubstitutePlanner(Planner):
    """The CSS baseline with a range parameter ``radius``."""

    name = "CSS"

    def __init__(self, radius: float, tsp_strategy: str = "nn+2opt",
                 use_depot: bool = True, seed: int = 0,
                 substitute_rounds: int = 3) -> None:
        """Create the planner.

        Args:
            radius: the per-sensor communication/charging range ``r``.
            tsp_strategy: TSP pipeline for the initial per-sensor tour.
            use_depot: root the tour at the base station.
            seed: TSP seed.
            substitute_rounds: sweeps of the Substitute pass.
        """
        super().__init__(tsp_strategy=tsp_strategy, use_depot=use_depot,
                         seed=seed)
        if radius < 0.0:
            raise PlanError(f"negative CSS radius: {radius!r}")
        self.radius = radius
        self.substitute_rounds = substitute_rounds

    def plan(self, network: SensorNetwork,
             cost: CostParameters) -> ChargingPlan:
        """Run the three CSS passes and emit the charging plan."""
        locations = network.locations
        depot = self._depot_for(network)
        order = self.order_positions(locations, depot)

        groups = self._combine(order, locations)
        self._skip(groups, depot)
        for _ in range(self.substitute_rounds):
            self._substitute(groups, depot)

        stops = tuple(
            stop_for_sensors(group.position, group.members, locations,
                             cost)
            for group in groups
        )
        plan = ChargingPlan(stops=stops, depot=depot, label=self.name)
        plan.validate_complete(len(network))
        return plan

    # --- Combine -----------------------------------------------------------

    def _combine(self, order: Sequence[int],
                 locations: Sequence[Point]) -> List[_Group]:
        """Greedily merge consecutive tour sensors into range groups."""
        groups: List[_Group] = []
        run: List[int] = []
        for sensor in order:
            trial = run + [sensor]
            points = [locations[i] for i in trial]
            if fits_in_radius(points, self.radius):
                run = trial
                continue
            groups.append(self._close_group(run, locations))
            run = [sensor]
        if run:
            groups.append(self._close_group(run, locations))
        return groups

    def _close_group(self, members: List[int],
                     locations: Sequence[Point]) -> _Group:
        disk = smallest_enclosing_disk([locations[i] for i in members])
        slack = self.radius - disk.radius
        return _Group(members, disk.center, slack, disk.center)

    # --- Skip ----------------------------------------------------------------

    def _skip(self, groups: List[_Group],
              depot: Optional[Point]) -> None:
        """Relocate stops whose feasible disk the bypass path crosses.

        CSS's Skip removes the detour to a stop when the direct path
        between its neighbours already passes within range; the ferry
        halts at the entry point.  We keep the group (its sensors still
        need their dwell) but pin its position onto the bypass segment.
        """
        for i, group in enumerate(groups):
            disk = group.feasible_disk()
            if disk.radius <= 0.0:
                continue
            prev_point = self._neighbor_position(groups, depot, i, -1)
            next_point = self._neighbor_position(groups, depot, i, +1)
            if prev_point is None or next_point is None:
                continue
            segment = Segment(prev_point, next_point)
            if segment.intersects_disk(disk):
                group.position = segment.first_point_in_disk(disk)

    # --- Substitute ------------------------------------------------------------

    def _substitute(self, groups: List[_Group],
                    depot: Optional[Point]) -> None:
        """Slide each stop toward the path through its neighbours."""
        for i, group in enumerate(groups):
            disk = group.feasible_disk()
            prev_point = self._neighbor_position(groups, depot, i, -1)
            next_point = self._neighbor_position(groups, depot, i, +1)
            if prev_point is None or next_point is None:
                continue
            segment = Segment(prev_point, next_point)
            candidate = segment.closest_point(group.center)
            # Clamp into the feasible disk so every member stays in range.
            offset = candidate - group.center
            distance = offset.norm()
            if distance > disk.radius:
                if disk.radius <= 0.0 or distance == 0.0:
                    candidate = group.center
                else:
                    candidate = (group.center
                                 + offset * (disk.radius / distance))
            old_legs = (group.position.distance_to(prev_point)
                        + group.position.distance_to(next_point))
            new_legs = (candidate.distance_to(prev_point)
                        + candidate.distance_to(next_point))
            if new_legs < old_legs - 1e-12:
                group.position = candidate

    @staticmethod
    def _neighbor_position(groups: Sequence[_Group],
                           depot: Optional[Point], index: int,
                           direction: int) -> Optional[Point]:
        """Position of the tour neighbour (depot-aware, cyclic)."""
        n = len(groups)
        if n == 0:
            return None
        target = index + direction
        if depot is not None:
            if target < 0 or target >= n:
                return depot
            return groups[target].position
        if n == 1:
            return None
        return groups[target % n].position
