"""Planner registry.

The experiment harness and CLI refer to planners by short names; this
registry maps those names to configured planner instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ExperimentError
from .base import Planner
from .bc import BundleChargingPlanner
from .bc_opt import BundleChargingOptPlanner
from .css import CombineSkipSubstitutePlanner
from .sc import SingleChargingPlanner

#: Factories take (radius, tsp_strategy, seed) and return a planner.  SC
#: ignores the radius — it has no range concept — but keeps the signature
#: so callers can build all four uniformly.
PlannerFactory = Callable[[float, str, int], Planner]

def _make_tspn(radius: float, strategy: str, seed: int) -> Planner:
    """Factory for the optional TSPN baseline (lazy import: the tspn
    package sits above planners in the layering)."""
    from ..tspn import TspnChargingPlanner
    return TspnChargingPlanner(radius, tsp_strategy=strategy, seed=seed)


_REGISTRY: Dict[str, PlannerFactory] = {
    "SC": lambda radius, strategy, seed: SingleChargingPlanner(
        tsp_strategy=strategy, seed=seed),
    "CSS": lambda radius, strategy, seed: CombineSkipSubstitutePlanner(
        radius, tsp_strategy=strategy, seed=seed),
    "BC": lambda radius, strategy, seed: BundleChargingPlanner(
        radius, tsp_strategy=strategy, seed=seed),
    "BC-OPT": lambda radius, strategy, seed: BundleChargingOptPlanner(
        radius, tsp_strategy=strategy, seed=seed),
    # Extension baseline (not part of the paper's four-way comparison).
    "TSPN": _make_tspn,
}

#: The paper's comparison order (Figs. 12-13).
PAPER_ALGORITHMS = ("SC", "CSS", "BC", "BC-OPT")


def planner_names() -> List[str]:
    """Return the registered planner names, in comparison order."""
    return list(PAPER_ALGORITHMS)


def known_planners() -> List[str]:
    """Return every registered planner name, sorted (extensions too)."""
    return sorted(_REGISTRY)


def make_planner(name: str, radius: float,
                 tsp_strategy: str = "nn+2opt", seed: int = 0) -> Planner:
    """Instantiate a registered planner.

    Args:
        name: one of ``SC``, ``CSS``, ``BC``, ``BC-OPT``.
        radius: bundle/range radius (ignored by SC).
        tsp_strategy: TSP pipeline name.
        seed: TSP seed.

    Raises:
        ExperimentError: for an unknown planner name.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown planner {name!r}; choose from "
            f"{sorted(_REGISTRY)}") from None
    return factory(radius, tsp_strategy, seed)


def register_planner(name: str, factory: PlannerFactory) -> None:
    """Register a custom planner factory (extension point).

    Raises:
        ExperimentError: when the name is already taken.
    """
    if name in _REGISTRY:
        raise ExperimentError(f"planner {name!r} already registered")
    _REGISTRY[name] = factory
