"""Paper constants for the ICDCS 2019 bundle-charging evaluation.

All values come from Section VI-A (simulation) and Section VII (testbed)
of the paper; the sources cited there are Fu et al. (INFOCOM 2013) for the
charging-model fit and Wang et al. (SECON 2014) for the movement cost.
"""

from __future__ import annotations

# --- Charging model (Eq. 1), fitted constants from [3]'s experiments -----

#: Friis-form gain constant ``alpha`` in ``p_r = alpha / (d + beta)^2 * p_c``.
ALPHA = 36.0

#: Short-distance correction ``beta`` (meters) in Eq. 1.
BETA = 30.0

# --- Energy budget --------------------------------------------------------

#: Per-sensor charging requirement ``delta`` in joules ("charging capacity
#: is 2 J, also drawn from [3]").
DELTA_J = 2.0

#: Mobile-charger movement cost in joules per meter (from [4]).
MOVE_COST_J_PER_M = 5.59

#: Charger power draw while radiating, in watts.  The paper states
#: "0.9 J/min (5 mA x 3 V x 60 s)" = 0.015 W.
CHARGE_POWER_W = 0.9 / 60.0

# --- Simulation field ------------------------------------------------------

#: Side length of the square deployment field, meters.
FIELD_SIDE_M = 1000.0

#: Node counts evaluated in the paper ("number of nodes ... is 40 to 200").
NODE_COUNTS = (40, 80, 120, 160, 200)

#: Bundle radii swept in Figs. 12 and 14 (meters).
BUNDLE_RADII_M = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0)

#: Number of random seeds averaged per data point in the paper (100 runs).
PAPER_RUNS = 100

# --- Testbed (Section VII) -------------------------------------------------

#: Powercast TX91501 transmit power, watts.
TESTBED_TX_POWER_W = 3.0

#: Testbed charging frequency, Hz (915 MHz => wavelength ~0.33 m).
TESTBED_FREQUENCY_HZ = 915e6

#: Testbed robot-car speed, m/s.
TESTBED_SPEED_M_PER_S = 0.3

#: Testbed per-sensor energy requirement, joules (4 mJ from [38]).
TESTBED_DELTA_J = 4e-3

#: Testbed room side length, meters (5 m x 5 m office area).
TESTBED_SIDE_M = 5.0

#: The six sensor coordinates of the paper's testbed (Section VII).
TESTBED_SENSORS = (
    (1.0, 1.0),
    (1.0, 3.0),
    (1.0, 4.0),
    (2.0, 4.0),
    (4.0, 4.0),
    (4.0, 1.0),
)
