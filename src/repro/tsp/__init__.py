"""From-scratch TSP substrate.

Construction heuristics, 2-opt / Or-opt local search, Christofides,
Held-Karp exact DP, simulated annealing, and the :func:`solve_tsp`
facade the planners call.
"""

from .annealing import AnnealingSchedule, anneal
from .christofides import christofides_tour
from .construction import (cheapest_insertion_tour, greedy_edge_tour,
                           nearest_neighbor_tour)
from .distance import DistanceMatrix
from .exact import MAX_EXACT_CITIES, held_karp_length, held_karp_tour
from .local_search import (nearest_neighbor_lists, or_opt, or_opt_fast,
                           three_opt, two_opt, two_opt_fast)
from .mst_approx import minimum_spanning_parent, mst_doubling_tour
from .solver import (DEFAULT_STRATEGY, STRATEGY_NAMES, solve_tsp,
                     solve_tsp_matrix, tour_length)
from .tour import Tour

__all__ = [
    "AnnealingSchedule",
    "DEFAULT_STRATEGY",
    "DistanceMatrix",
    "MAX_EXACT_CITIES",
    "STRATEGY_NAMES",
    "Tour",
    "anneal",
    "cheapest_insertion_tour",
    "christofides_tour",
    "greedy_edge_tour",
    "held_karp_length",
    "held_karp_tour",
    "minimum_spanning_parent",
    "mst_doubling_tour",
    "nearest_neighbor_tour",
    "nearest_neighbor_lists",
    "or_opt",
    "or_opt_fast",
    "solve_tsp",
    "solve_tsp_matrix",
    "three_opt",
    "tour_length",
    "two_opt",
    "two_opt_fast",
]
