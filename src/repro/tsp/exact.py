"""Exact TSP by Held-Karp dynamic programming.

O(2^n * n^2) time and O(2^n * n) memory — usable to about n = 15, which is
plenty to certify the heuristics in the test suite and to solve the
6-sensor testbed exactly.
"""

from __future__ import annotations

from ..errors import TourError
from .distance import DistanceMatrix
from .tour import Tour

#: Refuse instances beyond this size (memory blows up past it).
MAX_EXACT_CITIES = 16


def held_karp_tour(distance: DistanceMatrix) -> Tour:
    """Return a provably optimal tour.

    Args:
        distance: pairwise distances; at most :data:`MAX_EXACT_CITIES`
            cities.

    Raises:
        TourError: when the instance is too large.
    """
    n = distance.size
    if n > MAX_EXACT_CITIES:
        raise TourError(
            f"Held-Karp limited to {MAX_EXACT_CITIES} cities, got {n}")
    if n == 0:
        return Tour([])
    if n <= 3:
        return Tour(list(range(n)))

    # dp[mask][last] = best cost to start at 0, visit exactly the cities
    # in mask (mask always contains 0 and last), ending at last.
    size = 1 << n
    infinity = float("inf")
    dp = [[infinity] * n for _ in range(size)]
    parent = [[-1] * n for _ in range(size)]
    dp[1][0] = 0.0

    for mask in range(1, size):
        if not mask & 1:
            continue  # tours must contain the start city 0
        for last in range(n):
            if not mask & (1 << last):
                continue
            cost = dp[mask][last]
            if cost == infinity:
                continue
            for nxt in range(1, n):
                bit = 1 << nxt
                if mask & bit:
                    continue
                candidate = cost + distance(last, nxt)
                new_mask = mask | bit
                if candidate < dp[new_mask][nxt]:
                    dp[new_mask][nxt] = candidate
                    parent[new_mask][nxt] = last

    full = size - 1
    best_last = min(range(1, n),
                    key=lambda last: dp[full][last] + distance(last, 0))

    order = []
    mask = full
    last = best_last
    while last != -1:
        order.append(last)
        previous = parent[mask][last]
        mask ^= 1 << last
        last = previous
    order.reverse()
    if order[0] != 0:
        raise TourError("Held-Karp reconstruction failed to reach start")
    return Tour(order)


def held_karp_length(distance: DistanceMatrix) -> float:
    """Return only the optimal tour length."""
    tour = held_karp_tour(distance)
    return tour.length(distance)
