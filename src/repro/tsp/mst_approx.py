"""The MST-doubling 2-approximation for metric TSP.

Preorder walk of a minimum spanning tree, shortcut over repeats — the
textbook 2-approximation.  Weaker than Christofides (1.5x) but needs no
matching, runs in O(n^2), and gives the test suite a second
independently-bounded algorithm to certify the heuristics against.
"""

from __future__ import annotations

import heapq
from typing import List

from ..errors import TourError
from .distance import DistanceMatrix
from .tour import Tour


def minimum_spanning_parent(distance: DistanceMatrix) -> List[int]:
    """Return Prim's MST as a parent array rooted at city 0."""
    n = distance.size
    parent = [-1] * n
    if n == 0:
        return parent
    in_tree = [False] * n
    best = [(0.0, 0, -1)]  # (key, city, parent)
    added = 0
    while best and added < n:
        key, city, source = heapq.heappop(best)
        if in_tree[city]:
            continue
        in_tree[city] = True
        parent[city] = source
        added += 1
        for other in range(n):
            if not in_tree[other]:
                heapq.heappush(best, (distance(city, other), other,
                                      city))
    if added != n:
        raise TourError("MST construction failed to span all cities")
    return parent


def mst_doubling_tour(distance: DistanceMatrix) -> Tour:
    """Return the preorder-walk tour of the MST (<= 2x optimal)."""
    n = distance.size
    if n == 0:
        return Tour([])
    if n <= 3:
        return Tour(list(range(n)))
    parent = minimum_spanning_parent(distance)
    children: List[List[int]] = [[] for _ in range(n)]
    for city in range(1, n):
        children[parent[city]].append(city)
    # Visit nearer children first: a cheap, deterministic tie-break
    # that tends to shorten the shortcut tour.
    for city in range(n):
        children[city].sort(key=lambda child: distance(city, child))

    order: List[int] = []
    stack = [0]
    while stack:
        city = stack.pop()
        order.append(city)
        stack.extend(reversed(children[city]))
    if sorted(order) != list(range(n)):
        raise TourError("MST preorder walk lost cities")
    return Tour(order)
