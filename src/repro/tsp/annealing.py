"""Simulated annealing for TSP.

A randomized improver used in ablations ("how much tour quality does the
planner stack leave on the table?").  Deterministic under a fixed seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import TourError
from .distance import DistanceMatrix
from .tour import Tour


@dataclass(frozen=True)
class AnnealingSchedule:
    """Cooling schedule parameters.

    Attributes:
        initial_temperature: starting temperature (distance units).
        cooling: multiplicative decay per iteration, in (0, 1).
        iterations: total proposal count.
    """

    initial_temperature: float = 100.0
    cooling: float = 0.999
    iterations: int = 20_000

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0.0:
            raise TourError(
                f"temperature must be positive: "
                f"{self.initial_temperature!r}")
        if not 0.0 < self.cooling < 1.0:
            raise TourError(f"cooling must be in (0,1): {self.cooling!r}")
        if self.iterations < 0:
            raise TourError(f"negative iterations: {self.iterations!r}")


def anneal(tour: Tour, distance: DistanceMatrix, seed: int = 0,
           schedule: AnnealingSchedule = AnnealingSchedule()) -> Tour:
    """Improve ``tour`` by simulated annealing with 2-opt proposals.

    Returns the best tour *seen*, which is never worse than the input.
    """
    n = len(tour)
    if n < 4 or schedule.iterations == 0:
        return tour
    rng = random.Random(seed)
    order = tour.order
    current_length = Tour(order).length(distance)
    best_order = order[:]
    best_length = current_length
    temperature = schedule.initial_temperature

    for _ in range(schedule.iterations):
        i = rng.randrange(0, n - 1)
        j = rng.randrange(i + 1, n)
        if i == 0 and j == n - 1:
            temperature *= schedule.cooling
            continue
        a, b = order[i - 1] if i > 0 else order[-1], order[i]
        c, d = order[j], order[(j + 1) % n]
        delta = (distance(a, c) + distance(b, d)
                 - distance(a, b) - distance(c, d))
        accept = delta < 0.0 or (
            temperature > 1e-12
            and rng.random() < math.exp(-delta / temperature))
        if accept:
            order[i:j + 1] = reversed(order[i:j + 1])
            current_length += delta
            if current_length < best_length - 1e-12:
                best_length = current_length
                best_order = order[:]
        temperature *= schedule.cooling
    return Tour(best_order)
