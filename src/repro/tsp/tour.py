"""Tour representation.

A :class:`Tour` is a permutation of city indices interpreted as a closed
cycle (the mobile charger returns to its starting point).  Tours are over
*indices*; the distance matrix or point list gives them geometry.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..errors import TourError
from ..geometry import Point


class Tour:
    """A closed tour over cities ``0..n-1``."""

    def __init__(self, order: Sequence[int]) -> None:
        """Create a tour.

        Args:
            order: a permutation of ``range(len(order))``.

        Raises:
            TourError: when ``order`` is not a permutation.
        """
        self._order: List[int] = list(order)
        n = len(self._order)
        if sorted(self._order) != list(range(n)):
            raise TourError(
                f"tour order must be a permutation of 0..{n - 1}")

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order)

    def __getitem__(self, position: int) -> int:
        return self._order[position]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tour):
            return NotImplemented
        return self._order == other._order

    def __repr__(self) -> str:
        return f"Tour({self._order!r})"

    @property
    def order(self) -> List[int]:
        """Return a copy of the visiting order."""
        return self._order[:]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield the cycle's directed edges, including the closing edge."""
        n = len(self._order)
        for i in range(n):
            yield (self._order[i], self._order[(i + 1) % n])

    def length(self, distance) -> float:
        """Return total cycle length under ``distance(i, j)``."""
        if len(self._order) < 2:
            return 0.0
        return sum(distance(a, b) for a, b in self.edges())

    def geometric_length(self, points: Sequence[Point]) -> float:
        """Return total cycle length through ``points``."""
        return self.length(lambda a, b: points[a].distance_to(points[b]))

    def rotated_to_start(self, city: int) -> "Tour":
        """Return the same cycle re-rooted so that ``city`` comes first."""
        if city not in self._order:
            raise TourError(f"city {city} not in tour")
        position = self._order.index(city)
        return Tour(self._order[position:] + self._order[:position])

    def reversed(self) -> "Tour":
        """Return the cycle traversed in the opposite direction."""
        return Tour(list(reversed(self._order)))

    def two_opt_move(self, i: int, j: int) -> "Tour":
        """Return the tour with the segment ``order[i..j]`` reversed.

        Requires ``0 <= i < j < n``; this is the classic 2-opt
        reconnection.
        """
        n = len(self._order)
        if not (0 <= i < j < n):
            raise TourError(f"invalid 2-opt indices: ({i}, {j}) for n={n}")
        new_order = (self._order[:i]
                     + list(reversed(self._order[i:j + 1]))
                     + self._order[j + 1:])
        return Tour(new_order)

    @staticmethod
    def identity(n: int) -> "Tour":
        """Return the tour ``0, 1, ..., n-1``."""
        return Tour(list(range(n)))
