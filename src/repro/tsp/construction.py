"""Tour-construction heuristics.

Three classic constructors, all deterministic given their inputs:

* :func:`nearest_neighbor_tour` — grow from a start city, always hop to
  the nearest unvisited city (O(n^2), typically ~25 % above optimal).
* :func:`greedy_edge_tour` — add shortest edges that keep degree <= 2 and
  avoid premature subcycles (O(n^2 log n), usually better than NN).
* :func:`cheapest_insertion_tour` — grow a cycle by inserting the city
  with the cheapest insertion cost (O(n^2)).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import TourError
from .distance import DistanceMatrix
from .tour import Tour


def nearest_neighbor_tour(distance: DistanceMatrix,
                          start: int = 0) -> Tour:
    """Build a tour by always visiting the nearest unvisited city.

    Args:
        distance: pairwise distances.
        start: the first city.

    Raises:
        TourError: if ``start`` is out of range.
    """
    n = distance.size
    if n == 0:
        return Tour([])
    distance.validate_index(start)
    unvisited = set(range(n))
    unvisited.remove(start)
    order = [start]
    current = start
    while unvisited:
        nearest = min(unvisited, key=lambda city: distance(current, city))
        order.append(nearest)
        unvisited.remove(nearest)
        current = nearest
    return Tour(order)


class _DisjointSet:
    """Union-find for subcycle detection in the greedy-edge constructor."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True


def greedy_edge_tour(distance: DistanceMatrix) -> Tour:
    """Build a tour from globally shortest feasible edges."""
    n = distance.size
    if n == 0:
        return Tour([])
    if n == 1:
        return Tour([0])
    if n == 2:
        return Tour([0, 1])

    edges = sorted(((distance(i, j), i, j)
                    for i in range(n) for j in range(i + 1, n)),
                   key=lambda e: e[0])
    degree = [0] * n
    components = _DisjointSet(n)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    accepted = 0
    for _, i, j in edges:
        if degree[i] >= 2 or degree[j] >= 2:
            continue
        if components.find(i) == components.find(j):
            # Only the final, Hamiltonian-closing edge may form a cycle.
            if accepted != n - 1:
                continue
        components.union(i, j)
        adjacency[i].append(j)
        adjacency[j].append(i)
        degree[i] += 1
        degree[j] += 1
        accepted += 1
        if accepted == n:
            break

    # Close any remaining open path (can happen when the last feasible
    # edge was rejected by the cycle rule ordering).
    endpoints = [city for city in range(n) if degree[city] < 2]
    while len(endpoints) >= 2:
        a = endpoints.pop()
        best: Optional[int] = None
        best_dist = float("inf")
        for b in endpoints:
            if components.find(a) == components.find(b) and len(
                    endpoints) > 1:
                continue
            if distance(a, b) < best_dist:
                best_dist = distance(a, b)
                best = b
        if best is None:
            best = endpoints[0]
        endpoints.remove(best)
        components.union(a, best)
        adjacency[a].append(best)
        adjacency[best].append(a)
        degree[a] += 1
        degree[best] += 1
        endpoints = [city for city in range(n) if degree[city] < 2]

    return _walk_cycle(adjacency, n)


def _walk_cycle(adjacency: List[List[int]], n: int) -> Tour:
    """Trace the 2-regular adjacency structure into a tour order."""
    order = [0]
    previous = -1
    current = 0
    while len(order) < n:
        neighbors = adjacency[current]
        nxt = neighbors[0] if neighbors[0] != previous else neighbors[1]
        order.append(nxt)
        previous, current = current, nxt
    if sorted(order) != list(range(n)):
        raise TourError("greedy edge construction produced a non-tour")
    return Tour(order)


def cheapest_insertion_tour(distance: DistanceMatrix,
                            start: int = 0) -> Tour:
    """Grow a cycle by repeatedly making the cheapest insertion."""
    n = distance.size
    if n == 0:
        return Tour([])
    distance.validate_index(start)
    if n == 1:
        return Tour([0])

    remaining = set(range(n))
    remaining.remove(start)
    # Seed with the city nearest the start.
    second = min(remaining, key=lambda city: distance(start, city))
    remaining.remove(second)
    cycle = [start, second]

    while remaining:
        best_city = -1
        best_position = 0
        best_cost = float("inf")
        # sorted(): ties on insertion cost must break by city index, not
        # set hash order, for run-to-run reproducibility.
        for city in sorted(remaining):
            for position in range(len(cycle)):
                a = cycle[position]
                b = cycle[(position + 1) % len(cycle)]
                cost = (distance(a, city) + distance(city, b)
                        - distance(a, b))
                if cost < best_cost:
                    best_cost = cost
                    best_city = city
                    best_position = position + 1
        cycle.insert(best_position, best_city)
        remaining.remove(best_city)
    return Tour(cycle)
