"""TSP solver facade.

The paper's Algorithm 3 says only "Call TSP solver"; this facade is that
call.  It picks a sensible pipeline by instance size and exposes named
strategies for ablation:

* ``"exact"`` — Held-Karp (n <= 16).
* ``"nn"`` / ``"greedy"`` / ``"insertion"`` / ``"christofides"`` — a
  single constructor, no improvement.
* ``"nn+2opt"`` (default), ``"greedy+2opt"``, ``"christofides+2opt"`` —
  constructor followed by 2-opt and Or-opt.
* ``"nn+2opt-fast"``, ``"greedy+2opt-fast"`` — the same pipelines on the
  neighbor-list operators (k-nearest candidate lists + don't-look bits).
  Much faster on large instances; tours may differ slightly from the
  full-sweep strategies, so they are opt-in.
* ``"anneal"`` — nearest neighbour + simulated annealing.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..errors import TourError
from ..geometry import Point
from .annealing import anneal
from .christofides import christofides_tour
from .construction import (cheapest_insertion_tour, greedy_edge_tour,
                           nearest_neighbor_tour)
from .distance import DistanceMatrix
from .exact import MAX_EXACT_CITIES, held_karp_tour
from .local_search import (or_opt, or_opt_fast, three_opt, two_opt,
                           two_opt_fast)
from .mst_approx import mst_doubling_tour
from .tour import Tour

DEFAULT_STRATEGY = "nn+2opt"

#: Every strategy name :func:`solve_tsp_matrix` accepts (the keys of
#: its solver table, plus ``"auto"``).  ``tests/tsp`` pins this list
#: against the table so external validators (the planning service's
#: request schema) can trust it without building a solver.
STRATEGY_NAMES = (
    "auto", "exact", "nn", "greedy", "insertion", "christofides",
    "nn+2opt", "greedy+2opt", "insertion+2opt", "christofides+2opt",
    "nn+2opt-fast", "greedy+2opt-fast", "anneal", "nn+3opt", "mst",
    "mst+2opt",
)


def solve_tsp(points: Sequence[Point],
              strategy: str = DEFAULT_STRATEGY,
              seed: int = 0,
              initial_order: Optional[Sequence[int]] = None) -> Tour:
    """Solve (approximately) the TSP over ``points``.

    Args:
        points: city coordinates.
        strategy: one of the named strategies in the module docstring,
            or ``"auto"`` to pick exact for tiny instances and the default
            heuristic otherwise.
        seed: seed for the randomized strategies (``"anneal"``).
        initial_order: optional warm-start tour over ``range(len(points))``.
            Improvement strategies (``*+2opt`` and their ``-fast``
            variants) start local search from it instead of running their
            constructor; other strategies ignore it.

    Returns:
        A closed :class:`Tour` over ``range(len(points))``.

    Raises:
        TourError: for an unknown strategy name, or a warm-start order
            whose length does not match ``points``.
    """
    n = len(points)
    if n <= 1:
        return Tour(list(range(n)))
    distance = DistanceMatrix(points)
    return solve_tsp_matrix(distance, strategy=strategy, seed=seed,
                            initial_order=initial_order)


def solve_tsp_matrix(distance: DistanceMatrix,
                     strategy: str = DEFAULT_STRATEGY,
                     seed: int = 0,
                     initial_order: Optional[Sequence[int]] = None) -> Tour:
    """Solve the TSP over a prebuilt distance matrix.

    See :func:`solve_tsp` for the ``initial_order`` warm-start contract.
    """
    n = distance.size
    if n <= 3:
        return Tour(list(range(n)))
    if strategy == "auto":
        strategy = "exact" if n <= 12 else DEFAULT_STRATEGY
    if initial_order is not None:
        improver = _IMPROVERS.get(strategy)
        if improver is not None:
            if len(initial_order) != n:
                raise TourError(
                    f"warm-start order has {len(initial_order)} cities, "
                    f"instance has {n}")
            return improver(Tour(list(initial_order)), distance)

    solvers: Dict[str, Callable[[], Tour]] = {
        "exact": lambda: held_karp_tour(distance),
        "nn": lambda: nearest_neighbor_tour(distance),
        "greedy": lambda: greedy_edge_tour(distance),
        "insertion": lambda: cheapest_insertion_tour(distance),
        "christofides": lambda: christofides_tour(distance),
        "nn+2opt": lambda: _improve(
            nearest_neighbor_tour(distance), distance),
        "greedy+2opt": lambda: _improve(
            greedy_edge_tour(distance), distance),
        "insertion+2opt": lambda: _improve(
            cheapest_insertion_tour(distance), distance),
        "christofides+2opt": lambda: _improve(
            christofides_tour(distance), distance),
        "nn+2opt-fast": lambda: _improve_fast(
            nearest_neighbor_tour(distance), distance),
        "greedy+2opt-fast": lambda: _improve_fast(
            greedy_edge_tour(distance), distance),
        "anneal": lambda: anneal(
            nearest_neighbor_tour(distance), distance, seed=seed),
        "nn+3opt": lambda: three_opt(
            _improve(nearest_neighbor_tour(distance), distance),
            distance),
        "mst": lambda: mst_doubling_tour(distance),
        "mst+2opt": lambda: _improve(mst_doubling_tour(distance),
                                     distance),
    }
    if strategy not in solvers:
        raise TourError(
            f"unknown TSP strategy {strategy!r}; choose from "
            f"{sorted(solvers)} or 'auto'")
    if strategy == "exact" and n > MAX_EXACT_CITIES:
        raise TourError(
            f"exact strategy limited to {MAX_EXACT_CITIES} cities, got {n}")
    return solvers[strategy]()


def _improve(tour: Tour, distance: DistanceMatrix) -> Tour:
    """Standard improvement pipeline: 2-opt then Or-opt then 2-opt."""
    improved = two_opt(tour, distance)
    improved = or_opt(improved, distance)
    return two_opt(improved, distance)


def _improve_fast(tour: Tour, distance: DistanceMatrix) -> Tour:
    """Neighbor-list improvement pipeline (the ``*-fast`` strategies)."""
    improved = two_opt_fast(tour, distance)
    improved = or_opt_fast(improved, distance)
    return two_opt_fast(improved, distance)


# Strategies that can consume a warm-start order: their constructor is
# replaced by the given tour and only the improvement pipeline runs.
_IMPROVERS: Dict[str, Callable[[Tour, DistanceMatrix], Tour]] = {
    "nn+2opt": _improve,
    "greedy+2opt": _improve,
    "insertion+2opt": _improve,
    "christofides+2opt": _improve,
    "mst+2opt": _improve,
    "nn+2opt-fast": _improve_fast,
    "greedy+2opt-fast": _improve_fast,
}


def tour_length(points: Sequence[Point], tour: Tour) -> float:
    """Convenience: geometric length of ``tour`` through ``points``."""
    return tour.geometric_length(points)
