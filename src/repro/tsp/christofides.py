"""Christofides' 1.5-approximation for metric TSP.

MST + minimum-weight perfect matching on the odd-degree vertices +
Eulerian circuit + shortcutting.  The matching and Eulerian steps lean on
``networkx``; the surrounding algorithm and the shortcut pass are ours.
"""

from __future__ import annotations

import networkx as nx

from ..errors import TourError
from .distance import DistanceMatrix
from .tour import Tour


def christofides_tour(distance: DistanceMatrix) -> Tour:
    """Return a Christofides tour (<= 1.5x optimal on metric instances)."""
    n = distance.size
    if n == 0:
        return Tour([])
    if n <= 3:
        return Tour(list(range(n)))

    graph = nx.Graph()
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j, weight=distance(i, j))

    mst = nx.minimum_spanning_tree(graph)

    odd_vertices = [v for v in mst.nodes if mst.degree(v) % 2 == 1]
    if odd_vertices:
        odd_graph = nx.Graph()
        for a_pos, a in enumerate(odd_vertices):
            for b in odd_vertices[a_pos + 1:]:
                odd_graph.add_edge(a, b, weight=distance(a, b))
        matching = nx.min_weight_matching(odd_graph)
    else:
        matching = set()

    multigraph = nx.MultiGraph(mst)
    # min_weight_matching returns a set; fix the edge insertion order so
    # the Eulerian circuit (and hence the tour) is reproducible.
    for a, b in sorted(matching):
        multigraph.add_edge(a, b, weight=distance(a, b))

    circuit = nx.eulerian_circuit(multigraph, source=0)
    order = []
    seen = set()
    for a, _ in circuit:
        if a not in seen:
            seen.add(a)
            order.append(a)
    for city in range(n):
        if city not in seen:
            # Isolated numeric corner cases; keep the tour total.
            order.append(city)
    if sorted(order) != list(range(n)):
        raise TourError("Christofides shortcutting lost cities")
    return Tour(order)
