"""Tour improvement: 2-opt and Or-opt local search.

Both operators only ever *accept improving moves*, so the test suite can
assert that improvement never increases tour length — the library's core
TSP invariant.

Two families live here:

* ``two_opt`` / ``or_opt`` / ``three_opt`` — full first-improvement
  sweeps, the reference operators behind the default solver strategies.
* ``two_opt_fast`` / ``or_opt_fast`` — accelerated variants driven by
  k-nearest-neighbor candidate lists and don't-look bits.  They examine
  only moves that create at least one short edge (the classical
  neighbor-list pruning: an improving 2-opt move must add an edge
  shorter than one it removes), which cuts the move scan from O(n^2)
  per sweep to O(n*k).  They share the accept-only-improving-moves
  invariant but are *not* move-for-move identical to the full sweeps,
  so the solver exposes them as opt-in ``*-fast`` strategies.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Sequence

from ..perf.counters import PERF
from .distance import DistanceMatrix
from .tour import Tour


def two_opt(tour: Tour, distance: DistanceMatrix,
            max_rounds: int = 50) -> Tour:
    """Improve ``tour`` with first-improvement 2-opt until a local optimum.

    Args:
        tour: the starting tour.
        distance: pairwise distances.
        max_rounds: safety cap on full improvement sweeps.

    Returns:
        A tour whose length is <= the input's, 2-opt locally optimal
        unless the round cap was hit first.
    """
    n = len(tour)
    if n < 4:
        return tour
    order = tour.order
    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for i in range(n - 1):
            a, b = order[i], order[i + 1]
            d_ab = distance(a, b)
            for j in range(i + 2, n):
                # Skip the move that would detach the closing edge's pair.
                if i == 0 and j == n - 1:
                    continue
                c, d = order[j], order[(j + 1) % n]
                delta = (distance(a, c) + distance(b, d)
                         - d_ab - distance(c, d))
                if delta < -1e-12:
                    order[i + 1:j + 1] = reversed(order[i + 1:j + 1])
                    improved = True
                    a, b = order[i], order[i + 1]
                    d_ab = distance(a, b)
    return Tour(order)


def or_opt(tour: Tour, distance: DistanceMatrix,
           segment_lengths: tuple = (1, 2, 3),
           max_rounds: int = 25) -> Tour:
    """Or-opt: relocate short segments to better positions.

    Moves chains of 1-3 consecutive cities between other edges whenever
    that shortens the tour.  Complements 2-opt (which can only reverse).
    """
    n = len(tour)
    if n < 5:
        return tour
    order = tour.order
    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for seg_len in segment_lengths:
            if seg_len >= n - 2:
                continue
            move_made = _or_opt_pass(order, distance, seg_len)
            improved = improved or move_made
    return Tour(order)


def _or_opt_pass(order: List[int], distance: DistanceMatrix,
                 seg_len: int) -> bool:
    """One relocation sweep for a fixed segment length."""
    n = len(order)
    improved = False
    i = 0
    while i < n:
        # Segment order[i .. i+seg_len-1]; must not wrap for simplicity.
        if i + seg_len > n:
            break
        prev_city = order[i - 1] if i > 0 else order[-1]
        seg_first = order[i]
        seg_last = order[i + seg_len - 1]
        next_index = (i + seg_len) % n
        next_city = order[next_index]
        removal_gain = (distance(prev_city, seg_first)
                        + distance(seg_last, next_city)
                        - distance(prev_city, next_city))
        if removal_gain <= 1e-12:
            i += 1
            continue
        segment = order[i:i + seg_len]
        rest = order[:i] + order[i + seg_len:]
        best_delta = -1e-12
        best_position = -1
        for position in range(len(rest)):
            a = rest[position]
            b = rest[(position + 1) % len(rest)]
            insertion_cost = (distance(a, seg_first)
                              + distance(seg_last, b)
                              - distance(a, b))
            delta = insertion_cost - removal_gain
            if delta < best_delta:
                best_delta = delta
                best_position = position
        if best_position >= 0:
            rest[best_position + 1:best_position + 1] = segment
            order[:] = rest
            improved = True
        else:
            i += 1
    return improved


def nearest_neighbor_lists(distance: DistanceMatrix,
                           neighbor_count: int) -> List[List[int]]:
    """Per-city lists of the ``neighbor_count`` nearest other cities.

    Sorted by ascending distance — the fast operators rely on that order
    to break out of the candidate scan early.
    """
    n = distance.size
    k = min(neighbor_count, n - 1)
    lists: List[List[int]] = []
    for city in range(n):
        row = distance.row(city)
        lists.append(heapq.nsmallest(
            k, (c for c in range(n) if c != city), key=row.__getitem__))
    return lists


def _reverse_segment(order: List[int], pos: List[int],
                     first: int, last: int) -> None:
    """Reverse ``order[first..last]`` (inclusive) and repair ``pos``."""
    order[first:last + 1] = order[first:last + 1][::-1]
    for idx in range(first, last + 1):
        pos[order[idx]] = idx


def _try_two_opt_move(order: List[int], pos: List[int],
                      distance: DistanceMatrix,
                      anchor1: int, anchor2: int) -> bool:
    """Try the 2-opt move removing the edges anchored at ``anchor1`` and
    ``anchor2`` (edge ``k`` joins positions ``k`` and ``k+1 mod n``).

    Applies the move when it shortens the tour; returns True then.
    """
    n = len(order)
    if anchor1 > anchor2:
        anchor1, anchor2 = anchor2, anchor1
    if anchor2 - anchor1 < 2 or (anchor1 == 0 and anchor2 == n - 1):
        return False  # shared city or the degenerate whole-tour reversal
    a, b = order[anchor1], order[anchor1 + 1]
    c, d = order[anchor2], order[(anchor2 + 1) % n]
    delta = (distance(a, c) + distance(b, d)
             - distance(a, b) - distance(c, d))
    if delta >= -1e-12:
        return False
    _reverse_segment(order, pos, anchor1 + 1, anchor2)
    return True


def two_opt_fast(tour: Tour, distance: DistanceMatrix,
                 neighbor_count: int = 16,
                 max_moves: int = 200_000) -> Tour:
    """Neighbor-list 2-opt with don't-look bits.

    For each active city ``a`` and each of its ``neighbor_count`` nearest
    neighbors ``c`` (nearest first), the two moves pairing an edge at
    ``a`` with an edge at ``c`` are tried; the scan stops as soon as
    ``d(a, c)`` reaches the length of the edge being replaced, since no
    later neighbor can yield an improvement.  Cities whose scan finds
    nothing are put to sleep and woken only when an accepted move touches
    them.  Only improving moves are applied, so the result is never
    longer than the input.

    Args:
        tour: the starting tour.
        distance: pairwise distances.
        neighbor_count: candidate-list width ``k``.
        max_moves: safety cap on accepted moves.

    Returns:
        A tour whose length is <= the input's.
    """
    n = len(tour)
    if n < 4:
        return tour
    order = tour.order
    pos = [0] * n
    for idx, city in enumerate(order):
        pos[city] = idx
    with PERF.timer("tsp.knn_lists"):
        neighbors = nearest_neighbor_lists(distance, neighbor_count)

    active = deque(order)
    queued = [True] * n
    moves = 0
    with PERF.timer("tsp.two_opt_fast"):
        while active and moves < max_moves:
            a = active.popleft()
            queued[a] = False
            improved_here = False
            for forward in (True, False):
                # Edge at a: successor edge (a, next) or predecessor
                # edge (prev, a); either way the move adds edge (a, c).
                position = pos[a]
                anchor_a = position if forward else (position - 1) % n
                other = order[(position + 1) % n] if forward \
                    else order[position - 1]
                removed = distance(a, other)
                for c in neighbors[a]:
                    gain_edge = distance(a, c)
                    if gain_edge >= removed:
                        break  # neighbors are sorted; no improvement left
                    position_c = pos[c]
                    anchor_c = position_c if forward \
                        else (position_c - 1) % n
                    fourth = order[(anchor_c + 1) % n] if forward \
                        else order[anchor_c]
                    if _try_two_opt_move(order, pos, distance,
                                         anchor_a, anchor_c):
                        moves += 1
                        improved_here = True
                        for touched in (a, other, c, fourth):
                            if not queued[touched]:
                                queued[touched] = True
                                active.append(touched)
                        # Positions shifted: restart this city's scan.
                        position = pos[a]
                        anchor_a = position if forward \
                            else (position - 1) % n
                        other = order[(position + 1) % n] if forward \
                            else order[position - 1]
                        removed = distance(a, other)
            if improved_here and not queued[a]:
                queued[a] = True
                active.append(a)
    PERF.add("tsp.two_opt_fast.moves", moves)
    return Tour(order)


def or_opt_fast(tour: Tour, distance: DistanceMatrix,
                neighbor_count: int = 16,
                segment_lengths: tuple = (1, 2, 3),
                max_rounds: int = 25) -> Tour:
    """Or-opt restricted to insertions beside near neighbors.

    Same relocation move as :func:`or_opt`, but instead of scanning every
    insertion point it only tries re-inserting the segment next to the
    nearest neighbors of the segment's endpoints — where profitable
    insertions live.  Only improving moves are applied.
    """
    n = len(tour)
    if n < 5:
        return tour
    order = tour.order
    with PERF.timer("tsp.knn_lists"):
        neighbors = nearest_neighbor_lists(distance, neighbor_count)
    improved = True
    rounds = 0
    with PERF.timer("tsp.or_opt_fast"):
        while improved and rounds < max_rounds:
            improved = False
            rounds += 1
            for seg_len in segment_lengths:
                if seg_len >= n - 2:
                    continue
                if _or_opt_fast_pass(order, distance, seg_len, neighbors):
                    improved = True
    return Tour(order)


def _or_opt_fast_pass(order: List[int], distance: DistanceMatrix,
                      seg_len: int,
                      neighbors: Sequence[Sequence[int]]) -> bool:
    """One neighbor-guided relocation sweep for a fixed segment length."""
    n = len(order)
    improved = False
    i = 0
    while i + seg_len <= n:
        prev_city = order[i - 1] if i > 0 else order[-1]
        seg_first = order[i]
        seg_last = order[i + seg_len - 1]
        next_city = order[(i + seg_len) % n]
        removal_gain = (distance(prev_city, seg_first)
                        + distance(seg_last, next_city)
                        - distance(prev_city, next_city))
        if removal_gain <= 1e-12:
            i += 1
            continue
        segment = order[i:i + seg_len]
        in_segment = set(segment)
        rest = order[:i] + order[i + seg_len:]
        rest_pos = {city: idx for idx, city in enumerate(rest)}
        rest_len = len(rest)
        candidate_positions = set()
        for endpoint in (seg_first, seg_last):
            for near in neighbors[endpoint]:
                if near in in_segment:
                    continue
                idx = rest_pos[near]
                # Both edges incident to the near city.
                candidate_positions.add(idx)
                candidate_positions.add((idx - 1) % rest_len)
        best_delta = -1e-12
        best_position = -1
        # sorted(): tie-breaks between equally good insertion points
        # must not depend on set iteration order.
        for position in sorted(candidate_positions):
            a = rest[position]
            b = rest[(position + 1) % rest_len]
            insertion_cost = (distance(a, seg_first)
                              + distance(seg_last, b)
                              - distance(a, b))
            delta = insertion_cost - removal_gain
            if delta < best_delta:
                best_delta = delta
                best_position = position
        if best_position >= 0:
            rest[best_position + 1:best_position + 1] = segment
            order[:] = rest
            improved = True
        else:
            i += 1
    return improved


def three_opt(tour: Tour, distance: DistanceMatrix,
              max_rounds: int = 10) -> Tour:
    """Improve ``tour`` with first-improvement 3-opt.

    Considers the pure 3-opt reconnections that are not reachable by a
    single 2-opt move (segment reversal combinations and the segment
    exchange), restarting the scan after each accepted move.  Heavier
    than 2-opt — use it as a finishing pass on tours that matter.
    """
    n = len(tour)
    if n < 6:
        return two_opt(tour, distance, max_rounds=max_rounds)
    order = tour.order
    rounds = 0
    improved = True
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for i in range(n - 4):
            for j in range(i + 2, n - 2):
                for k in range(j + 2, n):
                    if i == 0 and k == n - 1:
                        continue
                    if _try_three_opt_move(order, distance, i, j, k):
                        improved = True
    return Tour(order)


def _try_three_opt_move(order: List[int], distance: DistanceMatrix,
                        i: int, j: int, k: int) -> bool:
    """Try the 3-opt reconnections on edges (i,i+1), (j,j+1), (k,k+1).

    Mutates ``order`` and returns True when an improving reconnection
    was applied.  Segments: A = order[..i], B = order[i+1..j],
    C = order[j+1..k], D = order[k+1..].
    """
    n = len(order)
    a, b = order[i], order[i + 1]
    c, d = order[j], order[j + 1]
    e, f = order[k], order[(k + 1) % n]
    base = distance(a, b) + distance(c, d) + distance(e, f)

    # Reconnection candidates (delta, rebuild key); 2-opt-equivalent
    # variants are skipped (two_opt handles those more cheaply).
    candidates = (
        # B reversed + C reversed.
        (distance(a, c) + distance(b, e) + distance(d, f), "rev_both"),
        # Segment exchange: A C B D (both forward).
        (distance(a, d) + distance(e, b) + distance(c, f), "exchange"),
        # C reversed then B forward: A C' B D variants.
        (distance(a, e) + distance(d, b) + distance(c, f), "c_rev_swap"),
        (distance(a, d) + distance(e, c) + distance(b, f), "b_rev_swap"),
    )
    best_delta = -1e-12
    best_key = None
    for cost, key in candidates:
        delta = cost - base
        if delta < best_delta:
            best_delta = delta
            best_key = key
    if best_key is None:
        return False

    segment_b = order[i + 1:j + 1]
    segment_c = order[j + 1:k + 1]
    if best_key == "rev_both":
        middle = segment_b[::-1] + segment_c[::-1]
    elif best_key == "exchange":
        middle = segment_c + segment_b
    elif best_key == "c_rev_swap":
        middle = segment_c[::-1] + segment_b
    else:  # "b_rev_swap"
        middle = segment_c + segment_b[::-1]
    order[i + 1:k + 1] = middle
    return True
