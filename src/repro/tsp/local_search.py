"""Tour improvement: 2-opt and Or-opt local search.

Both operators only ever *accept improving moves*, so the test suite can
assert that improvement never increases tour length — the library's core
TSP invariant.
"""

from __future__ import annotations

from typing import List

from .distance import DistanceMatrix
from .tour import Tour


def two_opt(tour: Tour, distance: DistanceMatrix,
            max_rounds: int = 50) -> Tour:
    """Improve ``tour`` with first-improvement 2-opt until a local optimum.

    Args:
        tour: the starting tour.
        distance: pairwise distances.
        max_rounds: safety cap on full improvement sweeps.

    Returns:
        A tour whose length is <= the input's, 2-opt locally optimal
        unless the round cap was hit first.
    """
    n = len(tour)
    if n < 4:
        return tour
    order = tour.order
    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for i in range(n - 1):
            a, b = order[i], order[i + 1]
            d_ab = distance(a, b)
            for j in range(i + 2, n):
                # Skip the move that would detach the closing edge's pair.
                if i == 0 and j == n - 1:
                    continue
                c, d = order[j], order[(j + 1) % n]
                delta = (distance(a, c) + distance(b, d)
                         - d_ab - distance(c, d))
                if delta < -1e-12:
                    order[i + 1:j + 1] = reversed(order[i + 1:j + 1])
                    improved = True
                    a, b = order[i], order[i + 1]
                    d_ab = distance(a, b)
    return Tour(order)


def or_opt(tour: Tour, distance: DistanceMatrix,
           segment_lengths: tuple = (1, 2, 3),
           max_rounds: int = 25) -> Tour:
    """Or-opt: relocate short segments to better positions.

    Moves chains of 1-3 consecutive cities between other edges whenever
    that shortens the tour.  Complements 2-opt (which can only reverse).
    """
    n = len(tour)
    if n < 5:
        return tour
    order = tour.order
    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for seg_len in segment_lengths:
            if seg_len >= n - 2:
                continue
            move_made = _or_opt_pass(order, distance, seg_len)
            improved = improved or move_made
    return Tour(order)


def _or_opt_pass(order: List[int], distance: DistanceMatrix,
                 seg_len: int) -> bool:
    """One relocation sweep for a fixed segment length."""
    n = len(order)
    improved = False
    i = 0
    while i < n:
        # Segment order[i .. i+seg_len-1]; must not wrap for simplicity.
        if i + seg_len > n:
            break
        prev_city = order[i - 1] if i > 0 else order[-1]
        seg_first = order[i]
        seg_last = order[i + seg_len - 1]
        next_index = (i + seg_len) % n
        next_city = order[next_index]
        removal_gain = (distance(prev_city, seg_first)
                        + distance(seg_last, next_city)
                        - distance(prev_city, next_city))
        if removal_gain <= 1e-12:
            i += 1
            continue
        segment = order[i:i + seg_len]
        rest = order[:i] + order[i + seg_len:]
        best_delta = -1e-12
        best_position = -1
        for position in range(len(rest)):
            a = rest[position]
            b = rest[(position + 1) % len(rest)]
            insertion_cost = (distance(a, seg_first)
                              + distance(seg_last, b)
                              - distance(a, b))
            delta = insertion_cost - removal_gain
            if delta < best_delta:
                best_delta = delta
                best_position = position
        if best_position >= 0:
            rest[best_position + 1:best_position + 1] = segment
            order[:] = rest
            improved = True
        else:
            i += 1
    return improved


def three_opt(tour: Tour, distance: DistanceMatrix,
              max_rounds: int = 10) -> Tour:
    """Improve ``tour`` with first-improvement 3-opt.

    Considers the pure 3-opt reconnections that are not reachable by a
    single 2-opt move (segment reversal combinations and the segment
    exchange), restarting the scan after each accepted move.  Heavier
    than 2-opt — use it as a finishing pass on tours that matter.
    """
    n = len(tour)
    if n < 6:
        return two_opt(tour, distance, max_rounds=max_rounds)
    order = tour.order
    rounds = 0
    improved = True
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for i in range(n - 4):
            for j in range(i + 2, n - 2):
                for k in range(j + 2, n):
                    if i == 0 and k == n - 1:
                        continue
                    if _try_three_opt_move(order, distance, i, j, k):
                        improved = True
    return Tour(order)


def _try_three_opt_move(order: List[int], distance: DistanceMatrix,
                        i: int, j: int, k: int) -> bool:
    """Try the 3-opt reconnections on edges (i,i+1), (j,j+1), (k,k+1).

    Mutates ``order`` and returns True when an improving reconnection
    was applied.  Segments: A = order[..i], B = order[i+1..j],
    C = order[j+1..k], D = order[k+1..].
    """
    n = len(order)
    a, b = order[i], order[i + 1]
    c, d = order[j], order[j + 1]
    e, f = order[k], order[(k + 1) % n]
    base = distance(a, b) + distance(c, d) + distance(e, f)

    # Reconnection candidates (delta, rebuild key); 2-opt-equivalent
    # variants are skipped (two_opt handles those more cheaply).
    candidates = (
        # B reversed + C reversed.
        (distance(a, c) + distance(b, e) + distance(d, f), "rev_both"),
        # Segment exchange: A C B D (both forward).
        (distance(a, d) + distance(e, b) + distance(c, f), "exchange"),
        # C reversed then B forward: A C' B D variants.
        (distance(a, e) + distance(d, b) + distance(c, f), "c_rev_swap"),
        (distance(a, d) + distance(e, c) + distance(b, f), "b_rev_swap"),
    )
    best_delta = -1e-12
    best_key = None
    for cost, key in candidates:
        delta = cost - base
        if delta < best_delta:
            best_delta = delta
            best_key = key
    if best_key is None:
        return False

    segment_b = order[i + 1:j + 1]
    segment_c = order[j + 1:k + 1]
    if best_key == "rev_both":
        middle = segment_b[::-1] + segment_c[::-1]
    elif best_key == "exchange":
        middle = segment_c + segment_b
    elif best_key == "c_rev_swap":
        middle = segment_c[::-1] + segment_b
    else:  # "b_rev_swap"
        middle = segment_c + segment_b[::-1]
    order[i + 1:k + 1] = middle
    return True
