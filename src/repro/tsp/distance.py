"""Distance matrices.

TSP heuristics work against an abstract ``distance(i, j)`` callable; this
module provides the Euclidean matrix over point lists (precomputed, since
the heuristics probe distances many times per pair).

The fast path builds the rows from flat coordinate arrays in one pass
(:func:`repro.geometry.flat_distance_rows`); the original per-Point
construction is kept as :func:`distance_rows_reference` and selected by
``reference_kernels()`` via the :mod:`repro.geometry.soa` backend flag.
Both produce bit-identical rows (``math.hypot`` over the same operand
pairs — symmetry mirroring vs. recomputation cannot diverge because
``hypot`` is sign- and order-symmetric in its arguments).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..errors import TourError
from ..geometry import Point, flat_distance_rows, soa

DistanceFn = Callable[[int, int], float]


def distance_rows_reference(points: Sequence[Point]) -> List[List[float]]:
    """The original row construction: per-Point ``distance_to`` calls with
    the lower triangle mirrored from the upper."""
    n = len(points)
    rows: List[List[float]] = []
    for i in range(n):
        row = [0.0] * n
        for j in range(n):
            if j < i:
                row[j] = rows[j][i]
            elif j > i:
                row[j] = points[i].distance_to(points[j])
        rows.append(row)
    return rows


class DistanceMatrix:
    """A dense, symmetric distance matrix over ``n`` cities."""

    def __init__(self, points: Sequence[Point]) -> None:
        """Precompute all pairwise Euclidean distances."""
        self._n = len(points)
        if soa._USE_REFERENCE:
            self._rows: List[List[float]] = distance_rows_reference(points)
        else:
            xs = [0.0] * self._n
            ys = [0.0] * self._n
            for i, point in enumerate(points):
                xs[i] = point.x
                ys[i] = point.y
            self._rows = flat_distance_rows(xs, ys)

    def __call__(self, i: int, j: int) -> float:
        return self._rows[i][j]

    def __len__(self) -> int:
        return self._n

    @property
    def size(self) -> int:
        """Return the number of cities."""
        return self._n

    def row(self, i: int) -> List[float]:
        """Return row ``i`` (a copy)."""
        return self._rows[i][:]

    def validate_index(self, i: int) -> None:
        """Raise on an out-of-range city index."""
        if not 0 <= i < self._n:
            raise TourError(f"city index out of range: {i} (n={self._n})")
