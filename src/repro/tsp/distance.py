"""Distance matrices.

TSP heuristics work against an abstract ``distance(i, j)`` callable; this
module provides the Euclidean matrix over point lists (precomputed, since
the heuristics probe distances many times per pair).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..errors import TourError
from ..geometry import Point

DistanceFn = Callable[[int, int], float]


class DistanceMatrix:
    """A dense, symmetric distance matrix over ``n`` cities."""

    def __init__(self, points: Sequence[Point]) -> None:
        """Precompute all pairwise Euclidean distances."""
        self._n = len(points)
        self._rows: List[List[float]] = []
        for i in range(self._n):
            row = [0.0] * self._n
            for j in range(self._n):
                if j < i:
                    row[j] = self._rows[j][i]
                elif j > i:
                    row[j] = points[i].distance_to(points[j])
            self._rows.append(row)

    def __call__(self, i: int, j: int) -> float:
        return self._rows[i][j]

    def __len__(self) -> int:
        return self._n

    @property
    def size(self) -> int:
        """Return the number of cities."""
        return self._n

    def row(self, i: int) -> List[float]:
        """Return row ``i`` (a copy)."""
        return self._rows[i][:]

    def validate_index(self, i: int) -> None:
        """Raise on an out-of-range city index."""
        if not 0 <= i < self._n:
            raise TourError(f"city index out of range: {i} (n={self._n})")
