"""Bundle Charging — a full reproduction of Wang, Wu & Dai (ICDCS 2019).

*Bundle Charging: Wireless Charging Energy Minimization in Dense Wireless
Sensor Networks.*

Quick start::

    from repro import (CostParameters, uniform_deployment,
                       make_planner, evaluate_plan)

    network = uniform_deployment(count=100, seed=7)
    cost = CostParameters.paper_defaults()
    plan = make_planner("BC-OPT", radius=20.0).plan(network, cost)
    metrics = evaluate_plan(plan, network.locations, cost)
    print(f"total energy: {metrics.total_j / 1000:.1f} kJ")

Layer map (bottom-up):

* :mod:`repro.geometry` — points, MinDisk, ellipse tangency.
* :mod:`repro.charging` — Eq. 1 and friends, energy accounting.
* :mod:`repro.network` — sensors and deployments.
* :mod:`repro.bundling` — OBG: greedy / grid / optimal bundle generation.
* :mod:`repro.tsp` — TSP solvers.
* :mod:`repro.tour` — BTO: plans, evaluation, Theorems 4/5, Algorithm 3.
* :mod:`repro.planners` — SC, CSS, BC, BC-OPT.
* :mod:`repro.sim` — discrete-event mission execution and validation.
* :mod:`repro.testbed` — the simulated Powercast testbed.
* :mod:`repro.experiments` — every figure of the paper, regenerated.
"""

from . import analysis, constants, fleet, io, lifetime, tspn, velocity, viz
from .bundling import (Bundle, BundleSet, find_optimal_radius,
                       greedy_bundles, grid_bundles, optimal_bundles)
from .charging import (ChargingModel, CostParameters, EnergyBreakdown,
                       FriisChargingModel, IdealDiskChargingModel,
                       LinearChargingModel, PowercastChargingModel)
from .errors import BundleChargingError
from .geometry import Disk, Point, smallest_enclosing_disk
from .network import (SensorNetwork, clustered_deployment,
                      grid_deployment, poisson_deployment,
                      testbed_deployment, uniform_deployment)
from .planners import (PAPER_ALGORITHMS, BundleChargingOptPlanner,
                       BundleChargingPlanner,
                       CombineSkipSubstitutePlanner, Planner,
                       SingleChargingPlanner, make_planner,
                       planner_names, register_planner)
from .sim import run_mission, validate_plan
from .testbed import paper_testbed, run_testbed
from .tour import (ChargingPlan, PlanMetrics, Stop, evaluate_plan,
                   optimize_tour, plan_total_energy)
from .tsp import Tour, solve_tsp

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "fleet",
    "io",
    "lifetime",
    "tspn",
    "velocity",
    "viz",
    "Bundle",
    "BundleChargingError",
    "BundleChargingOptPlanner",
    "BundleChargingPlanner",
    "BundleSet",
    "ChargingModel",
    "ChargingPlan",
    "CombineSkipSubstitutePlanner",
    "CostParameters",
    "Disk",
    "EnergyBreakdown",
    "FriisChargingModel",
    "IdealDiskChargingModel",
    "LinearChargingModel",
    "PAPER_ALGORITHMS",
    "Planner",
    "PlanMetrics",
    "Point",
    "PowercastChargingModel",
    "SensorNetwork",
    "SingleChargingPlanner",
    "Stop",
    "Tour",
    "clustered_deployment",
    "constants",
    "evaluate_plan",
    "find_optimal_radius",
    "greedy_bundles",
    "grid_bundles",
    "grid_deployment",
    "make_planner",
    "optimal_bundles",
    "optimize_tour",
    "paper_testbed",
    "plan_total_energy",
    "planner_names",
    "poisson_deployment",
    "register_planner",
    "run_mission",
    "run_testbed",
    "smallest_enclosing_disk",
    "solve_tsp",
    "testbed_deployment",
    "uniform_deployment",
    "validate_plan",
    "__version__",
]
