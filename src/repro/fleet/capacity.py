"""Battery-capacity-constrained missions (Wang et al., SECON 2014).

The movement-cost baseline the paper adopts ([4]) actually studies
chargers with a finite battery: the vehicle must return to the depot to
swap/recharge before its own budget runs out.  This module splits a
plan into depot-rooted *passes* whose energy stays within the budget —
the operational constraint any real deployment of bundle charging hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..charging import CostParameters
from ..errors import PlanError
from ..geometry import Point
from ..tour import ChargingPlan, Stop
from .split import _chunk_energy, _chunk_time


@dataclass(frozen=True)
class CapacityPass:
    """One depot-to-depot pass.

    Attributes:
        stops: stops served in this pass, in order.
        energy_j: the pass's movement + charging energy.
        time_s: the pass's duration at the given speed.
    """

    stops: List[Stop]
    energy_j: float
    time_s: float


@dataclass(frozen=True)
class CapacitySchedule:
    """A full mission split into battery-feasible passes.

    Attributes:
        passes: the depot-rooted passes, in execution order.
        total_energy_j: summed energy including every return leg.
        total_time_s: summed duration (one charger runs passes
            back-to-back; depot turnaround time is not modeled).
        overhead_j: extra energy versus the unsplit mission (the cost
            of the additional depot returns).
    """

    passes: List[CapacityPass]
    total_energy_j: float
    total_time_s: float
    overhead_j: float

    @property
    def pass_count(self) -> int:
        """Return how many passes the battery forced."""
        return len(self.passes)


def schedule_with_capacity(plan: ChargingPlan, capacity_j: float,
                           cost: CostParameters,
                           speed_m_per_s: float = 1.0
                           ) -> CapacitySchedule:
    """Split ``plan`` into passes of energy at most ``capacity_j``.

    The stop order is preserved; a stop is deferred to the next pass as
    soon as appending it (plus the return leg) would exceed the budget.

    Args:
        plan: a depot-rooted plan.
        capacity_j: the charger's battery budget per pass.
        cost: mission cost constants.
        speed_m_per_s: charger ground speed.

    Raises:
        PlanError: when the plan lacks a depot, the capacity is not
            positive, or a single stop alone exceeds the budget (no
            feasible schedule exists).
    """
    if plan.depot is None:
        raise PlanError("capacity scheduling needs a depot-rooted plan")
    if capacity_j <= 0.0:
        raise PlanError(f"invalid capacity: {capacity_j!r}")
    depot = plan.depot

    passes: List[CapacityPass] = []
    current: List[Stop] = []
    for stop in plan.stops:
        candidate = current + [stop]
        if _chunk_energy(candidate, depot, cost) <= capacity_j:
            current = candidate
            continue
        if not current:
            raise PlanError(
                f"stop at {stop.position} needs "
                f"{_chunk_energy([stop], depot, cost):.1f} J alone, "
                f"over the {capacity_j:.1f} J battery budget")
        passes.append(_close_pass(current, depot, cost, speed_m_per_s))
        current = [stop]
        if _chunk_energy(current, depot, cost) > capacity_j:
            raise PlanError(
                f"stop at {stop.position} exceeds the battery budget")
    if current:
        passes.append(_close_pass(current, depot, cost, speed_m_per_s))

    total_energy = sum(p.energy_j for p in passes)
    total_time = sum(p.time_s for p in passes)
    unsplit = _chunk_energy(list(plan.stops), depot, cost) \
        if plan.stops else 0.0
    return CapacitySchedule(
        passes=passes,
        total_energy_j=total_energy,
        total_time_s=total_time,
        overhead_j=max(0.0, total_energy - unsplit),
    )


def _close_pass(stops: Sequence[Stop], depot: Point,
                cost: CostParameters,
                speed_m_per_s: float) -> CapacityPass:
    return CapacityPass(
        stops=list(stops),
        energy_j=_chunk_energy(stops, depot, cost),
        time_s=_chunk_time(stops, depot, cost, speed_m_per_s),
    )


def minimum_feasible_capacity(plan: ChargingPlan,
                              cost: CostParameters) -> float:
    """Return the smallest battery that admits any schedule.

    That is the energy of the most expensive single-stop pass.
    """
    if plan.depot is None:
        raise PlanError("capacity scheduling needs a depot-rooted plan")
    if not plan.stops:
        return 0.0
    return max(_chunk_energy([stop], plan.depot, cost)
               for stop in plan.stops)
