"""Splitting one charging plan across k mobile chargers (m-TSP).

The paper's related work asks for the minimum number of chargers to keep
a network alive [26, 27]; the operational question downstream users hit
first is the dual: *given* k chargers, split the mission to minimize the
makespan (the slowest charger's mission time).

We use the classic tour-splitting scheme: keep the single-charger stop
order (a good TSP tour) and cut it into k contiguous chunks, each served
depot -> chunk -> depot.  The optimal contiguous cut for a fixed order
is found by binary search on the makespan with a greedy feasibility
check — the standard scheduling argument, exact for this formulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..charging import CostParameters
from ..errors import PlanError
from ..geometry import Point
from ..tour import ChargingPlan, Stop


@dataclass(frozen=True)
class FleetAssignment:
    """One charger's share of the mission.

    Attributes:
        charger_index: which charger this is (0-based).
        plan: the charger's own depot-rooted plan.
        mission_time_s: travel + dwell time at ``speed_m_per_s``.
        energy_j: movement + charging energy of this share.
    """

    charger_index: int
    plan: ChargingPlan
    mission_time_s: float
    energy_j: float


@dataclass(frozen=True)
class FleetPlan:
    """A full k-charger mission.

    Attributes:
        assignments: one entry per charger (possibly with empty plans
            when k exceeds the useful parallelism).
        makespan_s: the slowest charger's mission time.
        total_energy_j: summed energy over all chargers.
    """

    assignments: List[FleetAssignment]
    makespan_s: float
    total_energy_j: float

    @property
    def charger_count(self) -> int:
        """Return the fleet size."""
        return len(self.assignments)


def _chunk_time(stops: Sequence[Stop], depot: Point,
                cost: CostParameters, speed_m_per_s: float) -> float:
    """Mission time of serving ``stops`` in order from the depot."""
    if not stops:
        return 0.0
    length = depot.distance_to(stops[0].position)
    for i in range(len(stops) - 1):
        length += stops[i].position.distance_to(stops[i + 1].position)
    length += stops[-1].position.distance_to(depot)
    dwell = sum(stop.dwell_s for stop in stops)
    return length / speed_m_per_s + dwell


def _chunk_energy(stops: Sequence[Stop], depot: Point,
                  cost: CostParameters) -> float:
    """Energy of serving ``stops`` in order from the depot."""
    if not stops:
        return 0.0
    length = depot.distance_to(stops[0].position)
    for i in range(len(stops) - 1):
        length += stops[i].position.distance_to(stops[i + 1].position)
    length += stops[-1].position.distance_to(depot)
    charging = sum(cost.model.source_power_w * stop.dwell_s
                   for stop in stops)
    return cost.movement_energy(length) + charging


def _feasible_chunks(stops: Sequence[Stop], depot: Point,
                     cost: CostParameters, speed_m_per_s: float,
                     limit_s: float) -> Optional[List[List[Stop]]]:
    """Greedily cut ``stops`` into chunks of time <= ``limit_s``.

    Returns None when some single stop alone exceeds the limit.
    """
    chunks: List[List[Stop]] = []
    current: List[Stop] = []
    for stop in stops:
        candidate = current + [stop]
        if _chunk_time(candidate, depot, cost, speed_m_per_s) \
                <= limit_s:
            current = candidate
            continue
        if not current:
            return None  # even the lone stop does not fit
        chunks.append(current)
        current = [stop]
        if _chunk_time(current, depot, cost, speed_m_per_s) > limit_s:
            return None
    if current:
        chunks.append(current)
    return chunks


def split_plan(plan: ChargingPlan, chargers: int,
               cost: CostParameters, speed_m_per_s: float = 1.0,
               tolerance_s: float = 1.0) -> FleetPlan:
    """Split ``plan`` across ``chargers`` vehicles minimizing makespan.

    The stop *order* of the input plan is preserved; only contiguous
    cuts are considered (the standard tour-splitting relaxation, within
    a constant factor of the optimal m-TSP split for metric costs).

    Args:
        plan: a depot-rooted single-charger plan.
        chargers: fleet size ``k >= 1``.
        cost: mission cost constants.
        speed_m_per_s: charger ground speed.
        tolerance_s: binary-search resolution on the makespan.

    Raises:
        PlanError: when the plan has no depot or ``chargers < 1``.
    """
    if chargers < 1:
        raise PlanError(f"need at least one charger: {chargers!r}")
    if plan.depot is None:
        raise PlanError("fleet splitting needs a depot-rooted plan")
    depot = plan.depot
    stops = list(plan.stops)

    if not stops:
        assignments = [
            FleetAssignment(i, ChargingPlan(stops=(), depot=depot,
                                            label=plan.label), 0.0, 0.0)
            for i in range(chargers)]
        return FleetPlan(assignments, 0.0, 0.0)

    # Binary search on the makespan.
    low = max(_chunk_time([stop], depot, cost, speed_m_per_s)
              for stop in stops)
    high = _chunk_time(stops, depot, cost, speed_m_per_s)
    while high - low > tolerance_s:
        middle = (low + high) / 2.0
        chunks = _feasible_chunks(stops, depot, cost, speed_m_per_s,
                                  middle)
        if chunks is not None and len(chunks) <= chargers:
            high = middle
        else:
            low = middle
    chunks = _feasible_chunks(stops, depot, cost, speed_m_per_s, high)
    if chunks is None or len(chunks) > chargers:
        # Numerical corner: fall back to the single-chunk split.
        chunks = [stops]

    assignments: List[FleetAssignment] = []
    makespan = 0.0
    total_energy = 0.0
    for index in range(chargers):
        chunk = chunks[index] if index < len(chunks) else []
        sub_plan = ChargingPlan(stops=tuple(chunk), depot=depot,
                                label=f"{plan.label}/charger{index}")
        time_s = _chunk_time(chunk, depot, cost, speed_m_per_s)
        energy = _chunk_energy(chunk, depot, cost)
        makespan = max(makespan, time_s)
        total_energy += energy
        assignments.append(FleetAssignment(index, sub_plan, time_s,
                                           energy))
    return FleetPlan(assignments, makespan, total_energy)


def fleet_speedup(plan: ChargingPlan, chargers: int,
                  cost: CostParameters,
                  speed_m_per_s: float = 1.0) -> float:
    """Return single-charger time divided by the k-charger makespan."""
    single = split_plan(plan, 1, cost, speed_m_per_s=speed_m_per_s)
    fleet = split_plan(plan, chargers, cost,
                       speed_m_per_s=speed_m_per_s)
    if fleet.makespan_s == 0.0:
        return 1.0 if single.makespan_s == 0.0 else math.inf
    return single.makespan_s / fleet.makespan_s
