"""Interference-aware concurrent charging (Guo et al. [14], Ma et al.
[38]).

When several chargers radiate at once, nearby transmissions interfere;
the cited work schedules chargers so that simultaneously-active ones
stay apart.  We model this as graph coloring: two stops *conflict* when
their positions are within an interference distance, and a schedule is
a partition of stops into conflict-free rounds.

* :func:`conflict_graph` — build the conflict adjacency.
* :func:`greedy_coloring` — Welsh-Powell largest-degree-first greedy
  coloring (uses at most ``max_degree + 1`` rounds).
* :func:`concurrent_schedule` — color the stops and derive the
  concurrent makespan (each round lasts as long as its longest dwell),
  quantifying how much wall-clock a k-charger fleet can *actually* save
  once interference is respected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from ..errors import PlanError
from ..geometry import Point
from ..tour import ChargingPlan, Stop


def conflict_graph(positions: Sequence[Point],
                   interference_distance_m: float
                   ) -> List[Set[int]]:
    """Return adjacency sets: ``i`` and ``j`` conflict if within range.

    Raises:
        PlanError: on a negative interference distance.
    """
    if interference_distance_m < 0.0:
        raise PlanError(
            f"negative interference distance: "
            f"{interference_distance_m!r}")
    n = len(positions)
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if positions[i].distance_to(positions[j]) \
                    <= interference_distance_m:
                adjacency[i].add(j)
                adjacency[j].add(i)
    return adjacency


def greedy_coloring(adjacency: Sequence[Set[int]]) -> List[int]:
    """Color vertices greedily, largest degree first (Welsh-Powell).

    Returns:
        A color index per vertex; uses at most ``max_degree + 1``
        colors and adjacent vertices never share one.
    """
    n = len(adjacency)
    order = sorted(range(n), key=lambda v: -len(adjacency[v]))
    colors = [-1] * n
    for vertex in order:
        taken = {colors[neighbor] for neighbor in adjacency[vertex]
                 if colors[neighbor] >= 0}
        color = 0
        while color in taken:
            color += 1
        colors[vertex] = color
    return colors


@dataclass(frozen=True)
class ConcurrentSchedule:
    """A conflict-free concurrent charging schedule.

    Attributes:
        rounds: stop indices per round; stops in one round may radiate
            simultaneously.
        round_dwells_s: each round's duration (its longest dwell).
        sequential_dwell_s: total dwell if everything ran one-by-one.
    """

    rounds: List[List[int]]
    round_dwells_s: List[float]
    sequential_dwell_s: float

    @property
    def concurrent_dwell_s(self) -> float:
        """Total dwell wall-clock under the schedule."""
        return sum(self.round_dwells_s)

    @property
    def speedup(self) -> float:
        """Sequential over concurrent dwell time (>= 1)."""
        if self.concurrent_dwell_s == 0.0:
            return 1.0
        return self.sequential_dwell_s / self.concurrent_dwell_s

    @property
    def rounds_used(self) -> int:
        """Number of conflict-free rounds."""
        return len(self.rounds)


def concurrent_schedule(plan: ChargingPlan,
                        interference_distance_m: float,
                        max_concurrent: int = 0) -> ConcurrentSchedule:
    """Schedule the plan's stops into conflict-free concurrent rounds.

    Models a deployment where one charger is parked at every stop (or a
    fleet teleports between rounds): the lower bound on charging
    wall-clock once interference is respected.

    Args:
        plan: the mission whose stops should radiate concurrently.
        interference_distance_m: conflict range between active stops.
        max_concurrent: optional cap on simultaneously-active stops
            (the fleet size); 0 means unlimited.

    Raises:
        PlanError: on a negative cap.
    """
    if max_concurrent < 0:
        raise PlanError(f"negative concurrency cap: {max_concurrent!r}")
    stops: Sequence[Stop] = plan.stops
    positions = [stop.position for stop in stops]
    adjacency = conflict_graph(positions, interference_distance_m)
    colors = greedy_coloring(adjacency)

    by_color: Dict[int, List[int]] = {}
    for index, color in enumerate(colors):
        by_color.setdefault(color, []).append(index)

    rounds: List[List[int]] = []
    for color in sorted(by_color):
        group = by_color[color]
        if max_concurrent and len(group) > max_concurrent:
            # Split oversized rounds; longest dwells grouped together
            # so short stops do not wait on long ones.
            group = sorted(group, key=lambda i: -stops[i].dwell_s)
            for start in range(0, len(group), max_concurrent):
                rounds.append(group[start:start + max_concurrent])
        else:
            rounds.append(group)

    round_dwells = [max((stops[i].dwell_s for i in group),
                        default=0.0)
                    for group in rounds]
    sequential = sum(stop.dwell_s for stop in stops)
    return ConcurrentSchedule(
        rounds=rounds,
        round_dwells_s=round_dwells,
        sequential_dwell_s=sequential,
    )
