"""Multi-charger and battery-capacity extensions.

Tour splitting across k chargers (makespan-optimal contiguous cuts) and
battery-budgeted pass scheduling — the operational layer above the
single-charger planners.
"""

from .capacity import (CapacityPass, CapacitySchedule,
                       minimum_feasible_capacity,
                       schedule_with_capacity)
from .interference import (ConcurrentSchedule, concurrent_schedule,
                           conflict_graph, greedy_coloring)
from .split import (FleetAssignment, FleetPlan, fleet_speedup,
                    split_plan)

__all__ = [
    "CapacityPass",
    "CapacitySchedule",
    "ConcurrentSchedule",
    "FleetAssignment",
    "FleetPlan",
    "concurrent_schedule",
    "conflict_graph",
    "fleet_speedup",
    "greedy_coloring",
    "minimum_feasible_capacity",
    "schedule_with_capacity",
    "split_plan",
]
