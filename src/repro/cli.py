"""Command-line interface.

Regenerate any paper figure's data::

    bundle-charging fig12                 # laptop scale (10 seeds)
    bundle-charging fig13 --fast          # CI scale
    bundle-charging all --runs 100        # full paper scale
    bundle-charging fig14 --csv out/      # also dump CSVs
    bundle-charging fig13 --jobs 4        # parallel per-seed fan-out
    bundle-charging bench --quick         # old-vs-new kernel benchmark

(or ``python -m repro.cli ...`` without installing the entry point.)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import (ExperimentConfig, experiment_ids, print_tables,
                          run_experiment)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="bundle-charging",
        description="Regenerate the evaluation figures of 'Bundle "
                    "Charging' (ICDCS 2019).")
    parser.add_argument(
        "experiment",
        choices=experiment_ids() + ["all", "check", "bench"],
        help="which figure to regenerate; 'all' runs everything, "
             "'check' runs the reproduction-verdict harness, 'bench' "
             "times the fast-path kernels against their reference "
             "implementations")
    parser.add_argument(
        "--runs", type=int, default=None,
        help="random seeds per data point (default 10; paper used 100)")
    parser.add_argument(
        "--fast", action="store_true",
        help="CI scale: fewer seeds, nodes and radii")
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write each table as CSV into DIR")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the base seed")
    parser.add_argument(
        "--render", action="store_true",
        help="for fig10: also draw the example tours as ASCII art")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the per-seed loop (default 1); "
             "results are identical at any job count")
    parser.add_argument(
        "--quick", action="store_true",
        help="for bench: smaller workloads (CI scale)")
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="for bench: write the JSON report here "
             "(default BENCH_PR1.json in the working directory)")
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    """Translate CLI flags into an :class:`ExperimentConfig`."""
    config = (ExperimentConfig.fast() if args.fast
              else ExperimentConfig.default())
    if args.runs is not None:
        config = config.with_runs(args.runs)
    if args.seed is not None or args.jobs is not None:
        from dataclasses import replace
        overrides = {}
        if args.seed is not None:
            overrides["base_seed"] = args.seed
        if args.jobs is not None:
            overrides["jobs"] = args.jobs
        config = replace(config, **overrides)
    return config


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    config = make_config(args)
    if args.experiment == "bench":
        from .perf.bench import render_report, run_benchmarks
        report = run_benchmarks(quick=args.quick,
                                out_path=args.out or "BENCH_PR1.json")
        print(render_report(report))
        return 0 if report["all_identical"] else 1
    if args.experiment == "check":
        from .experiments import render_findings, \
            run_reproduction_check
        findings = run_reproduction_check(config)
        print(render_findings(findings))
        return 0 if all(f.passed for f in findings) else 1
    targets = (experiment_ids() if args.experiment == "all"
               else [args.experiment])
    for experiment_id in targets:
        started = time.perf_counter()
        tables = run_experiment(experiment_id, config)
        elapsed = time.perf_counter() - started
        print_tables(tables, csv_dir=args.csv)
        if args.render and experiment_id == "fig10":
            from .experiments.fig10_examples import render_examples
            print()
            print(render_examples(config))
        print(f"[{experiment_id} finished in {elapsed:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
