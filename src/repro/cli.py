"""Command-line interface.

Regenerate any paper figure's data::

    bundle-charging fig12                 # laptop scale (10 seeds)
    bundle-charging fig13 --fast          # CI scale
    bundle-charging all --runs 100        # full paper scale
    bundle-charging fig14 --csv out/      # also dump CSVs
    bundle-charging fig13 --jobs 4        # parallel per-seed fan-out
    bundle-charging bench --quick         # old-vs-new kernel benchmark

Observability (see docs/architecture.md, "Observability")::

    bundle-charging trace fig13 --fast --out-dir runs/
                                          # traced run: spans + manifest
    bundle-charging report --trace runs/fig13.jsonl
                                          # replay the energy ledger
    bundle-charging report --trace a.jsonl --diff b.jsonl
                                          # compare two traced runs
    bundle-charging fig13 --fast --profile --csv out/
                                          # cProfile next to the outputs

Static analysis (see docs/architecture.md, "Static analysis")::

    bundle-charging lint                  # lint src/ and tests/
    bundle-charging lint src --format json
    bundle-charging lint --list-rules     # rule catalogue + rationale

Stage memoization (see docs/architecture.md, "Caching & sweep reuse")::

    bundle-charging fig12 --cache         # in-memory stage cache
    bundle-charging fig12 --cache-dir .bc-cache/
                                          # on-disk cache: re-runs are warm
    bundle-charging fig12 --cache-dir .bc-cache/ --shadow-verify 0.1
                                          # spot-check hits against recompute
    bundle-charging cache stats --cache-dir .bc-cache/
    bundle-charging cache verify --cache-dir .bc-cache/
    bundle-charging cache clear --cache-dir .bc-cache/

Serving (see docs/architecture.md, "Serving")::

    bundle-charging serve                 # HTTP planning service :8080
    bundle-charging serve --port 0 --jobs 4 --queue-limit 64
    bundle-charging serve --cache-dir .bc-cache/ --trace-dir runs/
    bundle-charging serve --access-log access.jsonl

Load generation (see docs/api.md, "Load generation")::

    bundle-charging loadgen --rate 50 --duration-s 10
    bundle-charging loadgen --schedule ramp --rate 10 --rate-end 100

(or ``python -m repro.cli ...`` without installing the entry point.)
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import asdict
from typing import List, Optional

from .errors import ExperimentError
from .experiments import (ExperimentConfig, experiment_ids, print_tables,
                          run_experiment)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser."""
    parser = argparse.ArgumentParser(
        prog="bundle-charging",
        description="Regenerate the evaluation figures of 'Bundle "
                    "Charging' (ICDCS 2019).")
    parser.add_argument(
        "experiment",
        choices=experiment_ids() + ["all", "check", "bench", "trace",
                                    "report", "lint", "cache"],
        help="which figure to regenerate; 'all' runs everything, "
             "'check' runs the reproduction-verdict harness, 'bench' "
             "times the fast-path kernels against their reference "
             "implementations, 'trace' runs one experiment with span "
             "tracing and writes a JSONL log + provenance manifest, "
             "'report' replays a traced run's energy accounting, "
             "'lint' runs the determinism/invariant static analyzer "
             "(see 'bundle-charging lint --help'), 'cache' inspects an "
             "on-disk stage cache (stats/clear/verify); 'serve' runs "
             "the HTTP planning service (see 'bundle-charging serve "
             "--help')")
    parser.add_argument(
        "target", nargs="?", default=None,
        help="for trace: the experiment id to run traced; for cache: "
             "the action (stats, clear or verify)")
    parser.add_argument(
        "--runs", type=int, default=None,
        help="random seeds per data point (default 10; paper used 100)")
    parser.add_argument(
        "--fast", action="store_true",
        help="CI scale: fewer seeds, nodes and radii")
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write each table as CSV into DIR (plus a provenance "
             "manifest per experiment)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the base seed")
    parser.add_argument(
        "--radius", type=float, default=None,
        help="override the default charging radius in meters "
             "(experiments that sweep the radius ignore it)")
    parser.add_argument(
        "--render", action="store_true",
        help="for fig10: also draw the example tours as ASCII art")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the per-seed loop (default 1); "
             "results are identical at any job count")
    parser.add_argument(
        "--quick", action="store_true",
        help="for bench: smaller workloads (CI scale)")
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="for bench: write the JSON report here "
             "(default BENCH_PR7.json in the working directory)")
    parser.add_argument(
        "--only", metavar="NAME", default=None,
        help="for bench: run only the workloads whose key contains "
             "NAME (e.g. --only replan_latency)")
    parser.add_argument(
        "--cache", action="store_true",
        help="memoize pipeline stages in-process (bit-identical hits; "
             "results unchanged, repeated work skipped)")
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="on-disk stage cache shared across runs and --jobs workers "
             "(implies --cache); also the target of the 'cache' "
             "subcommand")
    parser.add_argument(
        "--cache-entries", type=int, default=None,
        help="LRU bound of the in-memory stage cache (default 256)")
    parser.add_argument(
        "--shadow-verify", type=float, metavar="RATE", default=None,
        help="fraction of cache hits to recompute and compare "
             "bit-for-bit (0 disables, 1 checks every hit)")
    parser.add_argument(
        "--warm-start", action="store_true",
        help="warm-start TSP local search from the previous same-size "
             "tour (changes the local optimum; excluded from "
             "paper-figure defaults)")
    parser.add_argument(
        "--shared-deployment", action="store_true",
        help="derive deployment seeds without the radius so a radius "
             "sweep reuses one deployment per run (common random "
             "numbers; excluded from paper-figure defaults)")
    parser.add_argument(
        "--out-dir", metavar="DIR", default=None,
        help="for trace: directory for the JSONL log, manifest and "
             "pstats (default '.')")
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="for report: the traced run's JSONL log to replay")
    parser.add_argument(
        "--diff", metavar="FILE", default=None,
        help="for report: second JSONL log to compare against")
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the experiment in cProfile and dump pstats next to "
             "the manifest")
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    """Translate CLI flags into an :class:`ExperimentConfig`.

    Raises:
        ExperimentError: on an invalid value (e.g. a negative
            ``--radius``) or a conflicting combination
            (``--warm-start`` with ``--shadow-verify``); ``main``
            turns these into exit code 2, never a traceback.
    """
    if (getattr(args, "warm_start", False)
            and getattr(args, "shadow_verify", None) is not None):
        raise ExperimentError(
            "--warm-start conflicts with --shadow-verify: warm-started "
            "stages are not memoized, so there are no cache hits to "
            "shadow-check")
    config = (ExperimentConfig.fast() if args.fast
              else ExperimentConfig.default())
    if args.runs is not None:
        config = config.with_runs(args.runs)
    overrides = {}
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if getattr(args, "radius", None) is not None:
        overrides["default_radius"] = args.radius
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if getattr(args, "cache", False):
        overrides["use_cache"] = True
    if getattr(args, "cache_dir", None) is not None:
        overrides["use_cache"] = True
        overrides["cache_dir"] = args.cache_dir
    if getattr(args, "cache_entries", None) is not None:
        overrides["cache_entries"] = args.cache_entries
    if getattr(args, "shadow_verify", None) is not None:
        overrides["shadow_verify"] = args.shadow_verify
    if getattr(args, "warm_start", False):
        overrides["use_cache"] = True
        overrides["warm_start"] = True
    if getattr(args, "shared_deployment", False):
        overrides["shared_deployment"] = True
    if overrides:
        from dataclasses import replace
        config = replace(config, **overrides)
    return config


def _seed_list(events: List[dict]) -> List[int]:
    """Extract the consumed per-run seeds from a trace, in run order."""
    return [event["attrs"]["seed"] for event in events
            if event.get("type") == "span"
            and event.get("name") == "seed"
            and "seed" in event.get("attrs", {})]


def run_traced(args: argparse.Namespace,
               config: ExperimentConfig) -> int:
    """The ``trace`` subcommand: one experiment, fully instrumented."""
    from .obs.manifest import build_manifest, write_manifest
    from .obs.profile import profiled
    from .obs.tracer import TRACER

    experiment_id = args.target
    if experiment_id not in experiment_ids():
        print(f"trace needs an experiment id, got {experiment_id!r}; "
              f"choose from {experiment_ids()}", file=sys.stderr)
        return 2
    out_dir = args.out_dir or "."
    os.makedirs(out_dir, exist_ok=True)
    profile_path = (os.path.join(out_dir, f"{experiment_id}.pstats")
                    if args.profile else None)

    TRACER.enabled = True
    TRACER.reset()
    started = time.perf_counter()
    try:
        with profiled(profile_path):
            tables = run_experiment(experiment_id, config)
    finally:
        TRACER.enabled = False
    elapsed = time.perf_counter() - started

    manifest = build_manifest(
        experiment_id, asdict(config), _seed_list(TRACER.events),
        elapsed, extra={"traced": True, "profiled": args.profile})
    trace_path = os.path.join(out_dir, f"{experiment_id}.jsonl")
    TRACER.write_jsonl(trace_path, manifest=manifest)
    manifest_path = os.path.join(out_dir, "manifest.json")
    write_manifest(manifest, manifest_path)
    TRACER.reset()

    print_tables(tables, csv_dir=args.csv)
    print(f"[{experiment_id} traced in {elapsed:.1f} s: "
          f"{trace_path} + {manifest_path}"
          + (f" + {profile_path}" if profile_path else "") + "]")
    return 0


def run_report(args: argparse.Namespace) -> int:
    """The ``report`` subcommand: replay a traced run's ledger."""
    if args.trace is None:
        print("report needs --trace <run.jsonl>", file=sys.stderr)
        return 2
    from .obs.report import diff_traces, render_trace_report
    if args.diff is not None:
        print(diff_traces(args.trace, args.diff))
    else:
        print(render_trace_report(args.trace))
    return 0


def _write_run_manifest(experiment_id: str, config: ExperimentConfig,
                        elapsed: float, csv_dir: str,
                        profiled_run: bool) -> None:
    """Drop a provenance record next to an experiment's CSV outputs."""
    from .obs.manifest import build_manifest, write_manifest
    manifest = build_manifest(
        experiment_id, asdict(config), [], elapsed,
        extra={"traced": False, "profiled": profiled_run})
    write_manifest(manifest, os.path.join(
        csv_dir, f"{experiment_id}.manifest.json"))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # The linter owns its flags (--format, --baseline, ...), so it
        # is dispatched before the experiment parser sees them.
        from .lint.cli import main as lint_main
        return lint_main(arguments[1:])
    if arguments and arguments[0] == "serve":
        # The service owns its flags (--host, --queue-limit, ...), so
        # it is dispatched before the experiment parser sees them.
        from .service.cli import main as serve_main
        return serve_main(arguments[1:])
    if arguments and arguments[0] == "loadgen":
        # Same deal: the load generator owns its flags.
        from .loadgen.cli import main as loadgen_main
        return loadgen_main(arguments[1:])
    args = build_parser().parse_args(arguments)
    try:
        config = make_config(args)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.experiment == "cache":
        from .cache.cli import run_cache_command
        return run_cache_command(args.target, args.cache_dir)
    if args.experiment == "bench":
        from .perf.bench import render_report, run_benchmarks
        try:
            report = run_benchmarks(
                quick=args.quick,
                out_path=args.out or "BENCH_PR7.json",
                only=args.only)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_report(report))
        return 0 if report["all_identical"] else 1
    if args.experiment == "check":
        from .experiments import render_findings, \
            run_reproduction_check
        findings = run_reproduction_check(config)
        print(render_findings(findings))
        return 0 if all(f.passed for f in findings) else 1
    if args.experiment == "trace":
        return run_traced(args, config)
    if args.experiment == "report":
        return run_report(args)
    targets = (experiment_ids() if args.experiment == "all"
               else [args.experiment])
    from .obs.profile import profiled
    for experiment_id in targets:
        profile_path = None
        if args.profile:
            profile_dir = args.csv or "."
            os.makedirs(profile_dir, exist_ok=True)
            profile_path = os.path.join(profile_dir,
                                        f"{experiment_id}.pstats")
        started = time.perf_counter()
        with profiled(profile_path):
            tables = run_experiment(experiment_id, config)
        elapsed = time.perf_counter() - started
        print_tables(tables, csv_dir=args.csv)
        if args.csv is not None:
            _write_run_manifest(experiment_id, config, elapsed,
                                args.csv, args.profile)
        if args.render and experiment_id == "fig10":
            from .experiments.fig10_examples import render_examples
            print()
            print(render_examples(config))
        print(f"[{experiment_id} finished in {elapsed:.1f} s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
