"""Velocity-controlled (charging-while-moving) substrate.

Implements the fixed-trajectory speed-control setting of the paper's
refs [2, 25], and quantifies the paper's claim that stop-and-charge
dominates drive-through charging under quadratic attenuation.
"""

from .control import (DEFAULT_STEP_M, DriveThroughComparison,
                      drive_through_vs_stops, harvest_along_path,
                      max_feasible_speed)
from .path import PolylinePath

__all__ = [
    "DEFAULT_STEP_M",
    "DriveThroughComparison",
    "PolylinePath",
    "drive_through_vs_stops",
    "harvest_along_path",
    "max_feasible_speed",
]
