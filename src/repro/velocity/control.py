"""Velocity control for charging-while-moving (Dong et al. [2]).

Given a fixed trajectory, a charger radiating continuously while it
drives delivers ``integral p_r(d(s)) / v ds`` to each sensor — slower
traversal charges more.  Ref [2] asks for the *maximum constant speed*
that still fully charges every sensor; this module answers it on our
substrate:

* :func:`harvest_along_path` — per-sensor energy for a traversal speed;
* :func:`max_feasible_speed` — binary search on the speed (harvest is
  exactly inversely proportional to speed, so the search is really a
  closed form — computed that way, with the search kept for models
  whose emission depends on speed);
* :func:`traversal_energy` — the charger-side cost of the drive-through
  strategy, comparable against stop-and-charge plans.

The paper argues stop-and-charge dominates drive-through charging under
quadratic attenuation ("charging sensors at a position which is closest
to the sensor is always the best"); :func:`drive_through_vs_stops`
quantifies that claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..charging import CostParameters
from ..errors import ModelError
from ..network import SensorNetwork
from .path import PolylinePath

#: Default integration step along the path (meters).
DEFAULT_STEP_M = 2.0


def harvest_along_path(path: PolylinePath, network: SensorNetwork,
                       cost: CostParameters, speed_m_per_s: float,
                       step_m: float = DEFAULT_STEP_M
                       ) -> Dict[int, float]:
    """Return per-sensor harvested energy for one traversal.

    Midpoint-rule integration of ``p_r(d(s)) / v`` over the path.

    Args:
        path: the fixed trajectory.
        network: the sensors.
        cost: provides the charging model.
        speed_m_per_s: constant traversal speed.
        step_m: integration step.

    Raises:
        ModelError: on a non-positive speed or step.
    """
    if speed_m_per_s <= 0.0 or not math.isfinite(speed_m_per_s):
        raise ModelError(f"invalid speed: {speed_m_per_s!r}")
    if step_m <= 0.0:
        raise ModelError(f"invalid step: {step_m!r}")
    samples = path.sample(step_m)
    harvested = {sensor.index: 0.0 for sensor in network}
    if len(samples) < 2:
        return harvested
    for i in range(len(samples) - 1):
        midpoint = (samples[i] + samples[i + 1]) * 0.5
        segment_length = samples[i].distance_to(samples[i + 1])
        dwell = segment_length / speed_m_per_s
        for sensor in network:
            distance = midpoint.distance_to(sensor.location)
            power = cost.model.received_power(distance)
            if power > 0.0:
                harvested[sensor.index] += power * dwell
    return harvested


def max_feasible_speed(path: PolylinePath, network: SensorNetwork,
                       cost: CostParameters,
                       step_m: float = DEFAULT_STEP_M) -> float:
    """Return the fastest constant speed that fully charges everyone.

    For a speed-independent emitter, harvest scales as ``1 / v``:
    measuring the per-sensor harvest at ``v = 1`` gives
    ``v_max = min_j harvest_j(1) / delta`` in closed form (the ref [2]
    objective).  Returns 0 when some sensor receives nothing at any
    speed (e.g. beyond a hard cutoff model's range).
    """
    reference = harvest_along_path(path, network, cost, 1.0,
                                   step_m=step_m)
    if not reference:
        return math.inf
    worst = min(reference.values())
    if worst <= 0.0:
        return 0.0
    return worst / cost.delta_j


@dataclass(frozen=True)
class DriveThroughComparison:
    """Drive-through vs stop-and-charge on the same tour geometry.

    Attributes:
        drive_speed_m_per_s: ref [2]'s max feasible constant speed.
        drive_time_s: traversal duration at that speed.
        drive_energy_j: charger energy (movement + continuous
            radiation) of the drive-through strategy.
        stop_energy_j: the stop-and-charge plan's energy (Eq. 3).
    """

    drive_speed_m_per_s: float
    drive_time_s: float
    drive_energy_j: float
    stop_energy_j: float

    @property
    def stop_advantage(self) -> float:
        """Return drive energy / stop energy (>1 favours stopping)."""
        if self.stop_energy_j <= 0.0:
            return math.inf
        return self.drive_energy_j / self.stop_energy_j


def drive_through_vs_stops(plan, network: SensorNetwork,
                           cost: CostParameters,
                           step_m: float = DEFAULT_STEP_M
                           ) -> DriveThroughComparison:
    """Compare charging-while-moving against the stop plan's Eq. 3 cost.

    The drive-through strategy traverses the *same closed tour* as the
    plan, radiating continuously at the max feasible constant speed.
    The paper's Section III-B claim is that this always loses under
    quadratic attenuation; this function measures by how much.
    """
    from ..tour import plan_total_energy

    waypoints = plan.waypoints()
    path = PolylinePath(waypoints, closed=True)
    speed = max_feasible_speed(path, network, cost, step_m=step_m)
    if speed <= 0.0:
        return DriveThroughComparison(
            drive_speed_m_per_s=0.0, drive_time_s=math.inf,
            drive_energy_j=math.inf,
            stop_energy_j=plan_total_energy(plan, network.locations,
                                            cost))
    drive_time = path.length / speed
    drive_energy = (cost.movement_energy(path.length)
                    + cost.model.source_power_w * drive_time)
    stop_energy = plan_total_energy(plan, network.locations, cost)
    return DriveThroughComparison(
        drive_speed_m_per_s=speed,
        drive_time_s=drive_time,
        drive_energy_j=drive_energy,
        stop_energy_j=stop_energy,
    )
