"""Arc-length-parameterized polyline paths.

The velocity-control literature the paper engages ([2], [25]) fixes the
charger's *trajectory* and optimizes its *speed*.  This module provides
the trajectory object: a polyline with constant-speed traversal,
arc-length lookup and uniform sampling.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence

from ..errors import GeometryError
from ..geometry import Point


class PolylinePath:
    """A polyline with arc-length parameterization."""

    def __init__(self, waypoints: Sequence[Point],
                 closed: bool = False) -> None:
        """Create a path.

        Args:
            waypoints: at least one waypoint; consecutive duplicates are
                allowed (zero-length segments are skipped in lookups).
            closed: when True, append the leg from the last waypoint
                back to the first.
        """
        if not waypoints:
            raise GeometryError("a path needs at least one waypoint")
        points = list(waypoints)
        if closed and len(points) > 1:
            points.append(points[0])
        self._points: List[Point] = points
        self._cumulative: List[float] = [0.0]
        for i in range(len(points) - 1):
            step = points[i].distance_to(points[i + 1])
            self._cumulative.append(self._cumulative[-1] + step)

    @property
    def length(self) -> float:
        """Return the total path length."""
        return self._cumulative[-1]

    @property
    def waypoints(self) -> List[Point]:
        """Return the waypoint list (copy)."""
        return self._points[:]

    def point_at(self, arc_length: float) -> Point:
        """Return the path point at the given arc length.

        Values are clamped into ``[0, length]``.
        """
        s = min(self.length, max(0.0, arc_length))
        if self.length == 0.0:
            return self._points[0]
        index = bisect.bisect_right(self._cumulative, s) - 1
        index = min(index, len(self._points) - 2)
        segment_start = self._cumulative[index]
        segment_length = self._cumulative[index + 1] - segment_start
        if segment_length == 0.0:
            return self._points[index]
        t = (s - segment_start) / segment_length
        a = self._points[index]
        b = self._points[index + 1]
        return a + (b - a) * t

    def sample(self, step_m: float) -> List[Point]:
        """Return points every ``step_m`` meters along the path.

        Always includes both endpoints.

        Raises:
            GeometryError: on a non-positive step.
        """
        if step_m <= 0.0:
            raise GeometryError(f"invalid sample step: {step_m!r}")
        if self.length == 0.0:
            return [self._points[0]]
        count = max(1, int(self.length / step_m))
        samples = [self.point_at(self.length * i / count)
                   for i in range(count + 1)]
        return samples
