#!/usr/bin/env python3
"""Extending the library with a custom charging model.

The paper claims its framework "can extend to other charging models with
the minimum modification".  This example proves it: we define a new
exponential-attenuation model in ~15 lines, plug it into the standard
cost parameters, and rerun the full planner stack — then compare how the
optimal bundle radius shifts across attenuation laws (an ablation the
paper does not run, but its Section IV-C machinery makes trivial).

Run:  python examples/custom_charging_model.py
"""

import math

from repro import (CostParameters, FriisChargingModel,
                   LinearChargingModel, evaluate_plan, make_planner,
                   uniform_deployment)
from repro.charging import ChargingModel

NODE_COUNT = 80
SEED = 11
RADII = (10.0, 20.0, 30.0, 40.0)


class ExponentialChargingModel(ChargingModel):
    """Received power decays as ``eta0 * exp(-d / scale)``.

    A pessimistic indoor model: obstacles make power fall off faster
    than free-space Friis.
    """

    def __init__(self, eta0: float, scale_m: float,
                 source_power_w: float) -> None:
        super().__init__(source_power_w)
        self.eta0 = eta0
        self.scale_m = scale_m

    def received_power(self, distance_m: float) -> float:
        self._check_distance(distance_m)
        return (self.eta0 * math.exp(-distance_m / self.scale_m)
                * self.source_power_w)


def main() -> None:
    network = uniform_deployment(count=NODE_COUNT, seed=SEED)

    models = {
        "friis (paper Eq. 1)": FriisChargingModel(),
        "linear cutoff": LinearChargingModel(
            peak_efficiency=0.04, cutoff_m=120.0, source_power_w=0.015),
        "exponential (steep)": ExponentialChargingModel(
            eta0=0.04, scale_m=15.0, source_power_w=0.015),
    }

    print(f"{NODE_COUNT} sensors; BC-OPT total energy (kJ) per charging "
          f"model and bundle radius:\n")
    header = f"{'model':22s}" + "".join(f"  r={r:>4.0f} m" for r in RADII)
    print(header)
    print("-" * len(header))
    for label, model in models.items():
        cost = CostParameters(model=model)
        cells = []
        best = (None, float("inf"))
        for radius in RADII:
            plan = make_planner("BC-OPT", radius=radius).plan(network,
                                                              cost)
            total = evaluate_plan(plan, network.locations, cost).total_j
            cells.append(total / 1000.0)
            if total < best[1]:
                best = (radius, total)
        row = f"{label:22s}" + "".join(f"  {c:8.1f}" for c in cells)
        print(f"{row}   (best r = {best[0]:.0f} m)")

    print("\nThe steep exponential model punishes distant charging, so "
          "its best bundle radius is smaller than under the paper's "
          "Friis law. The planners never changed — only the "
          "ChargingModel subclass did.")


if __name__ == "__main__":
    main()
