#!/usr/bin/env python3
"""Quickstart: plan a charging mission four ways and compare.

Deploys 80 sensors uniformly in a 1 km x 1 km field (the paper's
setting), runs all four planners at a 20 m bundle radius, prints the
energy comparison, and then *executes* the best plan in the discrete-
event simulator to prove every sensor actually gets its 2 J.

Run:  python examples/quickstart.py
"""

from repro import (CostParameters, evaluate_plan, make_planner,
                   planner_names, uniform_deployment, validate_plan)

NODE_COUNT = 80
BUNDLE_RADIUS_M = 20.0
SEED = 42


def main() -> None:
    network = uniform_deployment(count=NODE_COUNT, seed=SEED)
    cost = CostParameters.paper_defaults()

    print(f"Deployment: {NODE_COUNT} sensors, "
          f"{network.field_side_m:.0f} m field, "
          f"{network.density_per_km2():.0f} sensors/km^2")
    print(f"Bundle radius: {BUNDLE_RADIUS_M:.0f} m\n")

    header = (f"{'algorithm':9s} {'stops':>5s} {'tour (m)':>9s} "
              f"{'move (kJ)':>9s} {'charge (kJ)':>11s} {'total (kJ)':>10s}")
    print(header)
    print("-" * len(header))

    best_name, best_plan, best_total = None, None, float("inf")
    for name in planner_names():
        planner = make_planner(name, BUNDLE_RADIUS_M)
        plan = planner.plan(network, cost)
        metrics = evaluate_plan(plan, network.locations, cost)
        print(f"{name:9s} {metrics.stop_count:5d} "
              f"{metrics.energy.tour_length_m:9.0f} "
              f"{metrics.energy.movement_j / 1000:9.2f} "
              f"{metrics.energy.charging_j / 1000:11.2f} "
              f"{metrics.total_j / 1000:10.2f}")
        if metrics.total_j < best_total:
            best_name, best_plan, best_total = name, plan, metrics.total_j

    print(f"\nBest planner: {best_name} "
          f"({best_total / 1000:.2f} kJ). Simulating its mission...")
    result = validate_plan(best_plan, network, cost)
    trace = result.trace
    print(f"  mission time:        {trace.mission_time_s / 3600:.1f} h")
    print(f"  driven distance:     {trace.tour_length_m:.0f} m")
    print(f"  sensors satisfied:   "
          f"{len(network) - len(result.shortfalls)}/{len(network)}")
    print(f"  incidental harvest:  "
          f"{100 * result.incidental_fraction:.1f}% of received energy "
          f"came from neighbouring stops (one-to-many bonus)")
    assert result.satisfied, "every sensor must reach its 2 J requirement"
    print("\nOK: the plan fully charges the network.")


if __name__ == "__main__":
    main()
