#!/usr/bin/env python3
"""Operational robustness: failure injection and concurrent charging.

Two questions a deployment engineer asks that the paper's figures don't
answer directly:

1. *How wrong can my charging model be before sensors end up short?*
   Failure injection: scale every harvest down until some sensor misses
   its 2 J — the break-even scale is the plan's robustness margin.
2. *If I park several chargers and radiate concurrently, how much
   wall-clock do I save once interference is respected?*
   Conflict-free round scheduling over the interference graph.

Run:  python examples/robustness_analysis.py
"""

from repro import (CostParameters, make_planner, uniform_deployment,
                   validate_plan)
from repro.fleet import concurrent_schedule
from repro.sim import robustness_margin

NODE_COUNT = 60
RADIUS_M = 30.0
SEED = 21


def main() -> None:
    network = uniform_deployment(count=NODE_COUNT, seed=SEED)
    cost = CostParameters.paper_defaults()

    print(f"{NODE_COUNT} sensors, bundle radius {RADIUS_M:.0f} m\n")
    print("Failure injection (break-even harvest scale; lower = more "
          "headroom):")
    print(f"{'planner':9s} {'break-even':>11s} {'headroom':>9s} "
          f"{'incidental':>11s}")
    for name in ("SC", "BC", "BC-OPT"):
        plan = make_planner(name, RADIUS_M).plan(network, cost)
        margin = robustness_margin(plan, network, cost)
        result = validate_plan(plan, network, cost)
        print(f"{name:9s} {margin:11.3f} {100 * (1 - margin):8.1f}% "
              f"{100 * result.incidental_fraction:10.1f}%")

    print("\nConcurrent charging (one parked charger per BC stop, "
          "conflict-free rounds):")
    plan = make_planner("BC", RADIUS_M).plan(network, cost)
    print(f"{'interference (m)':>17s} {'rounds':>7s} {'speedup':>8s}")
    for distance in (25.0, 50.0, 100.0, 200.0, 400.0):
        schedule = concurrent_schedule(plan, distance)
        print(f"{distance:17.0f} {schedule.rounds_used:7d} "
              f"{schedule.speedup:8.2f}")

    print("\nThe one-to-many property cuts both ways: incidental "
          "harvest buys robustness headroom, while interference limits "
          "how much of the dwell time concurrency can recover.")


if __name__ == "__main__":
    main()
