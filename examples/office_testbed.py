#!/usr/bin/env python3
"""Replicate the paper's Section VII Powercast testbed.

Six P2110-equipped sensors in a 5 m x 5 m office, a robot car with a 3 W
TX91501 transmitter at 915 MHz, 4 mJ per-sensor requirement.  We run SC,
BC and BC-OPT at the paper's highlighted radius (1.2 m) and report the
same quantities Fig. 16 plots, plus the AP's per-sensor harvest log.

Run:  python examples/office_testbed.py
"""

from repro import constants, make_planner
from repro.planners import (BundleChargingOptPlanner,
                            BundleChargingPlanner, SingleChargingPlanner)
from repro.testbed import paper_testbed, run_testbed

RADIUS_M = 1.2


def main() -> None:
    scenario = paper_testbed()
    model = scenario.cost.model
    print("Powercast testbed (simulated):")
    print(f"  transmitter: {model.source_power_w:.0f} W at "
          f"{constants.TESTBED_FREQUENCY_HZ / 1e6:.0f} MHz "
          f"(lambda = {model.wavelength_m:.2f} m)")
    print(f"  harvester cutoff range: {model.max_charging_range():.1f} m")
    print(f"  sensors: {len(scenario.network)} at "
          f"{[s.location.as_tuple() for s in scenario.network]}")
    print(f"  requirement: "
          f"{scenario.network[0].required_j * 1000:.0f} mJ/sensor, "
          f"car speed {scenario.speed_m_per_s} m/s\n")

    planners = {
        "SC": SingleChargingPlanner(tsp_strategy="exact"),
        "BC": BundleChargingPlanner(RADIUS_M, tsp_strategy="exact"),
        "BC-OPT": BundleChargingOptPlanner(RADIUS_M,
                                           tsp_strategy="exact"),
    }

    header = (f"{'algorithm':9s} {'stops':>5s} {'tour (m)':>9s} "
              f"{'time (s)':>9s} {'total (J)':>10s} {'vs SC':>7s}")
    print(header)
    print("-" * len(header))
    sc_energy = None
    for name, planner in planners.items():
        run = run_testbed(planner, scenario)
        if sc_energy is None:
            sc_energy = run.total_energy_j
        saving = 100.0 * (1.0 - run.total_energy_j / sc_energy)
        print(f"{name:9s} {len(run.plan):5d} {run.tour_length_m:9.2f} "
              f"{run.mission_time_s:9.1f} {run.total_energy_j:10.2f} "
              f"{saving:6.1f}%")

    # Peek at what the access point recorded during the BC-OPT mission.
    run = run_testbed(planners["BC-OPT"], scenario)
    print(f"\nAP collected {run.reports} report frames; "
          f"{run.charged_sensors}/{len(scenario.network)} sensors "
          f"reached their requirement.")
    print("Same qualitative picture as the paper's Fig. 16: bundling "
          "saves energy even with only six sensors, and the gain comes "
          "almost entirely from the shorter tour.")


if __name__ == "__main__":
    main()


# `make_planner` is the registry route to the same objects:
assert make_planner("BC", 1.2).name == "BC"
