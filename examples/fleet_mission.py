#!/usr/bin/env python3
"""Fleet operations: k chargers and finite batteries.

Plans one BC-OPT mission over 100 sensors, then answers the two
deployment questions the single-charger paper leaves open:

1. How does the mission makespan scale if we field k chargers?
   (contiguous tour splitting, exact for a fixed stop order)
2. What happens when a charger's own battery cannot cover the whole
   tour? (pass scheduling with depot returns)

Run:  python examples/fleet_mission.py
"""

from repro import CostParameters, make_planner, uniform_deployment
from repro.fleet import (minimum_feasible_capacity,
                         schedule_with_capacity, split_plan)

NODE_COUNT = 100
RADIUS_M = 25.0
SEED = 314
SPEED_M_PER_S = 1.0


def main() -> None:
    network = uniform_deployment(count=NODE_COUNT, seed=SEED)
    cost = CostParameters.paper_defaults()
    plan = make_planner("BC-OPT", radius=RADIUS_M).plan(network, cost)
    print(f"Mission: {len(plan)} stops, {plan.tour_length():.0f} m "
          f"tour, {plan.total_dwell_s() / 3600:.1f} h of charging\n")

    print("Fleet scaling (contiguous tour split):")
    print(f"{'chargers':>9s} {'makespan (h)':>13s} {'speedup':>8s} "
          f"{'energy (kJ)':>12s}")
    single = split_plan(plan, 1, cost, speed_m_per_s=SPEED_M_PER_S)
    for k in (1, 2, 3, 4, 6, 8):
        fleet = split_plan(plan, k, cost, speed_m_per_s=SPEED_M_PER_S)
        speedup = single.makespan_s / fleet.makespan_s
        print(f"{k:9d} {fleet.makespan_s / 3600:13.1f} "
              f"{speedup:8.2f} {fleet.total_energy_j / 1000:12.1f}")

    print("\nBattery-constrained passes (one charger):")
    floor = minimum_feasible_capacity(plan, cost)
    print(f"  minimum feasible battery: {floor / 1000:.1f} kJ")
    print(f"{'battery (kJ)':>13s} {'passes':>7s} "
          f"{'overhead (kJ)':>14s} {'total time (h)':>15s}")
    for factor in (1.1, 1.5, 3.0, 10.0):
        budget = floor * factor
        schedule = schedule_with_capacity(plan, budget, cost,
                                          speed_m_per_s=SPEED_M_PER_S)
        print(f"{budget / 1000:13.1f} {schedule.pass_count:7d} "
              f"{schedule.overhead_j / 1000:14.2f} "
              f"{schedule.total_time_s / 3600:15.1f}")

    print("\nTakeaway: splitting is near-linear in makespan but every "
          "extra charger (or battery-forced pass) pays fresh depot "
          "legs — the energy/latency trade-off in one table.")


if __name__ == "__main__":
    main()
