#!/usr/bin/env python3
"""Habitat monitoring: clustered deployments and radius auto-tuning.

The paper motivates bundle charging with dense-cluster deployments
(jungle habitat monitoring, DARPA smart dust).  This example deploys 120
sensors in 6 Gaussian hot spots, uses the Section IV-C radius search to
pick the best bundle radius for BC-OPT, and shows how much bundle
charging beats per-sensor charging when sensors really do cluster.

Run:  python examples/habitat_monitoring.py
"""

from repro import (CostParameters, clustered_deployment, evaluate_plan,
                   find_optimal_radius, make_planner)

NODE_COUNT = 120
CLUSTERS = 6
CLUSTER_SPREAD_M = 40.0
SEED = 2019
CANDIDATE_RADII = (10.0, 20.0, 30.0, 40.0, 60.0, 80.0)


def main() -> None:
    network = clustered_deployment(
        count=NODE_COUNT, seed=SEED, clusters=CLUSTERS,
        spread_m=CLUSTER_SPREAD_M)
    cost = CostParameters.paper_defaults()
    print(f"Habitat deployment: {NODE_COUNT} sensors in {CLUSTERS} "
          f"hot spots (sigma = {CLUSTER_SPREAD_M:.0f} m)\n")

    # Baseline: charge every sensor individually.
    sc_plan = make_planner("SC", radius=0.0).plan(network, cost)
    sc_total = evaluate_plan(sc_plan, network.locations, cost).total_j
    print(f"SC baseline: {sc_total / 1000:.1f} kJ "
          f"({len(sc_plan)} stops)\n")

    # Section IV-C: sweep candidate radii with BC-OPT and keep the best.
    def objective(radius: float) -> float:
        plan = make_planner("BC-OPT", radius=radius).plan(network, cost)
        return evaluate_plan(plan, network.locations, cost).total_j

    print(f"{'radius (m)':>10s} {'BC-OPT total (kJ)':>18s}")
    sweep = find_optimal_radius(objective, CANDIDATE_RADII)
    for radius, total in sweep.evaluations:
        marker = "  <-- best" if radius == sweep.best_radius else ""
        print(f"{radius:10.0f} {total / 1000:18.2f}{marker}")

    saving = 100.0 * (1.0 - sweep.best_value / sc_total)
    best_plan = make_planner(
        "BC-OPT", radius=sweep.best_radius).plan(network, cost)
    print(f"\nBest bundle radius: {sweep.best_radius:.0f} m -> "
          f"{sweep.best_value / 1000:.1f} kJ with {len(best_plan)} stops "
          f"({saving:.0f}% below SC)")
    print("Clustered fields reward bundle charging far more than the "
          "uniform fields of the paper's Fig. 12: whole hot spots "
          "collapse into single charging stops.")


if __name__ == "__main__":
    main()
