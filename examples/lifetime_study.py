#!/usr/bin/env python3
"""Network-lifetime study: which planner keeps sensors alive cheapest?

Simulates 30 days of operation: sensors drain (duty-cycled sensing with
30 % heterogeneity), a charging round is triggered whenever 5 sensors
drop below 0.5 J, the planner dispatches the charger, batteries refill
(clipped at the 2 J WISP capacity), repeat.  Reports the operational
scoreboard per planner.

Run:  python examples/lifetime_study.py
"""

from repro import CostParameters, make_planner, uniform_deployment
from repro.lifetime import ConstantDrain, LifetimeSimulator
from repro.planners import PAPER_ALGORITHMS

NODE_COUNT = 50
RADIUS_M = 30.0
SEED = 99
DAYS = 30
DRAIN_W = 5e-6  # 5 uW average sensing draw


def main() -> None:
    print(f"{NODE_COUNT} sensors, {DAYS} days, {DRAIN_W * 1e6:.0f} uW "
          f"mean drain, trigger = 5 sensors below 0.5 J\n")
    header = (f"{'planner':9s} {'rounds':>7s} {'kJ/day':>8s} "
              f"{'availability':>13s} {'min battery':>12s}")
    print(header)
    print("-" * len(header))

    for name in PAPER_ALGORITHMS:
        network = uniform_deployment(count=NODE_COUNT, seed=SEED)
        simulator = LifetimeSimulator(
            network=network,
            planner=make_planner(name, RADIUS_M),
            cost=CostParameters.paper_defaults(),
            consumption=ConstantDrain(rate_w=DRAIN_W, spread=0.3,
                                      sensor_count=NODE_COUNT,
                                      seed=SEED),
            battery_capacity_j=2.0,
            trigger_threshold_j=0.5,
            trigger_count=5,
        )
        result = simulator.run(horizon_s=DAYS * 86_400.0)
        print(f"{name:9s} {result.round_count:7d} "
              f"{result.energy_per_day_j / 1000:8.2f} "
              f"{100 * result.availability:12.2f}% "
              f"{result.min_battery_j:11.3f} J")

    print("\nNote the tension the single-mission figures hide: "
          "energy-cheap planners (CSS, BC-OPT) charge from farther "
          "away, so their missions dwell much longer — and sensors "
          "waiting at the end of a multi-day round can hit empty "
          "before the charger arrives. Energy per day and availability "
          "trade off; pick the planner for the battery headroom you "
          "actually have.")


if __name__ == "__main__":
    main()
