"""Planner runtime scaling: how the stack behaves as n grows.

Measures full planner runs (bundle generation + TSP + refinement) at
increasing node counts, so performance regressions in any layer show up
as a scaling break.  One timed round per point (the runs are seconds).
"""

import pytest

from conftest import run_once

from repro.charging import CostParameters
from repro.network import uniform_deployment
from repro.planners import make_planner

SCALES = (50, 100, 200)


@pytest.mark.parametrize("node_count", SCALES)
def test_bench_scaling_bc(benchmark, node_count):
    network = uniform_deployment(count=node_count, seed=1)
    cost = CostParameters.paper_defaults()
    planner = make_planner("BC", 30.0)
    plan = run_once(benchmark, lambda: planner.plan(network, cost))
    assert len(plan) <= node_count


@pytest.mark.parametrize("node_count", SCALES)
def test_bench_scaling_bc_opt(benchmark, node_count):
    network = uniform_deployment(count=node_count, seed=1)
    cost = CostParameters.paper_defaults()
    planner = make_planner("BC-OPT", 30.0)
    plan = run_once(benchmark, lambda: planner.plan(network, cost))
    assert len(plan) <= node_count


@pytest.mark.parametrize("node_count", SCALES)
def test_bench_scaling_css(benchmark, node_count):
    network = uniform_deployment(count=node_count, seed=1)
    cost = CostParameters.paper_defaults()
    planner = make_planner("CSS", 30.0)
    plan = run_once(benchmark, lambda: planner.plan(network, cost))
    assert len(plan) <= node_count
