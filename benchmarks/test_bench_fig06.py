"""Bench: regenerate Fig. 6 (the bundle-radius trade-off)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig06_tradeoff(benchmark, bench_config, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("fig06", bench_config))
    save_tables("fig06", tables)

    table_a, table_b = tables
    tour = table_a.mean_of("tour_length_km")
    charge_time = table_a.mean_of("charging_time_ks")
    # Fig. 6(a): tour length falls, charging time rises with the radius.
    assert tour[0] > tour[-1]
    assert charge_time[-1] > charge_time[0]
    # Fig. 6(b): the ledger decomposes exactly.
    for row in table_b.rows:
        assert row["total_kj"].mean > 0.0
