"""Bench: regenerate Fig. 12 (SC/CSS/BC/BC-OPT across bundle radii)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig12_radius_sweep(benchmark, bench_config, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("fig12", bench_config))
    save_tables("fig12", tables)

    energy, tour, charge_time = tables
    sc = energy.mean_of("SC")
    opt = energy.mean_of("BC-OPT")
    bc = energy.mean_of("BC")
    # Fig. 12(a): BC-OPT dominates BC everywhere and beats SC at the
    # larger radii.
    for b, o in zip(bc, opt):
        assert o <= b + 1e-6
    assert opt[-1] < sc[-1]
    # Fig. 12(b): bundle algorithms shorten the SC tour at the top end.
    assert tour.mean_of("BC-OPT")[-1] < tour.mean_of("SC")[-1]
    # Fig. 12(c): SC's per-sensor charging time is radius-independent.
    sc_times = charge_time.mean_of("SC")
    assert max(sc_times) - min(sc_times) < 1e-6
