"""Component micro-benchmarks: the substrate's hot paths.

Unlike the figure benches (one shot, seconds), these are real
pytest-benchmark microbenchmarks with statistics — useful for catching
performance regressions in MinDisk, candidate enumeration, the greedy
cover, TSP local search and the Theorem 4/5 search.
"""

import random

from repro.bundling import candidate_member_sets, greedy_set_cover
from repro.geometry import Point, min_focal_sum_on_circle, \
    smallest_enclosing_disk
from repro.network import uniform_deployment
from repro.tsp import DistanceMatrix, nearest_neighbor_tour, two_opt


def _points(n, seed=0, side=1000.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side))
            for _ in range(n)]


def test_bench_minidisk_500_points(benchmark):
    pts = _points(500, seed=1)
    disk = benchmark(lambda: smallest_enclosing_disk(pts))
    assert disk.radius > 0.0


def test_bench_candidate_enumeration_n100(benchmark):
    network = uniform_deployment(count=100, seed=2)
    candidates = benchmark(
        lambda: candidate_member_sets(network.locations, 40.0))
    assert candidates


def test_bench_greedy_cover_n100(benchmark):
    network = uniform_deployment(count=100, seed=3)
    candidates = candidate_member_sets(network.locations, 40.0)
    chosen = benchmark(lambda: greedy_set_cover(candidates, 100))
    assert chosen


def test_bench_tsp_two_opt_n100(benchmark):
    pts = _points(100, seed=4)
    matrix = DistanceMatrix(pts)
    start = nearest_neighbor_tour(matrix)
    improved = benchmark(lambda: two_opt(start, matrix))
    assert improved.length(matrix) <= start.length(matrix) + 1e-9


def test_bench_theorem45_search(benchmark):
    center = Point(0.0, 80.0)
    f1, f2 = Point(-300.0, 0.0), Point(250.0, 40.0)
    point, value = benchmark(
        lambda: min_focal_sum_on_circle(center, 25.0, f1, f2))
    assert value > 0.0
