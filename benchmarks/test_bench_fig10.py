"""Bench: regenerate Fig. 10 (50-node running examples)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig10_examples(benchmark, bench_config, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("fig10", bench_config))
    save_tables("fig10", tables)

    table = tables[0]
    bundles = table.mean_of("bundles")
    # Bigger example radius -> fewer bundles (the figure's storyline).
    assert bundles == sorted(bundles, reverse=True)
    # BC-OPT's dotted tour is never longer in energy than BC's.
    for bc, opt in zip(table.mean_of("bc_total_kj"),
                       table.mean_of("bcopt_total_kj")):
        assert opt <= bc + 1e-6
