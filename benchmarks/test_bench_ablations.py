"""Ablation benches for the design choices DESIGN.md calls out.

Each bench runs the full planner at reduced scale under one design
variant and records the achieved energy, so variants can be compared
from the saved tables:

* TSP pipeline choice (bare NN vs NN+2-opt vs greedy-edge+2-opt).
* Algorithm 3 sweep budget (paper's single pass vs convergence).
* Definition 3 displacement cap vs unconstrained anchors.
* Dominated-candidate pruning on/off (result must be identical).
"""

from conftest import run_once

from repro.bundling import greedy_bundles
from repro.charging import CostParameters
from repro.experiments import ResultTable
from repro.network import uniform_deployment
from repro.planners import BundleChargingOptPlanner, \
    BundleChargingPlanner
from repro.tour import evaluate_plan, optimize_tour

NODE_COUNT = 80
RADIUS = 30.0
SEED = 20190710


def _network():
    return uniform_deployment(count=NODE_COUNT, seed=SEED)


def test_bench_ablation_tsp_strategy(benchmark, save_tables):
    network = _network()
    cost = CostParameters.paper_defaults()

    def run():
        table = ResultTable(
            "Ablation: TSP pipeline vs BC plan energy",
            ["strategy", "total_kj", "tour_km"])
        for strategy in ("nn", "nn+2opt", "greedy+2opt"):
            planner = BundleChargingPlanner(RADIUS,
                                            tsp_strategy=strategy)
            plan = planner.plan(network, cost)
            metrics = evaluate_plan(plan, network.locations, cost)
            table.add_row(strategy=strategy,
                          total_kj=metrics.total_j / 1000.0,
                          tour_km=metrics.energy.tour_length_m / 1000.0)
        return table

    table = run_once(benchmark, run)
    save_tables("ablation_tsp", [table])
    totals = dict(zip(table.column("strategy"),
                      table.mean_of("total_kj")))
    # Local search must not hurt.
    assert totals["nn+2opt"] <= totals["nn"] + 1e-6


def test_bench_ablation_sweep_budget(benchmark, save_tables):
    network = _network()
    cost = CostParameters.paper_defaults()

    def run():
        table = ResultTable(
            "Ablation: Algorithm 3 sweep budget vs BC-OPT energy",
            ["max_sweeps", "total_kj", "moves"])
        for sweeps in (1, 2, 8):
            planner = BundleChargingOptPlanner(RADIUS,
                                               max_sweeps=sweeps)
            plan = planner.plan(network, cost)
            metrics = evaluate_plan(plan, network.locations, cost)
            table.add_row(max_sweeps=sweeps,
                          total_kj=metrics.total_j / 1000.0,
                          moves=planner.last_report.moves)
        return table

    table = run_once(benchmark, run)
    save_tables("ablation_sweeps", [table])
    totals = table.mean_of("total_kj")
    # More sweeps never worsen the plan.
    assert totals[-1] <= totals[0] + 1e-6


def test_bench_ablation_definition3_cap(benchmark, save_tables):
    network = _network()
    cost = CostParameters.paper_defaults()
    base = BundleChargingPlanner(RADIUS).plan(network, cost)

    def run():
        table = ResultTable(
            "Ablation: Definition 3 displacement cap vs free anchors",
            ["variant", "total_kj"])
        capped, _ = optimize_tour(base, network.locations, cost,
                                  bundle_radius=RADIUS)
        free, _ = optimize_tour(base, network.locations, cost)
        for label, plan in (("capped(def3)", capped), ("free", free)):
            metrics = evaluate_plan(plan, network.locations, cost)
            table.add_row(variant=label,
                          total_kj=metrics.total_j / 1000.0)
        return table

    table = run_once(benchmark, run)
    save_tables("ablation_def3_cap", [table])
    totals = dict(zip(table.column("variant"),
                      table.mean_of("total_kj")))
    # The cap is a constraint: removing it can only help the objective.
    assert totals["free"] <= totals["capped(def3)"] + 1e-6


def test_bench_ablation_candidate_pruning(benchmark, save_tables):
    network = _network()

    def run():
        table = ResultTable(
            "Ablation: dominated-candidate pruning (must not change "
            "the cover)", ["variant", "bundles"])
        pruned = greedy_bundles(network, RADIUS, prune_dominated=True)
        full = greedy_bundles(network, RADIUS, prune_dominated=False)
        table.add_row(variant="pruned", bundles=len(pruned))
        table.add_row(variant="full", bundles=len(full))
        return table

    table = run_once(benchmark, run)
    save_tables("ablation_pruning", [table])
    counts = table.mean_of("bundles")
    assert counts[0] == counts[1]


def test_bench_ablation_dwell_policy(benchmark, save_tables):
    """The Eq. 3 accounting ablation behind EXPERIMENTS.md's Fig. 6(b)
    discussion: under the text's simultaneous (farthest-member) dwell
    the total energy is monotone decreasing over the paper's radius
    range, while the sequential (per-sensor-sum) reading produces the
    interior optimal radius the paper plots."""
    from repro.charging import FriisChargingModel
    network = _network()
    simultaneous = CostParameters.paper_defaults()
    sequential = CostParameters(model=FriisChargingModel(),
                                dwell_policy="sequential")

    def run():
        table = ResultTable(
            "Ablation: Eq. 3 dwell accounting vs BC total energy (kJ)",
            ["radius_m", "simultaneous", "sequential"])
        for radius in (5.0, 15.0, 30.0, 60.0, 120.0):
            planner = BundleChargingPlanner(radius)
            row = {}
            for label, cost in (("simultaneous", simultaneous),
                                ("sequential", sequential)):
                plan = planner.plan(network, cost)
                metrics = evaluate_plan(plan, network.locations, cost)
                row[label] = metrics.total_j / 1000.0
            table.add_row(radius_m=radius, **row)
        return table

    table = run_once(benchmark, run)
    save_tables("ablation_dwell_policy", [table])
    seq = table.mean_of("sequential")
    sim = table.mean_of("simultaneous")
    # Sequential accounting blows up at large radii (the right branch
    # of the paper's U-shape; the left branch is shallow and seed-
    # dependent at this single-seed scale)...
    assert seq[-1] > 1.5 * seq[0]
    assert min(seq) < seq[-1]
    # ...while simultaneous accounting keeps improving over this range.
    assert sim[-1] <= sim[0]


def test_bench_ablation_bundle_generators(benchmark, save_tables):
    """Bundle-count comparison across all four OBG algorithms (the
    Fig. 11 pair plus the fast k-center generator)."""
    from repro.bundling import grid_bundles, kcenter_bundles, \
        optimal_bundles
    network = _network()

    def run():
        table = ResultTable(
            "Ablation: bundle counts per generator",
            ["radius_m", "grid", "kcenter", "greedy", "optimal"])
        for radius in (20.0, 40.0, 60.0):
            row = {
                "grid": len(grid_bundles(network, radius)),
                "kcenter": len(kcenter_bundles(network, radius)),
                "greedy": len(greedy_bundles(network, radius)),
            }
            try:
                row["optimal"] = len(
                    optimal_bundles(network, radius,
                                    node_budget=200_000))
            except Exception:
                row["optimal"] = float("nan")
            table.add_row(radius_m=radius, **row)
        return table

    table = run_once(benchmark, run)
    save_tables("ablation_generators", [table])
    for grid_count, kc, greedy_count in zip(table.mean_of("grid"),
                                            table.mean_of("kcenter"),
                                            table.mean_of("greedy")):
        assert greedy_count <= grid_count + 1e-9
        assert greedy_count <= kc + 1e-9
