"""Bench: regenerate Fig. 11 (grid vs greedy vs optimal bundle counts)."""

import math

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig11_bundle_generation(benchmark, bench_config,
                                       save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("fig11", bench_config))
    save_tables("fig11", tables)

    for table in tables:
        grid = table.mean_of("grid")
        greedy = table.mean_of("greedy")
        optimal = table.mean_of("optimal")
        for g, gr, opt in zip(grid, greedy, optimal):
            # Fig. 11's ordering: optimal <= greedy <= grid.
            assert gr <= g + 1e-9
            if not math.isnan(opt):
                assert opt <= gr + 1e-9
