"""Bench: regenerate Fig. 16 (the simulated Powercast testbed)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig16_testbed(benchmark, bench_config, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("fig16", bench_config))
    save_tables("fig16", tables)

    energy, tour = tables
    radii = energy.mean_of("radius_m")
    bc_saving = energy.mean_of("bc_saving_pct")
    opt_saving = energy.mean_of("bcopt_saving_pct")
    at_12 = radii.index(1.2)
    # The paper reports BC ~8% / BC-OPT ~13% savings at r = 1.2 m and a
    # >20% shorter BC-OPT tour; require the same signs and ordering.
    assert bc_saving[at_12] > 0.0
    assert opt_saving[at_12] > bc_saving[at_12]
    assert tour.mean_of("BC-OPT")[at_12] < 0.8 * tour.mean_of("SC")[at_12]
