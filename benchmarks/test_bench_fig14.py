"""Bench: regenerate Fig. 14 (optimal bundle radius, dense network)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig14_optimal_radius(benchmark, bench_config,
                                    save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("fig14", bench_config))
    save_tables("fig14", tables)

    decomposition, totals = tables
    # Fig. 14(a): the trade-off components move in opposite directions.
    movement = decomposition.mean_of("movement_kj")
    charging = decomposition.mean_of("charging_kj")
    assert movement[0] > movement[-1]
    assert charging[-1] > charging[0]
    # Fig. 14(b): BC-OPT's gain over BC is non-negative at every radius
    # and the sweep reports a best radius.
    for gain in totals.mean_of("bcopt_gain_pct"):
        assert gain >= -1e-6
    assert "optimal radius" in totals.title
