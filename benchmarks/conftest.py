"""Shared benchmark infrastructure.

Every figure benchmark regenerates its paper artifact at reduced (but
shape-preserving) scale, saves the rendered tables under
``benchmarks/results/``, and reports wall-clock through pytest-benchmark.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.experiments import (ExperimentConfig, ResultTable,
                               render_tables)

#: Reduced scale used by all figure benchmarks.
BENCH_CONFIG = ExperimentConfig(
    runs=2,
    node_count=60,
    node_counts=(40, 80, 120),
    radii=(10.0, 20.0, 30.0, 40.0),
    default_radius=20.0,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def bench_config() -> ExperimentConfig:
    """The shared reduced-scale experiment configuration."""
    return BENCH_CONFIG


@pytest.fixture
def save_tables():
    """Persist rendered experiment tables next to the benchmarks."""

    def _save(experiment_id: str, tables: List[ResultTable]) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
        with open(path, "w") as handle:
            handle.write(render_tables(tables))
            handle.write("\n")

    return _save


def run_once(benchmark, func):
    """Run ``func`` exactly once under the benchmark timer.

    Figure regenerations are seconds-long; repeating them for statistics
    would make the suite unusable, so every figure bench uses one round.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)
