"""Bench: regenerate Fig. 13 (SC/CSS/BC/BC-OPT across densities)."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig13_node_sweep(benchmark, bench_config, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("fig13", bench_config))
    save_tables("fig13", tables)

    energy = tables[0]
    sc = energy.mean_of("SC")
    bc = energy.mean_of("BC")
    opt = energy.mean_of("BC-OPT")
    # Fig. 13(a): energy grows with density for everyone; BC-OPT stays
    # the cheapest; BC's advantage over SC does not shrink with density.
    assert sc[-1] > sc[0]
    for s, b, o in zip(sc, bc, opt):
        assert o <= b + 1e-6
        assert o <= s + 1e-6
    gain_sparse = 1.0 - bc[0] / sc[0]
    gain_dense = 1.0 - bc[-1] / sc[-1]
    assert gain_dense >= gain_sparse - 0.02
