"""Benches: regenerate the extension experiments (beyond the paper)."""

from conftest import run_once

from repro.experiments import ExperimentConfig, run_experiment

#: Extension benches run even leaner than the figure benches.
EXT_CONFIG = ExperimentConfig(runs=1, node_count=50, node_counts=(50,),
                              radii=(20.0,), default_radius=25.0)


def test_bench_ext_deploy(benchmark, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("extDeploy", EXT_CONFIG))
    save_tables("ext_deploy", tables)
    (table,) = tables
    savings = dict(zip(table.column("deployment"),
                       table.mean_of("saving_pct")))
    assert savings["clustered"] > savings["uniform"]


def test_bench_ext_fleet(benchmark, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("extFleet", EXT_CONFIG))
    save_tables("ext_fleet", tables)
    (table,) = tables
    makespans = table.mean_of("makespan_h")
    assert makespans[-1] <= makespans[0]


def test_bench_ext_latency(benchmark, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("extLatency", EXT_CONFIG))
    save_tables("ext_latency", tables)
    (table,) = tables
    for gain in table.mean_of("latency_gain_pct"):
        assert gain >= -1e-6


def test_bench_ext_lifetime(benchmark, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("extLifetime", EXT_CONFIG))
    save_tables("ext_lifetime", tables)
    (table,) = tables
    assert table.column("planner") == ["SC", "CSS", "BC", "BC-OPT"]


def test_bench_ext_dwell(benchmark, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("extDwell", EXT_CONFIG))
    save_tables("ext_dwell", tables)
    (table,) = tables
    seq = table.mean_of("sequential")
    # The sequential blow-up at huge radii is the table's signature.
    assert seq[-1] > seq[0]


def test_bench_ext_robust(benchmark, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("extRobust", EXT_CONFIG))
    save_tables("ext_robust", tables)
    (table,) = tables
    for margin in table.mean_of("break_even_scale"):
        assert 0.0 < margin <= 1.0


def test_bench_ext_concur(benchmark, save_tables):
    tables = run_once(benchmark,
                      lambda: run_experiment("extConcur", EXT_CONFIG))
    save_tables("ext_concur", tables)
    (table,) = tables
    speedups = table.mean_of("speedup")
    assert speedups == sorted(speedups, reverse=True)
