"""Tests for failure injection and the robustness margin."""

import pytest

from repro.errors import SimulationError
from repro.network import uniform_deployment
from repro.planners import BundleChargingPlanner, make_planner
from repro.sim import robustness_margin, run_mission


class TestHarvestScale:
    def test_scaled_harvest_proportional(self, paper_cost):
        network = uniform_deployment(count=10, seed=3,
                                     field_side_m=200.0)
        plan = BundleChargingPlanner(40.0).plan(network, paper_cost)
        run_mission(plan, network, paper_cost, harvest_scale=1.0)
        nominal = [sensor.harvested_j for sensor in network]
        run_mission(plan, network, paper_cost, harvest_scale=0.5)
        degraded = [sensor.harvested_j for sensor in network]
        for full, half in zip(nominal, degraded):
            assert half == pytest.approx(full * 0.5, rel=1e-9)

    def test_invalid_scale_rejected(self, paper_cost):
        network = uniform_deployment(count=5, seed=3,
                                     field_side_m=200.0)
        plan = BundleChargingPlanner(40.0).plan(network, paper_cost)
        with pytest.raises(SimulationError):
            run_mission(plan, network, paper_cost, harvest_scale=0.0)

    def test_small_degradation_often_survivable(self, paper_cost):
        # Incidental cross-stop harvesting provides headroom: a dense
        # plan survives a mild degradation.
        network = uniform_deployment(count=30, seed=4,
                                     field_side_m=300.0)
        plan = BundleChargingPlanner(30.0).plan(network, paper_cost)
        run_mission(plan, network, paper_cost, harvest_scale=0.95)
        assert network.all_satisfied()

    def test_severe_degradation_fails(self, paper_cost):
        network = uniform_deployment(count=10, seed=5)
        plan = BundleChargingPlanner(30.0).plan(network, paper_cost)
        run_mission(plan, network, paper_cost, harvest_scale=0.1)
        assert not network.all_satisfied()


class TestRobustnessMargin:
    def test_margin_in_unit_interval(self, paper_cost):
        network = uniform_deployment(count=20, seed=6,
                                     field_side_m=300.0)
        plan = BundleChargingPlanner(30.0).plan(network, paper_cost)
        margin = robustness_margin(plan, network, paper_cost)
        assert 0.0 < margin <= 1.0

    def test_margin_is_break_even(self, paper_cost):
        network = uniform_deployment(count=15, seed=7,
                                     field_side_m=300.0)
        plan = BundleChargingPlanner(30.0).plan(network, paper_cost)
        margin = robustness_margin(plan, network, paper_cost,
                                   tolerance=1e-3)
        # Feasible at the margin, infeasible clearly below it.
        run_mission(plan, network, paper_cost, harvest_scale=margin)
        assert network.all_satisfied()
        run_mission(plan, network, paper_cost,
                    harvest_scale=margin * 0.95)
        assert not network.all_satisfied()

    def test_denser_field_has_more_headroom(self, paper_cost):
        # More sensors per area -> more incidental harvest -> smaller
        # break-even scale.
        sparse = uniform_deployment(count=10, seed=8,
                                    field_side_m=800.0)
        dense = uniform_deployment(count=60, seed=8,
                                   field_side_m=200.0)
        sparse_plan = BundleChargingPlanner(30.0).plan(sparse,
                                                       paper_cost)
        dense_plan = BundleChargingPlanner(30.0).plan(dense, paper_cost)
        sparse_margin = robustness_margin(sparse_plan, sparse,
                                          paper_cost)
        dense_margin = robustness_margin(dense_plan, dense, paper_cost)
        assert dense_margin < sparse_margin

    def test_all_planners_have_margin(self, paper_cost):
        network = uniform_deployment(count=25, seed=9,
                                     field_side_m=300.0)
        for name in ("SC", "BC", "BC-OPT"):
            plan = make_planner(name, 30.0).plan(network, paper_cost)
            margin = robustness_margin(plan, network, paper_cost,
                                       tolerance=5e-3)
            assert margin < 1.0  # some headroom always exists here
