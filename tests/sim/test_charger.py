"""Tests for the mobile-charger mission simulator."""

import pytest

from repro.errors import SimulationError
from repro.geometry import Point
from repro.network import Sensor, SensorNetwork
from repro.sim import MobileCharger, SimulationEngine, run_mission
from repro.tour import ChargingPlan, stop_for_sensors


def _line_network(paper_cost):
    pts = [Point(100, 0), Point(200, 0)]
    network = SensorNetwork(
        [Sensor(index=i, location=p) for i, p in enumerate(pts)],
        1000.0)
    stops = tuple(
        stop_for_sensors(p, [i], pts, paper_cost)
        for i, p in enumerate(pts))
    plan = ChargingPlan(stops=stops, depot=Point(0, 0))
    return network, plan


class TestMission:
    def test_trace_tour_length_matches_plan(self, paper_cost):
        network, plan = _line_network(paper_cost)
        trace = run_mission(plan, network, paper_cost)
        assert trace.tour_length_m == pytest.approx(plan.tour_length())

    def test_movement_energy_matches_evaluator(self, paper_cost):
        from repro.tour import evaluate_plan
        network, plan = _line_network(paper_cost)
        trace = run_mission(plan, network, paper_cost)
        metrics = evaluate_plan(plan, network.locations, paper_cost)
        assert trace.movement_energy_j == pytest.approx(
            metrics.energy.movement_j)
        assert trace.charging_energy_j == pytest.approx(
            metrics.energy.charging_j)

    def test_all_sensors_satisfied(self, paper_cost):
        network, plan = _line_network(paper_cost)
        run_mission(plan, network, paper_cost)
        assert network.all_satisfied()

    def test_mission_time_accounts_speed(self, paper_cost):
        network, plan = _line_network(paper_cost)
        slow = run_mission(plan, network, paper_cost,
                           speed_m_per_s=0.5)
        fast = run_mission(plan, network, paper_cost,
                           speed_m_per_s=2.0)
        dwell = plan.total_dwell_s()
        assert slow.mission_time_s == pytest.approx(
            plan.tour_length() / 0.5 + dwell)
        assert fast.mission_time_s == pytest.approx(
            plan.tour_length() / 2.0 + dwell)

    def test_incidental_harvest_recorded(self, paper_cost):
        network, plan = _line_network(paper_cost)
        trace = run_mission(plan, network, paper_cost)
        incidental = [h for h in trace.harvests if not h.assigned]
        # Sensor 0 harvests while the charger dwells at sensor 1's stop
        # (Friis has no cutoff), so incidental records must exist.
        assert incidental
        assert trace.incidental_energy_j() > 0.0

    def test_harvest_energy_follows_model(self, paper_cost):
        network, plan = _line_network(paper_cost)
        trace = run_mission(plan, network, paper_cost)
        for record in trace.harvests:
            stop = plan.stops[record.stop_index]
            power = paper_cost.model.received_power(record.distance_m)
            assert record.energy_j == pytest.approx(
                power * stop.dwell_s)

    def test_invalid_speed_rejected(self, paper_cost):
        network, plan = _line_network(paper_cost)
        with pytest.raises(SimulationError):
            run_mission(plan, network, paper_cost, speed_m_per_s=0.0)

    def test_reset_between_runs(self, paper_cost):
        network, plan = _line_network(paper_cost)
        run_mission(plan, network, paper_cost)
        first = network[0].harvested_j
        run_mission(plan, network, paper_cost, reset_energy=True)
        assert network[0].harvested_j == pytest.approx(first)

    def test_no_reset_accumulates(self, paper_cost):
        network, plan = _line_network(paper_cost)
        run_mission(plan, network, paper_cost)
        first = network[0].harvested_j
        run_mission(plan, network, paper_cost, reset_energy=False)
        assert network[0].harvested_j == pytest.approx(2.0 * first)

    def test_empty_plan_returns_home(self, paper_cost):
        network = SensorNetwork([], 100.0)
        plan = ChargingPlan(stops=(), depot=Point(0, 0))
        trace = run_mission(plan, network, paper_cost)
        assert trace.tour_length_m == 0.0

    def test_charger_object_directly(self, paper_cost):
        network, plan = _line_network(paper_cost)
        engine = SimulationEngine()
        charger = MobileCharger(engine, plan, network, paper_cost)
        assert not charger.finished
        charger.start()
        engine.run()
        assert charger.finished
        assert charger.position == plan.depot
