"""Tests for end-to-end plan validation."""

import pytest

from repro.errors import ValidationError
from repro.geometry import Point
from repro.network import Sensor, SensorNetwork, uniform_deployment
from repro.sim import validate_plan
from repro.tour import ChargingPlan, Stop, stop_for_sensors


class TestValidatePlan:
    def test_valid_plan_satisfies(self, paper_cost):
        network = uniform_deployment(count=10, seed=2,
                                     field_side_m=200.0)
        stops = tuple(
            stop_for_sensors(s.location, [s.index], network.locations,
                             paper_cost)
            for s in network)
        plan = ChargingPlan(stops=stops, depot=network.base_station)
        result = validate_plan(plan, network, paper_cost)
        assert result.satisfied
        assert result.shortfalls == ()

    def test_underdwell_detected(self, paper_cost):
        pts = [Point(100, 100)]
        network = SensorNetwork(
            [Sensor(index=0, location=pts[0])], 1000.0)
        bad = Stop(pts[0], frozenset({0}), 1.0)  # far too short
        plan = ChargingPlan(stops=(bad,), depot=Point(0, 0))
        result = validate_plan(plan, network, paper_cost)
        assert not result.satisfied
        assert result.shortfalls[0][0] == 0
        assert result.shortfalls[0][1] > 0.0

    def test_strict_mode_raises(self, paper_cost):
        pts = [Point(100, 100)]
        network = SensorNetwork(
            [Sensor(index=0, location=pts[0])], 1000.0)
        bad = Stop(pts[0], frozenset({0}), 1.0)
        plan = ChargingPlan(stops=(bad,), depot=Point(0, 0))
        with pytest.raises(ValidationError):
            validate_plan(plan, network, paper_cost, strict=True)

    def test_incidental_fraction_in_unit_interval(self, paper_cost):
        network = uniform_deployment(count=15, seed=3,
                                     field_side_m=300.0)
        stops = tuple(
            stop_for_sensors(s.location, [s.index], network.locations,
                             paper_cost)
            for s in network)
        plan = ChargingPlan(stops=stops, depot=network.base_station)
        result = validate_plan(plan, network, paper_cost)
        assert 0.0 <= result.incidental_fraction < 1.0
        assert result.incidental_fraction > 0.0  # Friis has no cutoff

    def test_incidental_charging_can_rescue_underdwell(self, paper_cost):
        # Two co-located sensors assigned to two separate stops at the
        # same point: each stop's dwell covers its own sensor, and the
        # other sensor harvests incidentally — double coverage.
        pts = [Point(50, 50), Point(50, 50)]
        network = SensorNetwork(
            [Sensor(index=i, location=p) for i, p in enumerate(pts)],
            100.0)
        stops = tuple(
            stop_for_sensors(pts[i], [i], pts, paper_cost)
            for i in range(2))
        plan = ChargingPlan(stops=stops, depot=Point(0, 0))
        result = validate_plan(plan, network, paper_cost)
        assert result.satisfied
        # Each sensor got ~2x its requirement (own stop + twin's stop).
        assert network[0].harvested_j >= 2.0 * network[0].required_j \
            * 0.99
