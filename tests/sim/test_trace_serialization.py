"""Round-trip tests for mission-trace record serialization."""

import json

import pytest

from repro.errors import SimulationError
from repro.geometry import Point
from repro.network import Sensor, SensorNetwork
from repro.sim import (ChargeRecord, HarvestRecord, MissionTrace,
                       MoveRecord, RECORD_TYPES, TRACE_RECORD_SCHEMA,
                       record_from_dict, run_mission)
from repro.tour import ChargingPlan, stop_for_sensors

MOVE = MoveRecord(start_s=0.0, end_s=10.0, origin=Point(0.0, 0.0),
                  destination=Point(10.0, 0.0), length_m=10.0,
                  energy_j=500.0)
CHARGE = ChargeRecord(start_s=10.0, end_s=25.0,
                      position=Point(10.0, 0.0), stop_index=0,
                      energy_j=150.0)
HARVEST = HarvestRecord(sensor_index=3, stop_index=0, distance_m=2.5,
                        energy_j=0.04, assigned=True)


class TestRecordRoundTrip:
    @pytest.mark.parametrize("record", [MOVE, CHARGE, HARVEST])
    def test_to_dict_from_dict_round_trip(self, record):
        raw = record.to_dict()
        assert record_from_dict(raw) == record
        assert type(record).from_dict(raw) == record

    @pytest.mark.parametrize("record", [MOVE, CHARGE, HARVEST])
    def test_dict_is_json_serializable(self, record):
        raw = record.to_dict()
        assert record_from_dict(json.loads(json.dumps(raw))) == record

    def test_type_discriminators(self):
        assert MOVE.to_dict()["type"] == "move"
        assert CHARGE.to_dict()["type"] == "charge"
        assert HARVEST.to_dict()["type"] == "harvest"
        assert set(RECORD_TYPES) == {"move", "charge", "harvest"}
        assert TRACE_RECORD_SCHEMA == "bundle-charging/mission-trace/v1"

    def test_records_carry_version_tag(self):
        for record in (MOVE, CHARGE, HARVEST):
            assert record.to_dict()["v"] == 1

    def test_unknown_type_raises(self):
        with pytest.raises(SimulationError, match="unknown trace record"):
            record_from_dict({"type": "teleport"})
        with pytest.raises(SimulationError, match="unknown trace record"):
            record_from_dict({})

    def test_malformed_record_raises(self):
        with pytest.raises(SimulationError, match="malformed"):
            record_from_dict({"type": "move", "start_s": 0.0})


class TestMissionTraceRoundTrip:
    def _mission_trace(self, paper_cost):
        pts = [Point(100, 0), Point(200, 0)]
        network = SensorNetwork(
            [Sensor(index=i, location=p) for i, p in enumerate(pts)],
            1000.0)
        stops = tuple(
            stop_for_sensors(p, [i], pts, paper_cost)
            for i, p in enumerate(pts))
        plan = ChargingPlan(stops=stops, depot=Point(0, 0))
        return run_mission(plan, network, paper_cost)

    def test_simulated_mission_round_trips(self, paper_cost):
        trace = self._mission_trace(paper_cost)
        rebuilt = MissionTrace.from_events(trace.to_events())
        assert rebuilt.moves == trace.moves
        assert rebuilt.charges == trace.charges
        assert rebuilt.harvests == trace.harvests
        assert rebuilt.total_energy_j == trace.total_energy_j
        assert rebuilt.mission_time_s == trace.mission_time_s

    def test_to_events_is_time_ordered(self, paper_cost):
        events = self._mission_trace(paper_cost).to_events()
        timeline = [event for event in events
                    if event["type"] in ("move", "charge")]
        starts = [event["start_s"] for event in timeline]
        assert starts == sorted(starts)

    def test_from_events_skips_foreign_event_types(self, paper_cost):
        trace = self._mission_trace(paper_cost)
        stream = ([{"type": "header", "schema": "x"},
                   {"type": "manifest"},
                   {"type": "span", "name": "sim.mission"}]
                  + trace.to_events())
        rebuilt = MissionTrace.from_events(stream)
        assert rebuilt.moves == trace.moves
        assert rebuilt.charges == trace.charges
        assert rebuilt.harvests == trace.harvests

    def test_round_trip_through_obs_jsonl(self, paper_cost, tmp_path):
        """A mission trace survives the obs JSONL stream verbatim."""
        from repro.obs.jsonl import read_jsonl, write_jsonl
        trace = self._mission_trace(paper_cost)
        path = str(tmp_path / "mission.jsonl")
        write_jsonl(path, trace.to_events())
        rebuilt = MissionTrace.from_events(read_jsonl(path))
        assert rebuilt.moves == trace.moves
        assert rebuilt.charges == trace.charges
        assert rebuilt.harvests == trace.harvests
