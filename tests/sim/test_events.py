"""Tests for the DES kernel (events + queue + engine)."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue, SimulationEngine


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.schedule(3.0, "c")
        queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_fifo_among_ties(self):
        queue = EventQueue()
        queue.schedule(1.0, "first")
        queue.schedule(1.0, "second")
        assert queue.pop().kind == "first"
        assert queue.pop().kind == "second"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_invalid_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(-1.0, "bad")
        with pytest.raises(SimulationError):
            queue.schedule(math.nan, "bad")

    def test_peek(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(5.0, "x")
        assert queue.peek_time() == 5.0
        assert len(queue) == 1


class TestEngine:
    def test_handlers_fire_in_order(self):
        engine = SimulationEngine()
        log = []
        engine.schedule_at(2.0, "b", lambda e: log.append("b"))
        engine.schedule_at(1.0, "a", lambda e: log.append("a"))
        engine.run()
        assert log == ["a", "b"]
        assert engine.now_s == 2.0

    def test_handlers_can_schedule_more(self):
        engine = SimulationEngine()
        log = []

        def first(event):
            log.append(("first", engine.now_s))
            engine.schedule_after(5.0, "second",
                                  lambda e: log.append(
                                      ("second", engine.now_s)))

        engine.schedule_at(1.0, "first", first)
        engine.run()
        assert log == [("first", 1.0), ("second", 6.0)]

    def test_run_until(self):
        engine = SimulationEngine()
        log = []
        engine.schedule_at(1.0, "a", lambda e: log.append("a"))
        engine.schedule_at(10.0, "b", lambda e: log.append("b"))
        engine.run(until_s=5.0)
        assert log == ["a"]
        engine.run()
        assert log == ["a", "b"]

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, "x", lambda e: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, "late")

    def test_step_cap(self):
        engine = SimulationEngine(max_steps=10)

        def forever(event):
            engine.schedule_after(1.0, "again", forever)

        engine.schedule_at(0.0, "start", forever)
        with pytest.raises(SimulationError):
            engine.run()

    def test_invalid_delay(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, "bad")
