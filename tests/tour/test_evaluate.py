"""Tests for the Eq. 3 plan evaluator."""

import pytest

from repro.errors import PlanError
from repro.geometry import Point
from repro.tour import (ChargingPlan, Stop, evaluate_plan,
                        plan_total_energy, stop_for_sensors)


def _simple_plan(paper_cost, locations, depot=None):
    stops = tuple(
        stop_for_sensors(loc, [i], locations, paper_cost)
        for i, loc in enumerate(locations))
    return ChargingPlan(stops=stops, depot=depot)


class TestEvaluate:
    def test_movement_term(self, paper_cost):
        locations = [Point(0, 0), Point(100, 0)]
        plan = _simple_plan(paper_cost, locations)
        metrics = evaluate_plan(plan, locations, paper_cost)
        assert metrics.energy.tour_length_m == pytest.approx(200.0)
        assert metrics.energy.movement_j == pytest.approx(200.0 * 5.59)

    def test_charging_term_at_zero_distance(self, paper_cost):
        locations = [Point(0, 0)]
        plan = _simple_plan(paper_cost, locations)
        metrics = evaluate_plan(plan, locations, paper_cost)
        # Eq. 1 closed form: 2 J * 30^2 / 36 = 50 J per sensor at d=0.
        assert metrics.energy.charging_j == pytest.approx(50.0)

    def test_total_is_sum(self, paper_cost):
        locations = [Point(0, 0), Point(50, 50)]
        plan = _simple_plan(paper_cost, locations, depot=Point(0, 0))
        metrics = evaluate_plan(plan, locations, paper_cost)
        assert metrics.total_j == pytest.approx(
            metrics.energy.movement_j + metrics.energy.charging_j)

    def test_average_charging_time(self, paper_cost):
        locations = [Point(0, 0), Point(0, 1)]
        stop = stop_for_sensors(Point(0, 0), [0, 1], locations,
                                paper_cost)
        plan = ChargingPlan(stops=(stop,))
        metrics = evaluate_plan(plan, locations, paper_cost)
        assert metrics.average_charging_time_s == pytest.approx(
            stop.dwell_s / 2.0)

    def test_underdwell_detected(self, paper_cost):
        locations = [Point(0, 0)]
        bad_stop = Stop(Point(0, 0), frozenset({0}), 1.0)  # way short
        plan = ChargingPlan(stops=(bad_stop,))
        with pytest.raises(PlanError):
            evaluate_plan(plan, locations, paper_cost)

    def test_underdwell_check_can_be_disabled(self, paper_cost):
        locations = [Point(0, 0)]
        bad_stop = Stop(Point(0, 0), frozenset({0}), 1.0)
        plan = ChargingPlan(stops=(bad_stop,))
        metrics = evaluate_plan(plan, locations, paper_cost,
                                require_consistent_dwell=False)
        assert metrics.stop_count == 1

    def test_max_stop_distance(self, paper_cost):
        locations = [Point(0, 0), Point(0, 8)]
        stop = stop_for_sensors(Point(0, 0), [0, 1], locations,
                                paper_cost)
        plan = ChargingPlan(stops=(stop,))
        metrics = evaluate_plan(plan, locations, paper_cost)
        assert metrics.max_stop_distance_m == pytest.approx(8.0)

    def test_empty_plan(self, paper_cost):
        plan = ChargingPlan(stops=())
        metrics = evaluate_plan(plan, [], paper_cost)
        assert metrics.total_j == 0.0
        assert metrics.average_charging_time_s == 0.0

    def test_shorthand(self, paper_cost):
        locations = [Point(0, 0)]
        plan = _simple_plan(paper_cost, locations)
        assert plan_total_energy(plan, locations, paper_cost) == \
            pytest.approx(
                evaluate_plan(plan, locations, paper_cost).total_j)

    def test_as_row_keys(self, paper_cost):
        locations = [Point(0, 0)]
        plan = _simple_plan(paper_cost, locations)
        row = evaluate_plan(plan, locations, paper_cost).as_row()
        assert "total_j" in row
        assert "avg_charging_time_s" in row
        assert "max_stop_distance_m" in row
