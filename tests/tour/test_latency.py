"""Tests for charging-latency analysis."""

import pytest

from repro.errors import PlanError
from repro.geometry import Point
from repro.tour import (ChargingPlan, Stop, completion_times,
                        latency_metrics, reorder_for_latency)


def _plan(depot=Point(0, 0)):
    stops = (
        Stop(Point(100, 0), frozenset({0}), 50.0),
        Stop(Point(200, 0), frozenset({1, 2}), 100.0),
        Stop(Point(300, 0), frozenset({3}), 25.0),
    )
    return ChargingPlan(stops=stops, depot=depot, label="T")


class TestCompletionTimes:
    def test_accumulates_travel_and_dwell(self):
        times = completion_times(_plan(), speed_m_per_s=10.0)
        # Stop 1: 10 s travel + 50 s dwell = 60.
        assert times[0] == pytest.approx(60.0)
        # Stop 2: +10 s travel + 100 s dwell = 170.
        assert times[1] == pytest.approx(170.0)
        assert times[2] == pytest.approx(170.0)
        # Stop 3: +10 + 25 = 205.
        assert times[3] == pytest.approx(205.0)

    def test_speed_scales_travel_only(self):
        slow = completion_times(_plan(), speed_m_per_s=5.0)
        fast = completion_times(_plan(), speed_m_per_s=50.0)
        assert slow[3] > fast[3]
        # Dwell component (175 s) identical in both.
        assert slow[3] - fast[3] == pytest.approx(
            300.0 / 5.0 - 300.0 / 50.0)

    def test_invalid_speed(self):
        with pytest.raises(PlanError):
            completion_times(_plan(), speed_m_per_s=0.0)

    def test_empty_plan(self):
        plan = ChargingPlan(stops=(), depot=Point(0, 0))
        assert completion_times(plan, 1.0) == {}


class TestLatencyMetrics:
    def test_summary_values(self):
        metrics = latency_metrics(_plan(), speed_m_per_s=10.0)
        assert metrics.max_s == pytest.approx(205.0)
        assert metrics.mean_s == pytest.approx(
            (60.0 + 170.0 + 170.0 + 205.0) / 4.0)
        # Mission adds the return leg (300 m).
        assert metrics.mission_s == pytest.approx(205.0 + 30.0)

    def test_empty_plan(self):
        plan = ChargingPlan(stops=(), depot=Point(0, 0))
        metrics = latency_metrics(plan, 1.0)
        assert metrics.max_s == 0.0
        assert metrics.mean_s == 0.0


class TestReorder:
    def test_never_worse_mean_latency(self, paper_cost):
        from repro.network import uniform_deployment
        from repro.planners import BundleChargingPlanner
        network = uniform_deployment(count=40, seed=2)
        plan = BundleChargingPlanner(30.0).plan(network, paper_cost)
        before = latency_metrics(plan, 1.0).mean_s
        after_plan = reorder_for_latency(plan, 1.0)
        after = latency_metrics(after_plan, 1.0).mean_s
        assert after <= before + 1e-6

    def test_prefers_quick_populous_stops_first(self):
        # Big slow stop far away vs quick close stop: latency ordering
        # must serve the quick one first.
        stops = (
            Stop(Point(500, 0), frozenset({0}), 1000.0),
            Stop(Point(10, 0), frozenset({1, 2, 3}), 5.0),
        )
        plan = ChargingPlan(stops=stops, depot=Point(0, 0))
        reordered = reorder_for_latency(plan, 1.0)
        assert reordered.stops[0].position == Point(10, 0)

    def test_same_stop_multiset(self, paper_cost):
        from repro.network import uniform_deployment
        from repro.planners import BundleChargingPlanner
        network = uniform_deployment(count=25, seed=3)
        plan = BundleChargingPlanner(40.0).plan(network, paper_cost)
        reordered = reorder_for_latency(plan, 1.0)
        assert sorted(s.position.as_tuple() for s in plan.stops) == \
            sorted(s.position.as_tuple() for s in reordered.stops)

    def test_small_plans_untouched(self):
        plan = ChargingPlan(
            stops=(Stop(Point(1, 1), frozenset({0}), 1.0),),
            depot=Point(0, 0))
        assert reorder_for_latency(plan, 1.0) is plan

    def test_invalid_speed(self):
        with pytest.raises(PlanError):
            reorder_for_latency(_plan(), 0.0)

    def test_label_suffix(self):
        reordered = reorder_for_latency(_plan(), 1.0)
        assert reordered.label.endswith("+latency")
