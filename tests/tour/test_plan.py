"""Tests for Stop and ChargingPlan."""

import pytest

from repro.errors import PlanError
from repro.geometry import Point
from repro.tour import ChargingPlan, Stop, stop_for_sensors


class TestStop:
    def test_negative_dwell_rejected(self):
        with pytest.raises(PlanError):
            Stop(Point(0, 0), frozenset({0}), -1.0)

    def test_nan_dwell_rejected(self):
        with pytest.raises(PlanError):
            Stop(Point(0, 0), frozenset({0}), float("nan"))

    def test_worst_distance(self):
        stop = Stop(Point(0, 0), frozenset({0, 1}), 1.0)
        locations = [Point(3, 4), Point(1, 0)]
        assert stop.worst_distance(locations) == 5.0

    def test_worst_distance_empty(self):
        stop = Stop(Point(0, 0), frozenset(), 0.0)
        assert stop.worst_distance([]) == 0.0


class TestStopForSensors:
    def test_dwell_covers_farthest(self, paper_cost):
        locations = [Point(0, 0), Point(10, 0)]
        stop = stop_for_sensors(Point(0, 0), [0, 1], locations,
                                paper_cost)
        needed = paper_cost.dwell_time_for_distance(10.0)
        assert stop.dwell_s == pytest.approx(needed)

    def test_empty_stop_zero_dwell(self, paper_cost):
        stop = stop_for_sensors(Point(0, 0), [], [], paper_cost)
        assert stop.dwell_s == 0.0

    def test_infinite_dwell_rejected(self):
        from repro.charging import CostParameters, LinearChargingModel
        cost = CostParameters(
            model=LinearChargingModel(0.5, 5.0, 1.0), delta_j=1.0)
        locations = [Point(100, 0)]
        with pytest.raises(PlanError):
            stop_for_sensors(Point(0, 0), [0], locations, cost)


class TestChargingPlan:
    def _plan(self, depot=None):
        stops = (
            Stop(Point(0, 0), frozenset({0}), 10.0),
            Stop(Point(10, 0), frozenset({1, 2}), 20.0),
        )
        return ChargingPlan(stops=stops, depot=depot, label="test")

    def test_double_assignment_rejected(self):
        stops = (Stop(Point(0, 0), frozenset({0}), 1.0),
                 Stop(Point(1, 0), frozenset({0}), 1.0))
        with pytest.raises(PlanError):
            ChargingPlan(stops=stops)

    def test_assigned_sensors(self):
        assert self._plan().assigned_sensors == frozenset({0, 1, 2})

    def test_tour_length_no_depot(self):
        plan = self._plan()
        # Two stops: out and back.
        assert plan.tour_length() == pytest.approx(20.0)

    def test_tour_length_with_depot(self):
        plan = self._plan(depot=Point(0, 10))
        # depot -> (0,0) -> (10,0) -> depot
        expected = 10.0 + 10.0 + (10.0 ** 2 + 10.0 ** 2) ** 0.5
        assert plan.tour_length() == pytest.approx(expected)

    def test_total_dwell(self):
        assert self._plan().total_dwell_s() == 30.0

    def test_validate_complete_passes(self):
        self._plan().validate_complete(3)

    def test_validate_complete_fails(self):
        with pytest.raises(PlanError):
            self._plan().validate_complete(4)

    def test_with_stop_replacement(self):
        plan = self._plan()
        new_stop = Stop(Point(5, 5), frozenset({0}), 7.0)
        updated = plan.with_stop(0, new_stop)
        assert updated.stops[0].position == Point(5, 5)
        assert plan.stops[0].position == Point(0, 0)  # original intact

    def test_with_stop_bad_index(self):
        with pytest.raises(PlanError):
            self._plan().with_stop(9, Stop(Point(0, 0), frozenset(),
                                           0.0))

    def test_with_label(self):
        assert self._plan().with_label("BC").label == "BC"

    def test_waypoints_include_depot_first(self):
        plan = self._plan(depot=Point(-1, -1))
        assert plan.waypoints()[0] == Point(-1, -1)
