"""Tests for the Theorem 4/5 anchor optimizer."""

import math

import pytest

from repro.charging import CostParameters, FriisChargingModel
from repro.errors import PlanError
from repro.geometry import Point
from repro.tour import anchor_energy, optimize_anchor, two_bundle_shift


class TestAnchorEnergy:
    def test_movement_only_when_no_members(self, paper_cost):
        energy = anchor_energy(Point(0, 0), Point(-10, 0), Point(10, 0),
                               [], paper_cost)
        assert energy == pytest.approx(20.0 * 5.59)

    def test_includes_charging_cost(self, paper_cost):
        members = [Point(0, 0)]
        energy = anchor_energy(Point(0, 0), Point(-10, 0), Point(10, 0),
                               members, paper_cost)
        assert energy == pytest.approx(20.0 * 5.59 + 50.0)

    def test_charging_cost_grows_with_displacement(self, paper_cost):
        members = [Point(0, 0)]
        near = anchor_energy(Point(0, 0), Point(-1, 0), Point(1, 0),
                             members, paper_cost)
        far = anchor_energy(Point(0, 5), Point(-1, 0), Point(1, 0),
                            members, paper_cost)
        assert far > near


class TestOptimizeAnchor:
    def test_never_worse_than_incumbent(self, paper_cost):
        center = Point(0, 40)
        members = [Point(-5, 40), Point(5, 40)]
        result = optimize_anchor(center, Point(-100, 0), Point(100, 0),
                                 members, paper_cost)
        incumbent = anchor_energy(center, Point(-100, 0), Point(100, 0),
                                  members, paper_cost)
        assert result.energy_j <= incumbent + 1e-9

    def test_moves_toward_path_when_movement_dominates(self):
        # With an expensive-movement configuration the anchor should pull
        # toward the straight line between the neighbours.
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=100.0)
        center = Point(0, 50)
        members = [center]
        result = optimize_anchor(center, Point(-200, 0), Point(200, 0),
                                 members, cost)
        assert result.moved
        assert result.position.y < center.y

    def test_stays_when_charging_dominates(self, cheap_move_cost):
        # Movement is nearly free: displacing the anchor only hurts.
        center = Point(0, 50)
        members = [center]
        result = optimize_anchor(center, Point(-200, 0), Point(200, 0),
                                 members, cheap_move_cost)
        assert result.position.is_close(center, tol=1e-6)

    def test_respects_max_displacement(self, paper_cost):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=100.0)
        center = Point(0, 50)
        members = [center]
        result = optimize_anchor(center, Point(-200, 0), Point(200, 0),
                                 members, cost, max_displacement=5.0)
        assert center.distance_to(result.position) <= 5.0 + 1e-6

    def test_zero_displacement_cap_returns_center(self, paper_cost):
        center = Point(0, 50)
        result = optimize_anchor(center, Point(-200, 0), Point(200, 0),
                                 [center], paper_cost,
                                 max_displacement=0.0)
        assert result.position == center

    def test_invalid_steps_rejected(self, paper_cost):
        with pytest.raises(PlanError):
            optimize_anchor(Point(0, 0), Point(1, 0), Point(2, 0), [],
                            paper_cost, radius_steps=0)

    def test_incumbent_better_than_center_is_kept(self, paper_cost):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=100.0)
        center = Point(0, 50)
        members = [center]
        first = optimize_anchor(center, Point(-200, 0), Point(200, 0),
                                members, cost)
        again = optimize_anchor(center, Point(-200, 0), Point(200, 0),
                                members, cost, current=first.position)
        assert again.energy_j <= first.energy_j + 1e-9


class TestTwoBundleShift:
    def test_no_shift_when_movement_cheap(self):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=1e-9)
        assert two_bundle_shift(100.0, 10.0, cost) == 0.0

    def test_positive_shift_when_movement_expensive(self):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=1000.0)
        shift = two_bundle_shift(100.0, 10.0, cost)
        assert shift > 0.0
        assert shift <= 50.0

    def test_shift_bounded_by_half_separation(self, paper_cost):
        shift = two_bundle_shift(10.0, 5.0, paper_cost)
        assert 0.0 <= shift <= 5.0

    def test_negative_inputs_rejected(self, paper_cost):
        with pytest.raises(PlanError):
            two_bundle_shift(-1.0, 5.0, paper_cost)

    def test_matches_eq8_marginal_analysis(self, paper_cost):
        # Round trip: pulling both stops in by x saves 4x of movement
        # (the inter-bundle leg shortens by 2x, traversed twice), while
        # the two stops' charging cost derivative is
        # 2 * 2 delta (r + x + beta) / alpha.  Stationary point:
        # x* = E_m alpha / delta - beta - r.
        separation = 400.0
        radius = 10.0
        model = paper_cost.model
        x_star = (paper_cost.move_cost_j_per_m * model.alpha
                  / paper_cost.delta_j - model.beta - radius)
        x_star = min(max(x_star, 0.0), separation / 2.0)
        found = two_bundle_shift(separation, radius, paper_cost,
                                 steps=4000)
        assert found == pytest.approx(x_star, abs=1.0)
