"""Tests for Algorithm 3 (charging-tour optimization)."""

import pytest

from repro.charging import CostParameters, FriisChargingModel
from repro.errors import PlanError
from repro.geometry import Point
from repro.tour import (ChargingPlan, optimize_tour, plan_total_energy,
                        stop_for_sensors)


def _zigzag_plan(cost, amplitude=60.0, n=6):
    """Stops alternating above/below a line — lots of slack to optimize."""
    locations = []
    stops = []
    for i in range(n):
        y = amplitude if i % 2 else -amplitude
        location = Point(i * 150.0, y)
        locations.append(location)
        stops.append(stop_for_sensors(location, [i], locations, cost))
    plan = ChargingPlan(stops=tuple(stops), depot=Point(-100.0, 0.0))
    return plan, locations


class TestOptimizeTour:
    def test_energy_never_increases(self, paper_cost):
        plan, locations = _zigzag_plan(paper_cost)
        before = plan_total_energy(plan, locations, paper_cost)
        optimized, report = optimize_tour(plan, locations, paper_cost)
        after = plan_total_energy(optimized, locations, paper_cost)
        assert after <= before + 1e-6
        assert report.final_energy_j == pytest.approx(after, rel=1e-9)
        assert report.improvement_j >= 0.0

    def test_improves_zigzag_when_movement_expensive(self):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=100.0)
        plan, locations = _zigzag_plan(cost)
        optimized, report = optimize_tour(plan, locations, cost)
        assert report.improvement_j > 0.0
        assert report.moves > 0

    def test_no_moves_when_charging_dominates(self, cheap_move_cost):
        plan, locations = _zigzag_plan(cheap_move_cost)
        optimized, report = optimize_tour(plan, locations,
                                          cheap_move_cost)
        assert report.improvement_j == pytest.approx(0.0, abs=1e-6)

    def test_dwell_still_covers_farthest_sensor(self, paper_cost):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=100.0)
        plan, locations = _zigzag_plan(cost)
        optimized, _ = optimize_tour(plan, locations, cost)
        for stop in optimized.stops:
            worst = stop.worst_distance(locations)
            needed = cost.dwell_time_for_distance(worst)
            assert stop.dwell_s >= needed - 1e-6

    def test_bundle_radius_caps_displacement(self):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=100.0)
        plan, locations = _zigzag_plan(cost)
        capped, _ = optimize_tour(plan, locations, cost,
                                  bundle_radius=5.0)
        for stop, original in zip(capped.stops, plan.stops):
            # Singleton bundles: displacement cap = radius - 0 = 5 m.
            assert original.position.distance_to(stop.position) \
                <= 5.0 + 1e-6

    def test_uncapped_moves_farther_than_capped(self):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=100.0)
        plan, locations = _zigzag_plan(cost)
        capped, _ = optimize_tour(plan, locations, cost,
                                  bundle_radius=5.0)
        free, _ = optimize_tour(plan, locations, cost)
        capped_energy = plan_total_energy(capped, locations, cost)
        free_energy = plan_total_energy(free, locations, cost)
        assert free_energy <= capped_energy + 1e-6

    def test_single_stop_plan_untouched(self, paper_cost):
        locations = [Point(10, 10)]
        stop = stop_for_sensors(locations[0], [0], locations,
                                paper_cost)
        plan = ChargingPlan(stops=(stop,), depot=Point(0, 0))
        optimized, report = optimize_tour(plan, locations, paper_cost)
        assert report.moves == 0

    def test_centers_length_mismatch_rejected(self, paper_cost):
        plan, locations = _zigzag_plan(paper_cost)
        with pytest.raises(PlanError):
            optimize_tour(plan, locations, paper_cost,
                          centers=[Point(0, 0)])

    def test_sensor_assignment_preserved(self, paper_cost):
        plan, locations = _zigzag_plan(paper_cost)
        optimized, _ = optimize_tour(plan, locations, paper_cost)
        for before, after in zip(plan.stops, optimized.stops):
            assert before.sensors == after.sensors

    def test_max_sweeps_one_matches_paper_loop(self):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=100.0)
        plan, locations = _zigzag_plan(cost)
        one_sweep, report = optimize_tour(plan, locations, cost,
                                          max_sweeps=1)
        assert report.sweeps == 1
        assert plan_total_energy(one_sweep, locations, cost) <= \
            plan_total_energy(plan, locations, cost) + 1e-6
