"""Tests for canonical cache-key derivation."""

import pytest

from repro.cache import KERNEL_VERSIONS, canonical, stage_key
from repro.charging import CostParameters, FriisChargingModel
from repro.errors import CacheError
from repro.geometry import Point


class TestCanonical:
    def test_primitives_pass_through(self):
        for value in (None, True, False, 3, -7, 2.5, "abc"):
            assert canonical(value) == value

    def test_float_exactness(self):
        # repr round-trips every double; two nearby doubles must not
        # canonicalize to the same form.
        a = 0.1 + 0.2
        b = 0.3
        assert a != b
        assert canonical(a) != canonical(b)

    def test_point(self):
        assert canonical(Point(1.5, -2.0)) == {"__point__": [1.5, -2.0]}

    def test_sequences_recurse(self):
        assert canonical([1, (2, 3)]) == [1, [2, 3]]

    def test_sets_are_sorted(self):
        assert canonical({3, 1, 2}) == {"__set__": [1, 2, 3]}
        assert canonical(frozenset({"b", "a"})) == {"__set__": ["a", "b"]}

    def test_dicts_are_key_sorted(self):
        assert list(canonical({"b": 1, "a": 2})) == ["a", "b"]

    def test_cost_parameters(self):
        cost = CostParameters.paper_defaults()
        form = canonical(cost)
        assert "__cost__" in form
        assert form == canonical(CostParameters.paper_defaults())

    def test_charging_model(self):
        form = canonical(FriisChargingModel())
        assert form["__model__"][0] == "FriisChargingModel"

    def test_unknown_type_raises(self):
        class Opaque:
            pass

        with pytest.raises(CacheError, match="canonicalize"):
            canonical(Opaque())

    def test_unknown_type_inside_container_raises(self):
        with pytest.raises(CacheError):
            canonical({"okay": [object()]})


class TestStageKey:
    def test_is_sha256_hex(self):
        key = stage_key("deployment", {"n": 5, "seed": 1})
        assert len(key) == 64
        int(key, 16)  # must parse as hex

    def test_deterministic(self):
        params = {"n": 5, "seed": 1, "points": [Point(0.0, 1.0)]}
        assert stage_key("tsp", params) == stage_key("tsp", dict(params))

    def test_param_order_is_irrelevant(self):
        assert stage_key("cover", {"a": 1, "b": 2}) \
            == stage_key("cover", {"b": 2, "a": 1})

    def test_different_params_differ(self):
        assert stage_key("deployment", {"seed": 1}) \
            != stage_key("deployment", {"seed": 2})

    def test_different_stages_differ(self):
        assert stage_key("candidates", {"x": 1}) \
            != stage_key("cover", {"x": 1})

    def test_kernel_tag_invalidates(self, monkeypatch):
        before = stage_key("tsp", {"x": 1})
        monkeypatch.setitem(KERNEL_VERSIONS, "tsp", "tsp/v999")
        assert stage_key("tsp", {"x": 1}) != before

    def test_unknown_stage_raises(self):
        with pytest.raises(CacheError, match="unknown cache stage"):
            stage_key("not-a-stage", {})

    def test_every_registered_stage_keys(self):
        for stage in KERNEL_VERSIONS:
            assert len(stage_key(stage, {"probe": 1})) == 64
