"""Tests for the in-memory LRU and on-disk cache stores."""

import os
import pickle

import pytest

from repro.cache import DiskStore, MemoryStore, PICKLE_PROTOCOL
from repro.errors import CacheError

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62
KEY_C = "cc" + "0" * 62


def _blob(value):
    return pickle.dumps(value, protocol=PICKLE_PROTOCOL)


class TestMemoryStore:
    def test_roundtrip(self):
        store = MemoryStore(4)
        store.put(KEY_A, "tsp", _blob([1, 2, 3]))
        assert pickle.loads(store.get(KEY_A)) == [1, 2, 3]

    def test_miss_is_none(self):
        assert MemoryStore(4).get(KEY_A) is None

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(CacheError):
            MemoryStore(0)

    def test_lru_eviction_order(self):
        store = MemoryStore(2)
        assert store.put(KEY_A, "tsp", _blob(1)) == 0
        assert store.put(KEY_B, "tsp", _blob(2)) == 0
        # Touch A so B becomes the least recently used entry.
        assert store.get(KEY_A) is not None
        assert store.put(KEY_C, "tsp", _blob(3)) == 1
        assert store.get(KEY_B) is None
        assert store.get(KEY_A) is not None
        assert store.get(KEY_C) is not None

    def test_put_refreshes_existing_key(self):
        store = MemoryStore(2)
        store.put(KEY_A, "tsp", _blob(1))
        store.put(KEY_B, "tsp", _blob(2))
        store.put(KEY_A, "tsp", _blob(10))  # refresh, no eviction
        store.put(KEY_C, "tsp", _blob(3))   # evicts B, not A
        assert store.get(KEY_B) is None
        assert pickle.loads(store.get(KEY_A)) == 10

    def test_stats_and_clear(self):
        store = MemoryStore(8)
        store.put(KEY_A, "tsp", _blob(1))
        store.put(KEY_B, "cover", _blob(2))
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["max_entries"] == 8
        assert stats["stages"] == {"cover": 1, "tsp": 1}
        assert stats["bytes"] > 0
        store.clear()
        assert len(store) == 0
        assert store.stats()["entries"] == 0


class TestDiskStore:
    def test_roundtrip(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write(KEY_A, "deployment", _blob({"n": 3}))
        assert pickle.loads(store.read(KEY_A)) == {"n": 3}

    def test_miss_is_none(self, tmp_path):
        assert DiskStore(str(tmp_path)).read(KEY_A) is None

    def test_sharded_layout(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write(KEY_A, "tsp", _blob(1))
        assert os.path.exists(
            tmp_path / "objects" / KEY_A[:2] / f"{KEY_A}.bin")

    def test_last_writer_wins(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write(KEY_A, "tsp", _blob(1))
        store.write(KEY_A, "tsp", _blob(2))
        assert pickle.loads(store.read(KEY_A)) == 2

    def test_corrupt_payload_reads_as_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write(KEY_A, "tsp", _blob([1, 2]))
        path = tmp_path / "objects" / KEY_A[:2] / f"{KEY_A}.bin"
        path.write_bytes(path.read_bytes()[:-1] + b"X")
        assert store.read(KEY_A) is None

    def test_torn_entry_reads_as_miss(self, tmp_path):
        store = DiskStore(str(tmp_path))
        path = tmp_path / "objects" / KEY_A[:2]
        path.mkdir(parents=True)
        (path / f"{KEY_A}.bin").write_bytes(b"not a header")
        assert store.read(KEY_A) is None

    def test_verify_clean(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write(KEY_A, "tsp", _blob(1))
        store.write(KEY_B, "cover", _blob(2))
        assert store.verify() == []

    def test_verify_reports_corruption(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write(KEY_A, "tsp", _blob([1, 2]))
        path = tmp_path / "objects" / KEY_A[:2] / f"{KEY_A}.bin"
        path.write_bytes(path.read_bytes()[:-1] + b"X")
        problems = store.verify()
        assert len(problems) == 1
        assert "digest mismatch" in problems[0]

    def test_stats(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write(KEY_A, "tsp", _blob(1))
        store.write(KEY_B, "tsp", _blob(2))
        store.write(KEY_C, "deployment", _blob(3))
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["stages"] == {"deployment": 1, "tsp": 2}
        assert stats["bytes"] > 0

    def test_clear(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.write(KEY_A, "tsp", _blob(1))
        store.write(KEY_B, "tsp", _blob(2))
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
        assert store.read(KEY_A) is None
