"""End-to-end cache reuse through the experiment runner.

The contract under test: enabling the cache changes wall-clock only —
aggregated results are bit-identical with the cache off, cold, warm,
on disk, and at any job count.
"""

import pytest

from repro.cache import reset_cache_state
from repro.experiments import ExperimentConfig
from repro.experiments.runner import (cell_seed, run_averaged,
                                      shared_deployments)
from repro.errors import ExperimentError
from repro.perf.counters import PERF

ALGORITHMS = ["SC", "BC"]


@pytest.fixture(autouse=True)
def _clean_cache_state():
    reset_cache_state()
    PERF.reset()
    yield
    reset_cache_state()


def _config(**overrides):
    base = dict(runs=2, node_count=30, node_counts=(30,), radii=(15.0,))
    base.update(overrides)
    return ExperimentConfig(**base)


def _rows(aggregated):
    return {name: {metric: (cell.mean, cell.std, cell.count)
                   for metric, cell in aggregated[name].items()}
            for name in aggregated}


class TestBitIdentity:
    def test_cached_equals_uncached(self):
        plain = run_averaged(_config(), 30, 15.0, ALGORITHMS, "t")
        cached = run_averaged(_config(use_cache=True), 30, 15.0,
                              ALGORITHMS, "t")
        assert _rows(plain) == _rows(cached)

    def test_warm_repeat_is_identical_and_hits(self):
        config = _config(use_cache=True)
        cold = run_averaged(config, 30, 15.0, ALGORITHMS, "t")
        misses = PERF.counter("cache.miss")
        hits_before = PERF.counter("cache.hit")
        warm = run_averaged(config, 30, 15.0, ALGORITHMS, "t")
        assert _rows(cold) == _rows(warm)
        assert misses > 0
        # The warm pass serves every seed row from the cache.
        assert PERF.counter("cache.hit.seed_row") == config.runs
        assert PERF.counter("cache.hit") > hits_before
        assert PERF.counter("cache.miss") == misses

    def test_disk_cache_warms_across_processes_worth_of_state(
            self, tmp_path):
        config = _config(cache_dir=str(tmp_path))
        cold = run_averaged(config, 30, 15.0, ALGORITHMS, "t")
        # A fresh registry simulates a new process over the same dir.
        reset_cache_state()
        PERF.reset()
        warm = run_averaged(config, 30, 15.0, ALGORITHMS, "t")
        assert _rows(cold) == _rows(warm)
        assert PERF.counter("cache.disk_hit") > 0
        assert PERF.counter("cache.miss") == 0

    def test_parallel_equals_serial_with_cache(self, tmp_path):
        config = _config(cache_dir=str(tmp_path))
        serial = run_averaged(config, 30, 15.0, ALGORITHMS, "t")
        reset_cache_state()
        parallel = run_averaged(_config(cache_dir=str(tmp_path), jobs=2),
                                30, 15.0, ALGORITHMS, "t")
        assert _rows(serial) == _rows(parallel)
        # Worker counters merged back into the parent registry.
        assert PERF.counter("cache.hit") + PERF.counter("cache.miss") > 0

    def test_shadow_verify_full_rate_passes(self):
        config = _config(use_cache=True, shadow_verify=1.0)
        cold = run_averaged(config, 30, 15.0, ALGORITHMS, "t")
        warm = run_averaged(config, 30, 15.0, ALGORITHMS, "t")
        assert _rows(cold) == _rows(warm)
        assert PERF.counter("cache.shadow_checks") > 0
        assert PERF.counter("cache.shadow_mismatches") == 0


class TestSeedDerivation:
    def test_paper_default_seeds_depend_on_radius(self):
        config = _config()
        assert cell_seed(config, "t", 30, 10.0, 0) \
            != cell_seed(config, "t", 30, 20.0, 0)

    def test_shared_mode_seeds_ignore_radius(self):
        config = _config(shared_deployment=True)
        assert cell_seed(config, "t", 30, 10.0, 0) \
            == cell_seed(config, "t", 30, 20.0, 0)
        assert cell_seed(config, "t", 30, 10.0, 0) \
            != cell_seed(config, "t", 30, 10.0, 1)


class TestSharedDeployments:
    def test_requires_shared_mode(self):
        with pytest.raises(ExperimentError):
            shared_deployments(_config(), 30, "t")

    def test_matches_per_cell_deployments(self):
        config = _config(shared_deployment=True, use_cache=True)
        networks = shared_deployments(config, 30, "t")
        assert len(networks) == config.runs
        with_prebuilt = run_averaged(config, 30, 15.0, ALGORITHMS, "t",
                                     deployments=networks)
        reset_cache_state()
        without = run_averaged(_config(shared_deployment=True), 30, 15.0,
                               ALGORITHMS, "t")
        assert _rows(with_prebuilt) == _rows(without)

    def test_prebuilt_deployments_reach_workers(self):
        config = _config(shared_deployment=True, use_cache=True, jobs=2)
        networks = shared_deployments(config, 30, "t")
        parallel = run_averaged(config, 30, 15.0, ALGORITHMS, "t",
                                deployments=networks)
        reset_cache_state()
        serial = run_averaged(
            _config(shared_deployment=True, use_cache=True), 30, 15.0,
            ALGORITHMS, "t", deployments=networks)
        assert _rows(parallel) == _rows(serial)


class TestWarmStartMode:
    def test_warm_start_produces_valid_results(self):
        # Warm-start changes which local optimum 2-opt lands in, so no
        # equality claim — only that the pipeline runs and aggregates.
        config = _config(use_cache=True, warm_start=True,
                         radii=(10.0, 20.0))
        for radius in config.radii:
            aggregated = run_averaged(config, 30, radius, ALGORITHMS,
                                      "t")
            for name in ALGORITHMS:
                assert aggregated[name]["total_j"].mean > 0.0
        assert PERF.counter("cache.warm_start.used") > 0
