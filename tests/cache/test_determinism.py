"""The cache must be invisible to the numbers.

Three subprocess runs of a trimmed fig12 radius sweep — one with the
cache simply left disabled, one where ``repro.cache`` is *blocked from
importing at all*, and one with the cache fully enabled (plus 100%
shadow-verify) — must write byte-identical results CSVs.  This pins the
opt-in contract from every direction: the passthrough path does not
perturb the pipeline, every call site degrades gracefully when the
cache package does not exist, and serving stages from the cache is
bit-identical to recomputing them.
"""

import os
import subprocess
import sys

_DRIVER = r"""
import sys

mode, out_dir = sys.argv[1], sys.argv[2]

if mode == "block":
    import importlib.abc

    class BlockCache(importlib.abc.MetaPathFinder):
        def find_spec(self, fullname, path=None, target=None):
            if fullname == "repro.cache" or \
                    fullname.startswith("repro.cache."):
                raise ImportError(f"{fullname} blocked for test")
            return None

    sys.meta_path.insert(0, BlockCache())

from dataclasses import replace

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.tables import print_tables

config = ExperimentConfig(runs=2, node_count=40, node_counts=(40,),
                          radii=(15.0, 30.0), default_radius=20.0)
if mode == "cached":
    cache_dir = sys.argv[3]
    config = replace(config, use_cache=True, cache_dir=cache_dir,
                     shadow_verify=1.0)
tables = run_experiment("fig12", config)
print_tables(tables, csv_dir=out_dir)

if mode == "block":
    leaked = [name for name in sys.modules
              if name == "repro.cache"
              or name.startswith("repro.cache.")]
    assert not leaked, f"repro.cache leaked into sys.modules: {leaked}"
"""


def _run_fig12(mode: str, out_dir: str, cache_dir: str = "") -> None:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    argv = [sys.executable, "-c", _DRIVER, mode, out_dir]
    if cache_dir:
        argv.append(cache_dir)
    completed = subprocess.run(
        argv, capture_output=True, text=True, env=env, timeout=600)
    assert completed.returncode == 0, completed.stderr


def test_cache_off_blocked_and_on_are_byte_identical(tmp_path):
    plain_dir = tmp_path / "plain"
    blocked_dir = tmp_path / "blocked"
    cached_dir = tmp_path / "cached"
    warm_dir = tmp_path / "warm"
    cache_store = str(tmp_path / "store")
    _run_fig12("plain", str(plain_dir))
    _run_fig12("block", str(blocked_dir))
    _run_fig12("cached", str(cached_dir), cache_store)
    # Second cached run replays every stage from the shared disk store,
    # with every hit shadow-verified against recomputation.
    _run_fig12("cached", str(warm_dir), cache_store)

    plain_csvs = sorted(os.listdir(plain_dir))
    assert plain_csvs  # the sweep must actually have written CSVs
    for other in (blocked_dir, cached_dir, warm_dir):
        assert sorted(os.listdir(other)) == plain_csvs
        for name in plain_csvs:
            assert (other / name).read_bytes() \
                == (plain_dir / name).read_bytes(), (other, name)
