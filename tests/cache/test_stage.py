"""Tests for the StageCache engine and the activation plumbing."""

import pickle

import pytest

from repro.cache import (StageCache, activate_cache, cache_for_config,
                         get_active_cache, reset_cache_state, stage_key,
                         stage_memo)
from repro.cache.store import PICKLE_PROTOCOL
from repro.errors import CacheError
from repro.experiments import ExperimentConfig
from repro.perf.counters import PERF


@pytest.fixture(autouse=True)
def _clean_cache_state():
    reset_cache_state()
    yield
    reset_cache_state()


class TestGetOrCompute:
    def test_miss_then_hit(self):
        cache = StageCache()
        calls = []

        def compute():
            calls.append(1)
            return [1, 2, 3]

        first = cache.get_or_compute("tsp", {"x": 1}, compute)
        second = cache.get_or_compute("tsp", {"x": 1}, compute)
        assert first == second == [1, 2, 3]
        assert len(calls) == 1

    def test_hit_is_a_fresh_object(self):
        cache = StageCache()
        value = cache.get_or_compute("tsp", {"x": 1}, lambda: [1, 2])
        value.append(99)  # mutating the returned value must not poison
        again = cache.get_or_compute("tsp", {"x": 1}, lambda: [1, 2])
        assert again == [1, 2]

    def test_different_params_recompute(self):
        cache = StageCache()
        assert cache.get_or_compute("tsp", {"x": 1}, lambda: "a") == "a"
        assert cache.get_or_compute("tsp", {"x": 2}, lambda: "b") == "b"

    def test_hit_miss_counters(self):
        PERF.reset()
        cache = StageCache()
        cache.get_or_compute("cover", {"x": 1}, lambda: 1)
        cache.get_or_compute("cover", {"x": 1}, lambda: 1)
        assert PERF.counter("cache.miss") == 1
        assert PERF.counter("cache.hit") == 1
        assert PERF.counter("cache.miss.cover") == 1
        assert PERF.counter("cache.hit.cover") == 1

    def test_lru_eviction_counter(self):
        PERF.reset()
        cache = StageCache(max_entries=1)
        cache.get_or_compute("tsp", {"x": 1}, lambda: 1)
        cache.get_or_compute("tsp", {"x": 2}, lambda: 2)
        assert PERF.counter("cache.evict") == 1
        # The first entry was evicted, so it recomputes.
        PERF.reset()
        cache.get_or_compute("tsp", {"x": 1}, lambda: 1)
        assert PERF.counter("cache.miss") == 1

    def test_disk_store_survives_new_cache(self, tmp_path):
        first = StageCache(cache_dir=str(tmp_path))
        first.get_or_compute("deployment", {"n": 3}, lambda: "payload")
        PERF.reset()
        second = StageCache(cache_dir=str(tmp_path))
        calls = []
        value = second.get_or_compute("deployment", {"n": 3},
                                      lambda: calls.append(1) or "new")
        assert value == "payload"
        assert not calls
        assert PERF.counter("cache.disk_hit") == 1
        assert PERF.counter("cache.hit") == 1

    def test_unknown_stage_raises(self):
        with pytest.raises(CacheError):
            StageCache().get_or_compute("bogus", {}, lambda: 1)


class TestKernelVersionInvalidation:
    """The SoA PR bumped the candidates/cover/tsp kernel tags; entries
    stored under the previous tags must silently miss and recompute —
    never deserialize stale payloads, never raise."""

    def test_soa_stage_tags_are_bumped(self):
        from repro.cache import KERNEL_VERSIONS
        assert KERNEL_VERSIONS["candidates"] == "obg-candidates/v2"
        assert KERNEL_VERSIONS["cover"] == "obg-cover/v2"
        assert KERNEL_VERSIONS["tsp"] == "tsp/v2"

    def test_old_disk_entry_misses_and_recomputes(self, tmp_path,
                                                  monkeypatch):
        from repro.cache import KERNEL_VERSIONS
        params = {"points": [1.0, 2.0], "radius": 20.0}
        with monkeypatch.context() as patch:
            # Populate the disk store as a pre-bump build would have.
            patch.setitem(KERNEL_VERSIONS, "candidates",
                          "obg-candidates/v1")
            old = StageCache(cache_dir=str(tmp_path))
            assert old.get_or_compute("candidates", params,
                                      lambda: "v1-masks") == "v1-masks"
        PERF.reset()
        fresh = StageCache(cache_dir=str(tmp_path))
        value = fresh.get_or_compute("candidates", params,
                                     lambda: "v2-masks")
        assert value == "v2-masks"
        assert PERF.counter("cache.miss.candidates") == 1
        assert PERF.counter("cache.disk_hit") == 0
        # The retired blob stays on disk under its old key, harmlessly;
        # the bumped tag now hits its own entry.
        again = fresh.get_or_compute("candidates", params, lambda: "no")
        assert again == "v2-masks"
        assert PERF.counter("cache.hit.candidates") == 1


class TestShadowVerify:
    def test_clean_hit_passes(self):
        PERF.reset()
        cache = StageCache(shadow_rate=1.0)
        cache.get_or_compute("tsp", {"x": 1}, lambda: [1, 2])
        assert cache.get_or_compute("tsp", {"x": 1},
                                    lambda: [1, 2]) == [1, 2]
        assert PERF.counter("cache.shadow_checks") == 1
        assert PERF.counter("cache.shadow_mismatches") == 0

    def test_poisoned_entry_raises(self):
        PERF.reset()
        cache = StageCache(shadow_rate=1.0)
        cache.get_or_compute("tsp", {"x": 1}, lambda: [1, 2])
        # Poison the stored payload behind the cache's back.
        key = stage_key("tsp", {"x": 1})
        cache.memory.put(key, "tsp",
                         pickle.dumps([9, 9], protocol=PICKLE_PROTOCOL))
        with pytest.raises(CacheError, match="shadow-verify mismatch"):
            cache.get_or_compute("tsp", {"x": 1}, lambda: [1, 2])
        assert PERF.counter("cache.shadow_mismatches") == 1

    def test_selection_is_deterministic_per_key(self):
        cache = StageCache(shadow_rate=0.5)
        key = stage_key("tsp", {"x": 1})
        decisions = {cache._shadow_selected(key) for _ in range(5)}
        assert len(decisions) == 1

    def test_recompute_bypasses_inner_stages(self):
        # The shadow recompute of an outer stage must not serve inner
        # stages from the cache, or it would verify the cache against
        # itself.
        cache = StageCache(shadow_rate=1.0)
        inner_calls = []

        def outer():
            return stage_memo("tsp", lambda: {"inner": 1},
                              lambda: inner_calls.append(1) or [0, 1])

        with activate_cache(cache):
            cache.get_or_compute("seed_row", {"o": 1}, outer)
            assert len(inner_calls) == 1
            cache.get_or_compute("seed_row", {"o": 1}, outer)
        # The hit's shadow recompute re-ran the outer thunk, and its
        # inner stage recomputed too (bypass), not served from cache.
        assert len(inner_calls) == 2

    def test_invalid_rate_raises(self):
        with pytest.raises(CacheError):
            StageCache(shadow_rate=1.5)


class TestWarmStart:
    def test_skip_stages_not_memoized(self):
        cache = StageCache(warm_start=True)
        calls = []
        for _ in range(2):
            cache.get_or_compute("tsp", {"x": 1},
                                 lambda: calls.append(1) or [0, 1])
        assert len(calls) == 2

    def test_other_stages_still_memoized(self):
        cache = StageCache(warm_start=True)
        calls = []
        for _ in range(2):
            cache.get_or_compute("deployment", {"x": 1},
                                 lambda: calls.append(1) or "net")
        assert len(calls) == 1

    def test_hints_roundtrip(self):
        cache = StageCache(warm_start=True)
        assert cache.tsp_hint("nn+2opt", 5) is None
        cache.store_tsp_hint("nn+2opt", 5, [0, 2, 1, 4, 3])
        assert cache.tsp_hint("nn+2opt", 5) == [0, 2, 1, 4, 3]
        assert cache.tsp_hint("nn+2opt", 6) is None
        assert cache.tsp_hint("greedy+2opt", 5) is None

    def test_hints_disabled_without_warm_start(self):
        cache = StageCache()
        cache.store_tsp_hint("nn+2opt", 5, [0, 1, 2, 3, 4])
        assert cache.tsp_hint("nn+2opt", 5) is None


class TestActivation:
    def test_no_active_cache_is_passthrough(self):
        calls = []
        value = stage_memo("tsp", lambda: calls.append("params") or {},
                           lambda: "computed")
        assert value == "computed"
        assert calls == []  # params_fn must not run without a cache

    def test_activation_scopes(self):
        cache = StageCache()
        assert get_active_cache() is None
        with activate_cache(cache):
            assert get_active_cache() is cache
        assert get_active_cache() is None

    def test_activate_none_is_noop(self):
        with activate_cache(None):
            assert get_active_cache() is None

    def test_stage_memo_uses_active_cache(self):
        calls = []
        with activate_cache(StageCache()):
            for _ in range(2):
                stage_memo("cover", lambda: {"x": 1},
                           lambda: calls.append(1) or "v")
        assert len(calls) == 1


class TestCacheForConfig:
    def test_disabled_config_returns_none(self):
        assert cache_for_config(ExperimentConfig()) is None

    def test_use_cache_builds_once_per_signature(self):
        config = ExperimentConfig(use_cache=True)
        first = cache_for_config(config)
        second = cache_for_config(ExperimentConfig(use_cache=True))
        assert first is not None
        assert first is second

    def test_cache_dir_implies_caching(self, tmp_path):
        config = ExperimentConfig(cache_dir=str(tmp_path))
        cache = cache_for_config(config)
        assert cache is not None
        assert cache.disk is not None

    def test_warm_start_implies_cache_object(self):
        cache = cache_for_config(ExperimentConfig(warm_start=True))
        assert cache is not None
        assert cache.warm_start

    def test_config_knobs_are_honored(self, tmp_path):
        config = ExperimentConfig(use_cache=True, cache_entries=7,
                                  shadow_verify=0.25,
                                  cache_dir=str(tmp_path))
        cache = cache_for_config(config)
        assert cache.memory.max_entries == 7
        assert cache.shadow_rate == 0.25
