"""Tests for the stage-memoization cache (repro.cache)."""
