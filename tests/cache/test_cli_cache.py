"""Tests for the ``bundle-charging cache`` subcommand and cache flags."""

import json
import pickle

import pytest

from repro.cache import DiskStore, PICKLE_PROTOCOL, reset_cache_state
from repro.cli import build_parser, main, make_config


@pytest.fixture(autouse=True)
def _clean_cache_state():
    reset_cache_state()
    yield
    reset_cache_state()


def _seed_store(root):
    store = DiskStore(root)
    store.write("ab" + "0" * 62, "tsp",
                pickle.dumps([1, 2], protocol=PICKLE_PROTOCOL))
    return store


class TestFlags:
    def test_cache_flag(self):
        args = build_parser().parse_args(["fig12", "--cache"])
        assert make_config(args).use_cache

    def test_cache_dir_implies_cache(self, tmp_path):
        args = build_parser().parse_args(
            ["fig12", "--cache-dir", str(tmp_path)])
        config = make_config(args)
        assert config.use_cache
        assert config.cache_dir == str(tmp_path)

    def test_cache_knobs(self, tmp_path):
        args = build_parser().parse_args(
            ["fig12", "--cache", "--cache-entries", "64",
             "--shadow-verify", "0.5"])
        config = make_config(args)
        assert config.cache_entries == 64
        assert config.shadow_verify == 0.5

    def test_warm_start_and_shared_deployment(self):
        args = build_parser().parse_args(
            ["fig12", "--warm-start", "--shared-deployment"])
        config = make_config(args)
        assert config.warm_start
        assert config.use_cache
        assert config.shared_deployment

    def test_defaults_leave_cache_off(self):
        config = make_config(build_parser().parse_args(["fig12"]))
        assert not config.use_cache
        assert config.cache_dir is None


class TestCacheSubcommand:
    def test_stats(self, tmp_path, capsys):
        _seed_store(str(tmp_path))
        assert main(["cache", "stats",
                     "--cache-dir", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["stages"] == {"tsp": 1}

    def test_verify_clean(self, tmp_path, capsys):
        _seed_store(str(tmp_path))
        assert main(["cache", "verify",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_corrupt_fails(self, tmp_path, capsys):
        _seed_store(str(tmp_path))
        key = "ab" + "0" * 62
        path = tmp_path / "objects" / "ab" / f"{key}.bin"
        path.write_bytes(path.read_bytes()[:-1] + b"X")
        assert main(["cache", "verify",
                     "--cache-dir", str(tmp_path)]) == 1
        assert "digest mismatch" in capsys.readouterr().err

    def test_clear(self, tmp_path, capsys):
        store = _seed_store(str(tmp_path))
        assert main(["cache", "clear",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert store.stats()["entries"] == 0

    def test_missing_action_is_usage_error(self, tmp_path, capsys):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 2
        assert "needs an action" in capsys.readouterr().err

    def test_unknown_action_is_usage_error(self, tmp_path, capsys):
        assert main(["cache", "defrag",
                     "--cache-dir", str(tmp_path)]) == 2

    def test_missing_dir_is_usage_error(self, capsys):
        assert main(["cache", "stats"]) == 2
        assert "--cache-dir" in capsys.readouterr().err


class TestCachedExperimentRun:
    def test_fig12_with_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "store")
        assert main(["fig12", "--fast", "--runs", "1",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] > 0
        assert "seed_row" in stats["stages"]
