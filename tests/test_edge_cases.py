"""Edge-case sweep across layers: the configurations the main suites
don't reach (depotless planners, zero-sensor networks, explicit
optimizer centers, fractional testbed dwells, CSS knobs)."""

import pytest

from repro import (CostParameters, evaluate_plan, make_planner,
                   uniform_deployment)
from repro.geometry import Point
from repro.network import SensorNetwork
from repro.planners import (BundleChargingOptPlanner,
                            CombineSkipSubstitutePlanner,
                            SingleChargingPlanner)


class TestDepotlessPlanning:
    @pytest.mark.parametrize("name", ["SC", "CSS", "BC", "BC-OPT"])
    def test_all_planners_work_without_depot(self, name, paper_cost,
                                             medium_network):
        from repro.planners import registry
        planner = registry.make_planner(name, 25.0)
        planner.use_depot = False
        plan = planner.plan(medium_network, paper_cost)
        assert plan.depot is None
        plan.validate_complete(len(medium_network))
        metrics = evaluate_plan(plan, medium_network.locations,
                                paper_cost)
        assert metrics.total_j > 0.0

    def test_depotless_tour_closes_on_first_stop(self, paper_cost):
        network = uniform_deployment(count=5, seed=1,
                                     field_side_m=100.0)
        planner = SingleChargingPlanner(use_depot=False)
        plan = planner.plan(network, paper_cost)
        waypoints = plan.waypoints()
        assert len(waypoints) == 5  # no depot prepended


class TestEmptyAndSingleton:
    def test_empty_network_all_planners(self, paper_cost):
        network = SensorNetwork([], 100.0)
        for name in ("SC", "CSS", "BC", "BC-OPT"):
            plan = make_planner(name, 20.0).plan(network, paper_cost)
            assert len(plan) == 0

    def test_single_sensor_all_planners(self, paper_cost):
        network = uniform_deployment(count=1, seed=3)
        for name in ("SC", "CSS", "BC", "BC-OPT"):
            plan = make_planner(name, 20.0).plan(network, paper_cost)
            plan.validate_complete(1)
            metrics = evaluate_plan(plan, network.locations, paper_cost)
            assert metrics.stop_count == 1


class TestOptimizerExplicitCenters:
    def test_centers_override_used_as_displacement_origin(self,
                                                          paper_cost):
        from repro.charging import CostParameters, FriisChargingModel
        from repro.tour import (ChargingPlan, optimize_tour,
                                stop_for_sensors)
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=100.0)
        locations = [Point(0, 50), Point(300, 50)]
        stops = tuple(stop_for_sensors(loc, [i], locations, cost)
                      for i, loc in enumerate(locations))
        plan = ChargingPlan(stops=stops, depot=Point(150, 0))
        # Give explicit centers equal to the stop positions.
        optimized, report = optimize_tour(
            plan, locations, cost,
            centers=[stop.position for stop in stops])
        assert report.final_energy_j <= report.initial_energy_j + 1e-6


class TestCssKnobs:
    def test_zero_substitute_rounds(self, medium_network, paper_cost):
        planner = CombineSkipSubstitutePlanner(25.0,
                                               substitute_rounds=0)
        plan = planner.plan(medium_network, paper_cost)
        plan.validate_complete(len(medium_network))

    def test_more_substitute_rounds_never_longer(self, medium_network,
                                                 paper_cost):
        short = CombineSkipSubstitutePlanner(
            25.0, substitute_rounds=0).plan(medium_network, paper_cost)
        long = CombineSkipSubstitutePlanner(
            25.0, substitute_rounds=5).plan(medium_network, paper_cost)
        assert long.tour_length() <= short.tour_length() + 1e-6


class TestBcOptKnobs:
    def test_zero_radius_steps_rejected_late(self, medium_network,
                                             paper_cost):
        from repro.errors import PlanError
        planner = BundleChargingOptPlanner(20.0, radius_steps=0)
        with pytest.raises(PlanError):
            planner.plan(medium_network, paper_cost)

    def test_more_radius_steps_never_worse(self, paper_cost):
        network = uniform_deployment(count=50, seed=4)
        coarse = BundleChargingOptPlanner(30.0, radius_steps=4).plan(
            network, paper_cost)
        fine = BundleChargingOptPlanner(30.0, radius_steps=32).plan(
            network, paper_cost)
        coarse_total = evaluate_plan(coarse, network.locations,
                                     paper_cost).total_j
        fine_total = evaluate_plan(fine, network.locations,
                                   paper_cost).total_j
        # Finer discretization explores a superset of displacements.
        assert fine_total <= coarse_total * 1.001


class TestTestbedFractionalDwell:
    def test_subsecond_dwell_single_report(self):
        from repro.planners import SingleChargingPlanner
        from repro.testbed import paper_testbed, run_testbed
        # Raise harvester efficiency -> shorter dwells (< report
        # interval), exercising the final-partial-frame path.
        from repro.testbed.scenario import paper_testbed as build
        scenario = build(harvester_efficiency=0.9, required_j=1e-5)
        run = run_testbed(SingleChargingPlanner(tsp_strategy="exact"),
                          scenario)
        assert run.charged_sensors == 6
        assert run.reports >= 6
