"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main, make_config


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig16"])
        assert args.experiment == "fig16"

    def test_all_keyword(self):
        args = build_parser().parse_args(["all", "--runs", "3"])
        assert args.experiment == "all"
        assert args.runs == 3

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fast_flag(self):
        args = build_parser().parse_args(["fig12", "--fast"])
        config = make_config(args)
        assert config.runs == 2

    def test_runs_override(self):
        args = build_parser().parse_args(["fig12", "--runs", "7"])
        assert make_config(args).runs == 7

    def test_seed_override(self):
        args = build_parser().parse_args(["fig12", "--seed", "99"])
        assert make_config(args).base_seed == 99


class TestMain:
    def test_runs_testbed_figure(self, capsys):
        exit_code = main(["fig16", "--fast"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Fig. 16(a)" in out
        assert "Fig. 16(b)" in out
        assert "finished in" in out

    def test_csv_output(self, tmp_path, capsys):
        csv_dir = os.path.join(tmp_path, "csv")
        exit_code = main(["fig16", "--fast", "--csv", csv_dir])
        assert exit_code == 0
        files = os.listdir(csv_dir)
        assert any(name.endswith(".csv") for name in files)


class TestRenderFlag:
    def test_fig10_render(self, capsys):
        exit_code = main(["fig10", "--fast", "--render"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "BC-OPT tour, bundle radius" in out
        assert "sensor" in out  # ASCII legend

    def test_render_ignored_for_other_figures(self, capsys):
        exit_code = main(["fig16", "--fast", "--render"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "BC-OPT tour, bundle radius" not in out


class TestPerfFlags:
    def test_jobs_flag_reaches_config(self):
        args = build_parser().parse_args(["fig13", "--jobs", "4"])
        assert make_config(args).jobs == 4

    def test_jobs_default_serial(self):
        args = build_parser().parse_args(["fig13"])
        assert make_config(args).jobs == 1

    def test_bench_subcommand_parses(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--out", "report.json"])
        assert args.experiment == "bench"
        assert args.quick
        assert args.out == "report.json"

    def test_bench_writes_report(self, tmp_path, capsys, monkeypatch):
        # Shrink the quick workloads so the CLI path stays fast in CI.
        from repro.perf import bench

        monkeypatch.setitem(bench._QUICK, "greedy_n", 40)
        monkeypatch.setitem(bench._QUICK, "ellipse_cases", 20)
        monkeypatch.setitem(bench._QUICK, "tsp_n", 30)
        out = tmp_path / "bench.json"
        code = main(["bench", "--quick", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "bit-identity" in captured
        import json
        report = json.loads(out.read_text())
        assert report["all_identical"] is True
        assert {e["name"] for e in report["entries"]} >= {
            "greedy_bundles_n40", "fig13_node_sweep"}
