"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main, make_config


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig16"])
        assert args.experiment == "fig16"

    def test_all_keyword(self):
        args = build_parser().parse_args(["all", "--runs", "3"])
        assert args.experiment == "all"
        assert args.runs == 3

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fast_flag(self):
        args = build_parser().parse_args(["fig12", "--fast"])
        config = make_config(args)
        assert config.runs == 2

    def test_runs_override(self):
        args = build_parser().parse_args(["fig12", "--runs", "7"])
        assert make_config(args).runs == 7

    def test_seed_override(self):
        args = build_parser().parse_args(["fig12", "--seed", "99"])
        assert make_config(args).base_seed == 99


class TestMain:
    def test_runs_testbed_figure(self, capsys):
        exit_code = main(["fig16", "--fast"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Fig. 16(a)" in out
        assert "Fig. 16(b)" in out
        assert "finished in" in out

    def test_csv_output(self, tmp_path, capsys):
        csv_dir = os.path.join(tmp_path, "csv")
        exit_code = main(["fig16", "--fast", "--csv", csv_dir])
        assert exit_code == 0
        files = os.listdir(csv_dir)
        assert any(name.endswith(".csv") for name in files)


class TestRenderFlag:
    def test_fig10_render(self, capsys):
        exit_code = main(["fig10", "--fast", "--render"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "BC-OPT tour, bundle radius" in out
        assert "sensor" in out  # ASCII legend

    def test_render_ignored_for_other_figures(self, capsys):
        exit_code = main(["fig16", "--fast", "--render"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "BC-OPT tour, bundle radius" not in out


class TestPerfFlags:
    def test_jobs_flag_reaches_config(self):
        args = build_parser().parse_args(["fig13", "--jobs", "4"])
        assert make_config(args).jobs == 4

    def test_jobs_default_serial(self):
        args = build_parser().parse_args(["fig13"])
        assert make_config(args).jobs == 1

    def test_bench_subcommand_parses(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--out", "report.json"])
        assert args.experiment == "bench"
        assert args.quick
        assert args.out == "report.json"

    def test_bench_writes_report(self, tmp_path, capsys, monkeypatch):
        # Shrink the quick workloads so the CLI path stays fast in CI.
        from repro.perf import bench

        monkeypatch.setitem(bench._QUICK, "greedy_n", 40)
        monkeypatch.setitem(bench._QUICK, "ellipse_cases", 20)
        monkeypatch.setitem(bench._QUICK, "tsp_n", 30)
        out = tmp_path / "bench.json"
        code = main(["bench", "--quick", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "bit-identity" in captured
        import json
        report = json.loads(out.read_text())
        assert report["all_identical"] is True
        assert {e["name"] for e in report["entries"]} >= {
            "greedy_bundles_n40", "fig13_node_sweep"}
        assert report["provenance"]["experiment"] == "bench"


class TestObservabilityFlags:
    def test_trace_subcommand_parses(self):
        args = build_parser().parse_args(
            ["trace", "fig13", "--fast", "--out-dir", "runs/"])
        assert args.experiment == "trace"
        assert args.target == "fig13"
        assert args.out_dir == "runs/"

    def test_report_subcommand_parses(self):
        args = build_parser().parse_args(
            ["report", "--trace", "a.jsonl", "--diff", "b.jsonl"])
        assert args.experiment == "report"
        assert args.trace == "a.jsonl"
        assert args.diff == "b.jsonl"

    def test_profile_flag_parses(self):
        assert build_parser().parse_args(
            ["fig16", "--profile"]).profile is True
        assert build_parser().parse_args(["fig16"]).profile is False

    def test_trace_without_experiment_id_fails(self, capsys):
        assert main(["trace"]) == 2
        assert "experiment id" in capsys.readouterr().err

    def test_trace_with_unknown_target_fails(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_report_without_trace_flag_fails(self, capsys):
        assert main(["report"]) == 2
        assert "--trace" in capsys.readouterr().err


class TestTraceReportRoundTrip:
    def _trace(self, tmp_path):
        out_dir = os.path.join(tmp_path, "traced")
        code = main(["trace", "fig13", "--fast", "--out-dir", out_dir])
        assert code == 0
        return os.path.join(out_dir, "fig13.jsonl"), out_dir

    def test_trace_writes_valid_jsonl_and_manifest(self, tmp_path,
                                                   capsys):
        import json
        from repro.obs.validate import (validate_jsonl,
                                        validate_manifest)
        trace_path, out_dir = self._trace(tmp_path)
        out = capsys.readouterr().out
        assert "traced in" in out
        assert validate_jsonl(trace_path) == []
        with open(os.path.join(out_dir, "manifest.json"),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert validate_manifest(manifest) == []
        assert manifest["experiment"] == "fig13"
        assert manifest["traced"] is True
        assert manifest["seeds"]  # the consumed per-run seeds

    def test_report_replays_the_trace(self, tmp_path, capsys):
        trace_path, _ = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["report", "--trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "Energy split per algorithm" in out
        assert "Time per pipeline phase" in out
        for algorithm in ("SC", "CSS", "BC", "BC-OPT"):
            assert algorithm in out

    def test_report_diff_mode(self, tmp_path, capsys):
        trace_path, _ = self._trace(tmp_path)
        capsys.readouterr()
        assert main(["report", "--trace", trace_path,
                     "--diff", trace_path]) == 0
        out = capsys.readouterr().out
        assert "Energy diff" in out
        assert "Phase time diff" in out

    def test_trace_with_profile_dumps_pstats(self, tmp_path, capsys):
        import pstats
        out_dir = os.path.join(tmp_path, "profiled")
        code = main(["trace", "fig16", "--fast", "--profile",
                     "--out-dir", out_dir])
        assert code == 0
        pstats_path = os.path.join(out_dir, "fig16.pstats")
        assert os.path.exists(pstats_path)
        stats = pstats.Stats(pstats_path)  # must parse as a dump
        assert stats.total_calls > 0

    def test_plain_experiment_profile_next_to_csv(self, tmp_path,
                                                  capsys):
        csv_dir = os.path.join(tmp_path, "csv")
        code = main(["fig16", "--fast", "--profile", "--csv", csv_dir])
        assert code == 0
        assert os.path.exists(os.path.join(csv_dir, "fig16.pstats"))

    def test_csv_run_writes_provenance_manifest(self, tmp_path,
                                                capsys):
        import json
        from repro.obs.validate import validate_manifest
        csv_dir = os.path.join(tmp_path, "csv")
        code = main(["fig16", "--fast", "--csv", csv_dir])
        assert code == 0
        manifest_path = os.path.join(csv_dir, "fig16.manifest.json")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert validate_manifest(manifest) == []
        assert manifest["experiment"] == "fig16"
        assert manifest["traced"] is False


class TestExitCodes:
    """Bad flag values exit 2 with a message — never a traceback."""

    def test_negative_radius_exits_2(self, capsys):
        assert main(["fig13", "--fast", "--radius", "-5"]) == 2
        err = capsys.readouterr().err
        assert "default_radius" in err

    def test_nan_radius_exits_2(self, capsys):
        assert main(["fig13", "--fast", "--radius", "nan"]) == 2
        assert "default_radius" in capsys.readouterr().err

    def test_radius_override_applies(self):
        args = build_parser().parse_args(["fig13", "--radius", "25.5"])
        assert make_config(args).default_radius == 25.5

    def test_warm_start_conflicts_with_shadow_verify(self, capsys):
        assert main(["fig12", "--fast", "--warm-start",
                     "--shadow-verify", "0.5"]) == 2
        err = capsys.readouterr().err
        assert "--warm-start" in err
        assert "--shadow-verify" in err

    def test_zero_runs_exits_2(self, capsys):
        assert main(["fig12", "--runs", "0"]) == 2
        assert "runs" in capsys.readouterr().err

    def test_zero_jobs_exits_2(self, capsys):
        assert main(["fig12", "--jobs", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_invalid_experiment_name_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figurama"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err
