"""Tests for the MST-doubling 2-approximation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.tsp import (DistanceMatrix, held_karp_length,
                       minimum_spanning_parent, mst_doubling_tour)


def random_points(n, seed=0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, 100), rng.uniform(0, 100))
            for _ in range(n)]


def _mst_weight(distance):
    parent = minimum_spanning_parent(distance)
    return sum(distance(city, parent[city])
               for city in range(1, distance.size))


def _brute_mst_weight(distance):
    """Kruskal by brute force for cross-checking small instances."""
    n = distance.size
    edges = sorted((distance(i, j), i, j)
                   for i in range(n) for j in range(i + 1, n))
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    total = 0.0
    for weight, i, j in edges:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj
            total += weight
    return total


class TestMst:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=15),
           st.integers(min_value=0, max_value=10_000))
    def test_prim_matches_kruskal(self, n, seed):
        matrix = DistanceMatrix(random_points(n, seed=seed))
        assert _mst_weight(matrix) == pytest.approx(
            _brute_mst_weight(matrix), rel=1e-9)

    def test_parent_array_rooted_at_zero(self):
        matrix = DistanceMatrix(random_points(10, seed=1))
        parent = minimum_spanning_parent(matrix)
        assert parent[0] == -1
        assert all(0 <= parent[c] < 10 for c in range(1, 10))


class TestDoublingTour:
    def test_valid_tour(self):
        matrix = DistanceMatrix(random_points(25, seed=2))
        tour = mst_doubling_tour(matrix)
        assert sorted(tour.order) == list(range(25))
        assert tour[0] == 0

    def test_tiny_instances(self):
        for n in (0, 1, 2, 3):
            tour = mst_doubling_tour(DistanceMatrix(random_points(n)))
            assert sorted(tour.order) == list(range(n))

    def test_two_approximation_versus_exact(self):
        for seed in range(8):
            matrix = DistanceMatrix(random_points(9, seed=seed))
            approx = mst_doubling_tour(matrix).length(matrix)
            exact = held_karp_length(matrix)
            assert approx <= 2.0 * exact + 1e-9

    def test_tour_at_least_mst_weight(self):
        # Any tour costs at least the MST (standard lower bound).
        matrix = DistanceMatrix(random_points(20, seed=5))
        tour = mst_doubling_tour(matrix)
        assert tour.length(matrix) >= _mst_weight(matrix) - 1e-9

    def test_solver_facade_strategy(self):
        from repro.tsp import solve_tsp
        pts = random_points(15, seed=6)
        tour = solve_tsp(pts, strategy="mst")
        assert sorted(tour.order) == list(range(15))
        improved = solve_tsp(pts, strategy="mst+2opt")
        assert improved.geometric_length(pts) <= \
            tour.geometric_length(pts) + 1e-9
