"""Tests for 2-opt and Or-opt."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.tsp import (DistanceMatrix, Tour, held_karp_tour,
                       nearest_neighbor_lists, nearest_neighbor_tour,
                       or_opt, or_opt_fast, two_opt, two_opt_fast)


def random_points(n, seed=0, side=100.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side))
            for _ in range(n)]


class TestTwoOpt:
    def test_never_worse(self):
        for seed in range(8):
            pts = random_points(30, seed=seed)
            matrix = DistanceMatrix(pts)
            start = nearest_neighbor_tour(matrix)
            improved = two_opt(start, matrix)
            assert improved.length(matrix) <= start.length(matrix) + 1e-9

    def test_fixes_obvious_crossing(self):
        # A "bowtie" tour with one crossing; 2-opt must uncross it.
        pts = [Point(0, 0), Point(1, 1), Point(1, 0), Point(0, 1)]
        matrix = DistanceMatrix(pts)
        crossed = Tour([0, 1, 2, 3])
        fixed = two_opt(crossed, matrix)
        assert fixed.length(matrix) == pytest.approx(4.0)

    def test_valid_permutation_preserved(self):
        pts = random_points(40, seed=3)
        matrix = DistanceMatrix(pts)
        improved = two_opt(nearest_neighbor_tour(matrix), matrix)
        assert sorted(improved.order) == list(range(40))

    def test_small_instances_untouched(self):
        pts = random_points(3, seed=1)
        matrix = DistanceMatrix(pts)
        tour = Tour([2, 0, 1])
        assert two_opt(tour, matrix) == tour

    def test_reaches_optimum_on_circle(self):
        n = 12
        pts = [Point(math.cos(2 * math.pi * i / n),
                     math.sin(2 * math.pi * i / n)) for i in range(n)]
        matrix = DistanceMatrix(pts)
        rng = random.Random(0)
        order = list(range(n))
        rng.shuffle(order)
        improved = two_opt(Tour(order), matrix)
        optimal = 2 * n * math.sin(math.pi / n)
        # 2-opt from a random start reaches the convex-position optimum
        # (for points in convex position 2-opt-optimal = optimal).
        assert improved.length(matrix) == pytest.approx(optimal,
                                                        rel=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=4, max_value=9),
           st.integers(min_value=0, max_value=10_000))
    def test_close_to_exact_on_small_instances(self, n, seed):
        pts = random_points(n, seed=seed)
        matrix = DistanceMatrix(pts)
        improved = two_opt(nearest_neighbor_tour(matrix), matrix)
        exact = held_karp_tour(matrix)
        assert improved.length(matrix) <= exact.length(matrix) * 1.25


class TestOrOpt:
    def test_never_worse(self):
        for seed in range(8):
            pts = random_points(25, seed=seed + 100)
            matrix = DistanceMatrix(pts)
            start = nearest_neighbor_tour(matrix)
            improved = or_opt(start, matrix)
            assert improved.length(matrix) <= start.length(matrix) + 1e-9

    def test_valid_permutation_preserved(self):
        pts = random_points(30, seed=5)
        matrix = DistanceMatrix(pts)
        improved = or_opt(nearest_neighbor_tour(matrix), matrix)
        assert sorted(improved.order) == list(range(30))

    def test_relocates_outlier_city(self):
        # Line of cities with one visited badly out of order; Or-opt's
        # segment relocation repairs it without a reversal.
        pts = [Point(float(i), 0.0) for i in range(8)]
        matrix = DistanceMatrix(pts)
        bad = Tour([0, 5, 1, 2, 3, 4, 6, 7])
        improved = or_opt(bad, matrix)
        assert improved.length(matrix) < bad.length(matrix)

    def test_small_instances_untouched(self):
        pts = random_points(4, seed=1)
        matrix = DistanceMatrix(pts)
        tour = Tour([0, 1, 2, 3])
        assert or_opt(tour, matrix) == tour


class TestPipelines:
    def test_two_opt_then_or_opt_composes(self):
        pts = random_points(35, seed=9)
        matrix = DistanceMatrix(pts)
        start = nearest_neighbor_tour(matrix)
        after = or_opt(two_opt(start, matrix), matrix)
        assert after.length(matrix) <= start.length(matrix) + 1e-9
        assert sorted(after.order) == list(range(35))


class TestThreeOpt:
    def test_never_worse(self):
        from repro.tsp import three_opt
        for seed in range(6):
            pts = random_points(20, seed=seed + 50)
            matrix = DistanceMatrix(pts)
            start = nearest_neighbor_tour(matrix)
            improved = three_opt(start, matrix)
            assert improved.length(matrix) <= start.length(matrix) + 1e-9

    def test_valid_permutation(self):
        from repro.tsp import three_opt
        pts = random_points(22, seed=7)
        matrix = DistanceMatrix(pts)
        improved = three_opt(nearest_neighbor_tour(matrix), matrix)
        assert sorted(improved.order) == list(range(22))

    def test_improves_on_two_opt_local_optimum_sometimes(self):
        # 3-opt's segment exchange escapes some 2-opt local optima; over
        # several seeds it must strictly beat 2-opt at least once.
        from repro.tsp import three_opt
        strict_wins = 0
        for seed in range(10):
            pts = random_points(30, seed=seed + 200)
            matrix = DistanceMatrix(pts)
            base = two_opt(nearest_neighbor_tour(matrix), matrix)
            refined = three_opt(base, matrix)
            assert refined.length(matrix) <= base.length(matrix) + 1e-9
            if refined.length(matrix) < base.length(matrix) - 1e-9:
                strict_wins += 1
        assert strict_wins >= 1

    def test_small_instance_falls_back_to_two_opt(self):
        from repro.tsp import three_opt
        pts = random_points(5, seed=1)
        matrix = DistanceMatrix(pts)
        tour = nearest_neighbor_tour(matrix)
        assert three_opt(tour, matrix).length(matrix) <= \
            tour.length(matrix) + 1e-9

    def test_near_exact_on_small_instances(self):
        from repro.tsp import three_opt
        pts = random_points(9, seed=11)
        matrix = DistanceMatrix(pts)
        refined = three_opt(two_opt(nearest_neighbor_tour(matrix),
                                    matrix), matrix)
        exact = held_karp_tour(matrix)
        assert refined.length(matrix) <= exact.length(matrix) * 1.1


class TestTwoOptFast:
    """Neighbor-list 2-opt with don't-look bits."""

    def test_never_worse_than_input(self):
        for seed in range(10):
            pts = random_points(40, seed=seed)
            matrix = DistanceMatrix(pts)
            start = Tour(random.Random(seed).sample(range(40), 40))
            improved = two_opt_fast(Tour(start.order), matrix)
            assert improved.length(matrix) <= start.length(matrix) + 1e-9

    def test_returns_valid_permutation(self):
        pts = random_points(35, seed=3)
        matrix = DistanceMatrix(pts)
        start = Tour(random.Random(3).sample(range(35), 35))
        improved = two_opt_fast(start, matrix)
        assert sorted(improved.order) == list(range(35))

    def test_close_to_full_sweep_quality(self):
        # The candidate-list restriction may miss some moves; require the
        # result to stay within a few percent of the full first-improvement
        # sweep across seeds.
        for seed in range(6):
            pts = random_points(60, seed=seed)
            matrix = DistanceMatrix(pts)
            start = nearest_neighbor_tour(matrix)
            fast_len = two_opt_fast(Tour(start.order), matrix) \
                .length(matrix)
            full_len = two_opt(Tour(start.order), matrix).length(matrix)
            assert fast_len <= full_len * 1.05

    def test_tiny_instances_returned_unchanged(self):
        pts = random_points(3, seed=0)
        matrix = DistanceMatrix(pts)
        tour = Tour([0, 2, 1])
        assert two_opt_fast(tour, matrix).order == [0, 2, 1]

    @settings(deadline=None, max_examples=30)
    @given(st.integers(min_value=4, max_value=30),
           st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=12))
    def test_never_worse_property(self, n, seed, neighbor_count):
        pts = random_points(n, seed=seed)
        matrix = DistanceMatrix(pts)
        start = Tour(random.Random(seed).sample(range(n), n))
        improved = two_opt_fast(Tour(start.order), matrix,
                                neighbor_count=neighbor_count)
        assert sorted(improved.order) == list(range(n))
        assert improved.length(matrix) <= start.length(matrix) + 1e-9


class TestOrOptFast:
    def test_never_worse_than_input(self):
        for seed in range(8):
            pts = random_points(30, seed=seed)
            matrix = DistanceMatrix(pts)
            start = Tour(random.Random(seed).sample(range(30), 30))
            improved = or_opt_fast(Tour(start.order), matrix)
            assert sorted(improved.order) == list(range(30))
            assert improved.length(matrix) <= start.length(matrix) + 1e-9

    def test_small_instance_unchanged(self):
        pts = random_points(4, seed=1)
        matrix = DistanceMatrix(pts)
        tour = Tour([2, 0, 3, 1])
        assert or_opt_fast(tour, matrix).order == [2, 0, 3, 1]


class TestNearestNeighborLists:
    def test_sorted_by_distance_and_excludes_self(self):
        pts = random_points(20, seed=5)
        matrix = DistanceMatrix(pts)
        lists = nearest_neighbor_lists(matrix, 6)
        assert len(lists) == 20
        for city, neighbors in enumerate(lists):
            assert len(neighbors) == 6
            assert city not in neighbors
            dists = [matrix(city, c) for c in neighbors]
            assert dists == sorted(dists)

    def test_k_clamped_to_city_count(self):
        pts = random_points(4, seed=6)
        matrix = DistanceMatrix(pts)
        lists = nearest_neighbor_lists(matrix, 99)
        assert all(len(neighbors) == 3 for neighbors in lists)
