"""Tests for the Christofides approximation."""

import random

import pytest

from repro.geometry import Point
from repro.tsp import (DistanceMatrix, christofides_tour,
                       held_karp_length)


def random_points(n, seed=0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, 100), rng.uniform(0, 100))
            for _ in range(n)]


class TestChristofides:
    def test_valid_tour(self):
        matrix = DistanceMatrix(random_points(30, seed=1))
        tour = christofides_tour(matrix)
        assert sorted(tour.order) == list(range(30))

    def test_tiny_instances(self):
        for n in (0, 1, 2, 3):
            tour = christofides_tour(DistanceMatrix(random_points(n)))
            assert sorted(tour.order) == list(range(n))

    def test_within_ratio_of_exact(self):
        # Christofides guarantees 1.5x on metric instances; verify on
        # instances small enough for Held-Karp.
        for seed in range(6):
            pts = random_points(10, seed=seed)
            matrix = DistanceMatrix(pts)
            approx = christofides_tour(matrix).length(matrix)
            exact = held_karp_length(matrix)
            assert approx <= exact * 1.5 + 1e-9

    def test_deterministic(self):
        matrix = DistanceMatrix(random_points(20, seed=2))
        assert christofides_tour(matrix).order == \
            christofides_tour(matrix).order
