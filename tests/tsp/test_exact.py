"""Tests for Held-Karp exact TSP."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TourError
from repro.geometry import Point
from repro.tsp import (MAX_EXACT_CITIES, DistanceMatrix,
                       held_karp_length, held_karp_tour)


def random_points(n, seed=0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, 100), rng.uniform(0, 100))
            for _ in range(n)]


def brute_force_length(matrix):
    n = len(matrix)
    best = float("inf")
    for perm in itertools.permutations(range(1, n)):
        order = (0,) + perm
        length = sum(matrix(order[i], order[(i + 1) % n])
                     for i in range(n))
        best = min(best, length)
    return best


class TestHeldKarp:
    def test_trivial_sizes(self):
        for n in (0, 1, 2, 3):
            tour = held_karp_tour(DistanceMatrix(random_points(n)))
            assert sorted(tour.order) == list(range(n))

    def test_too_large_rejected(self):
        pts = random_points(MAX_EXACT_CITIES + 1)
        with pytest.raises(TourError):
            held_karp_tour(DistanceMatrix(pts))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=4, max_value=8),
           st.integers(min_value=0, max_value=10_000))
    def test_matches_brute_force(self, n, seed):
        matrix = DistanceMatrix(random_points(n, seed=seed))
        assert held_karp_length(matrix) == pytest.approx(
            brute_force_length(matrix), rel=1e-9)

    def test_returns_valid_tour(self):
        matrix = DistanceMatrix(random_points(10, seed=3))
        tour = held_karp_tour(matrix)
        assert sorted(tour.order) == list(range(10))
        assert tour[0] == 0

    def test_circle_optimum(self):
        import math
        n = 10
        pts = [Point(math.cos(2 * math.pi * i / n),
                     math.sin(2 * math.pi * i / n)) for i in range(n)]
        length = held_karp_length(DistanceMatrix(pts))
        assert length == pytest.approx(2 * n * math.sin(math.pi / n))
