"""Tests for the dense Euclidean distance matrix."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TourError
from repro.geometry import Point
from repro.tsp import DistanceMatrix

coords = st.floats(min_value=-1000.0, max_value=1000.0,
                   allow_nan=False, allow_infinity=False)
point_lists = st.lists(
    st.builds(Point, coords, coords), min_size=1, max_size=12)


def _grid(n):
    return [Point(float(i), float(i * i)) for i in range(n)]


class TestValues:
    def test_matches_pairwise_euclidean(self):
        points = _grid(6)
        matrix = DistanceMatrix(points)
        for i in range(6):
            for j in range(6):
                assert matrix(i, j) == pytest.approx(
                    points[i].distance_to(points[j]))

    def test_size_and_len(self):
        matrix = DistanceMatrix(_grid(5))
        assert matrix.size == 5
        assert len(matrix) == 5

    def test_empty(self):
        matrix = DistanceMatrix([])
        assert matrix.size == 0
        assert len(matrix) == 0

    @given(point_lists)
    def test_symmetry(self, points):
        matrix = DistanceMatrix(points)
        for i in range(len(points)):
            for j in range(len(points)):
                assert matrix(i, j) == matrix(j, i)

    @given(point_lists)
    def test_zero_diagonal(self, points):
        matrix = DistanceMatrix(points)
        for i in range(len(points)):
            assert matrix(i, i) == 0.0

    @given(point_lists)
    def test_nonnegative_and_finite(self, points):
        matrix = DistanceMatrix(points)
        for i in range(len(points)):
            for j in range(len(points)):
                value = matrix(i, j)
                assert value >= 0.0
                assert math.isfinite(value)


class TestRow:
    def test_row_matches_calls(self):
        matrix = DistanceMatrix(_grid(4))
        for i in range(4):
            assert matrix.row(i) == [matrix(i, j) for j in range(4)]

    def test_row_is_defensive_copy(self):
        matrix = DistanceMatrix(_grid(4))
        row = matrix.row(1)
        row[2] = -123.0
        assert matrix(1, 2) != -123.0
        assert matrix.row(1)[2] == matrix(1, 2)


class TestValidateIndex:
    def test_accepts_in_range(self):
        matrix = DistanceMatrix(_grid(3))
        for i in range(3):
            matrix.validate_index(i)  # must not raise

    @pytest.mark.parametrize("bad", [-1, 3, 100])
    def test_rejects_out_of_range(self, bad):
        matrix = DistanceMatrix(_grid(3))
        with pytest.raises(TourError, match="out of range"):
            matrix.validate_index(bad)

    def test_rejects_everything_when_empty(self):
        matrix = DistanceMatrix([])
        with pytest.raises(TourError):
            matrix.validate_index(0)
