"""Tests for the TSP solver facade."""

import random

import pytest

from repro.errors import TourError
from repro.geometry import Point
from repro.tsp import (DEFAULT_STRATEGY, STRATEGY_NAMES, DistanceMatrix,
                       held_karp_length, solve_tsp, solve_tsp_matrix,
                       tour_length)


def random_points(n, seed=0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, 100), rng.uniform(0, 100))
            for _ in range(n)]


ALL_STRATEGIES = ["exact", "nn", "greedy", "insertion", "christofides",
                  "nn+2opt", "greedy+2opt", "insertion+2opt",
                  "christofides+2opt", "anneal"]


class TestFacade:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_every_strategy_valid(self, strategy):
        pts = random_points(10, seed=1)
        tour = solve_tsp(pts, strategy=strategy)
        assert sorted(tour.order) == list(range(10))

    def test_unknown_strategy(self):
        with pytest.raises(TourError):
            solve_tsp(random_points(5), strategy="magic")

    def test_exact_size_limit(self):
        with pytest.raises(TourError):
            solve_tsp(random_points(20), strategy="exact")

    def test_auto_small_is_exact(self):
        pts = random_points(8, seed=2)
        auto = solve_tsp(pts, strategy="auto")
        assert tour_length(pts, auto) == pytest.approx(
            held_karp_length(DistanceMatrix(pts)))

    def test_auto_large_is_heuristic(self):
        pts = random_points(40, seed=3)
        tour = solve_tsp(pts, strategy="auto")
        assert sorted(tour.order) == list(range(40))

    def test_default_pipeline_beats_bare_nn(self):
        total_default = 0.0
        total_nn = 0.0
        for seed in range(5):
            pts = random_points(40, seed=seed)
            total_default += tour_length(
                pts, solve_tsp(pts, strategy="nn+2opt"))
            total_nn += tour_length(pts, solve_tsp(pts, strategy="nn"))
        assert total_default < total_nn

    def test_trivial_sizes(self):
        assert solve_tsp([]).order == []
        assert solve_tsp([Point(0, 0)]).order == [0]
        assert sorted(solve_tsp(random_points(2)).order) == [0, 1]

    def test_matrix_entry_point(self):
        pts = random_points(12, seed=4)
        matrix = DistanceMatrix(pts)
        tour = solve_tsp_matrix(matrix, strategy="greedy+2opt")
        assert sorted(tour.order) == list(range(12))

    def test_default_quality_near_exact_small(self):
        for seed in range(5):
            pts = random_points(9, seed=seed)
            matrix = DistanceMatrix(pts)
            heuristic = tour_length(pts, solve_tsp(pts))
            exact = held_karp_length(matrix)
            assert heuristic <= exact * 1.2 + 1e-9


class TestStrategyNamesPin:
    """``STRATEGY_NAMES`` is the public pin of the solver table.

    The planning service validates ``tsp_strategy`` against it without
    building a solver, so the list must track the dispatch table
    exactly.
    """

    def test_default_strategy_is_listed(self):
        assert DEFAULT_STRATEGY in STRATEGY_NAMES

    @pytest.mark.parametrize(
        "strategy", [name for name in STRATEGY_NAMES if name != "exact"])
    def test_every_listed_name_solves(self, strategy):
        pts = random_points(10, seed=7)
        tour = solve_tsp(pts, strategy=strategy, seed=0)
        assert sorted(tour.order) == list(range(10))

    def test_names_match_dispatch_table_exactly(self):
        import ast

        from repro.tsp import STRATEGY_NAMES
        matrix = DistanceMatrix(random_points(6, seed=8))
        with pytest.raises(TourError) as excinfo:
            solve_tsp_matrix(matrix, strategy="definitely-not-a-strategy")
        message = str(excinfo.value)
        listed = ast.literal_eval(
            message[message.index("["):message.index("]") + 1])
        assert sorted(STRATEGY_NAMES) == sorted(listed + ["auto"])
