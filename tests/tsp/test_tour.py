"""Tests for the Tour container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TourError
from repro.geometry import Point
from repro.tsp import Tour

permutations = st.permutations(list(range(6)))


class TestConstruction:
    def test_valid_permutation(self):
        tour = Tour([2, 0, 1])
        assert tour.order == [2, 0, 1]

    def test_rejects_duplicates(self):
        with pytest.raises(TourError):
            Tour([0, 0, 1])

    def test_rejects_gaps(self):
        with pytest.raises(TourError):
            Tour([0, 2])

    def test_empty_tour(self):
        assert len(Tour([])) == 0

    def test_identity(self):
        assert Tour.identity(4).order == [0, 1, 2, 3]


class TestGeometry:
    def test_edges_close_cycle(self):
        tour = Tour([0, 1, 2])
        assert list(tour.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_length_unit_square(self, square_points):
        tour = Tour([0, 1, 2, 3])
        assert tour.geometric_length(square_points) == pytest.approx(4.0)

    def test_length_single_city(self):
        assert Tour([0]).geometric_length([Point(5, 5)]) == 0.0

    @given(permutations)
    def test_rotation_preserves_length(self, order):
        points = [Point(float(i * i % 7), float(i * 3 % 5))
                  for i in range(6)]
        tour = Tour(list(order))
        rotated = tour.rotated_to_start(order[3])
        assert rotated.geometric_length(points) == pytest.approx(
            tour.geometric_length(points))
        assert rotated[0] == order[3]

    @given(permutations)
    def test_reversal_preserves_length(self, order):
        points = [Point(float(i), float(i % 3)) for i in range(6)]
        tour = Tour(list(order))
        assert tour.reversed().geometric_length(points) == \
            pytest.approx(tour.geometric_length(points))


class TestMoves:
    def test_two_opt_move_reverses_segment(self):
        tour = Tour([0, 1, 2, 3, 4])
        moved = tour.two_opt_move(1, 3)
        assert moved.order == [0, 3, 2, 1, 4]

    def test_two_opt_move_validates_indices(self):
        tour = Tour([0, 1, 2])
        with pytest.raises(TourError):
            tour.two_opt_move(2, 1)
        with pytest.raises(TourError):
            tour.two_opt_move(0, 5)

    def test_rotate_unknown_city(self):
        with pytest.raises(TourError):
            Tour([0, 1]).rotated_to_start(7)

    def test_equality(self):
        assert Tour([0, 1, 2]) == Tour([0, 1, 2])
        assert Tour([0, 1, 2]) != Tour([0, 2, 1])
