"""Tests for simulated annealing."""

import random

import pytest

from repro.errors import TourError
from repro.geometry import Point
from repro.tsp import (AnnealingSchedule, DistanceMatrix, anneal,
                       nearest_neighbor_tour)


def random_points(n, seed=0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, 100), rng.uniform(0, 100))
            for _ in range(n)]


class TestSchedule:
    def test_invalid_temperature(self):
        with pytest.raises(TourError):
            AnnealingSchedule(initial_temperature=0.0)

    def test_invalid_cooling(self):
        with pytest.raises(TourError):
            AnnealingSchedule(cooling=1.0)
        with pytest.raises(TourError):
            AnnealingSchedule(cooling=0.0)

    def test_invalid_iterations(self):
        with pytest.raises(TourError):
            AnnealingSchedule(iterations=-1)


class TestAnneal:
    def test_never_worse_than_start(self):
        for seed in range(5):
            pts = random_points(25, seed=seed)
            matrix = DistanceMatrix(pts)
            start = nearest_neighbor_tour(matrix)
            result = anneal(start, matrix, seed=seed,
                            schedule=AnnealingSchedule(iterations=3000))
            assert result.length(matrix) <= start.length(matrix) + 1e-9

    def test_valid_permutation(self):
        pts = random_points(20, seed=7)
        matrix = DistanceMatrix(pts)
        result = anneal(nearest_neighbor_tour(matrix), matrix, seed=1)
        assert sorted(result.order) == list(range(20))

    def test_deterministic_per_seed(self):
        pts = random_points(15, seed=3)
        matrix = DistanceMatrix(pts)
        start = nearest_neighbor_tour(matrix)
        schedule = AnnealingSchedule(iterations=2000)
        a = anneal(start, matrix, seed=5, schedule=schedule)
        b = anneal(start, matrix, seed=5, schedule=schedule)
        assert a.order == b.order

    def test_zero_iterations_is_identity(self):
        pts = random_points(10, seed=2)
        matrix = DistanceMatrix(pts)
        start = nearest_neighbor_tour(matrix)
        schedule = AnnealingSchedule(iterations=0)
        assert anneal(start, matrix, schedule=schedule) == start

    def test_small_instance_untouched(self):
        pts = random_points(3, seed=2)
        matrix = DistanceMatrix(pts)
        start = nearest_neighbor_tour(matrix)
        assert anneal(start, matrix) == start
