"""Tests for TSP construction heuristics."""

import random

import pytest

from repro.errors import TourError
from repro.geometry import Point
from repro.tsp import (DistanceMatrix, cheapest_insertion_tour,
                       greedy_edge_tour, nearest_neighbor_tour)

CONSTRUCTORS = [
    ("nn", lambda d: nearest_neighbor_tour(d)),
    ("greedy", lambda d: greedy_edge_tour(d)),
    ("insertion", lambda d: cheapest_insertion_tour(d)),
]


def random_points(n, seed=0, side=100.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side))
            for _ in range(n)]


class TestDistanceMatrix:
    def test_symmetry_and_diagonal(self):
        pts = random_points(10, seed=1)
        matrix = DistanceMatrix(pts)
        for i in range(10):
            assert matrix(i, i) == 0.0
            for j in range(10):
                assert matrix(i, j) == matrix(j, i)

    def test_values(self):
        matrix = DistanceMatrix([Point(0, 0), Point(3, 4)])
        assert matrix(0, 1) == 5.0

    def test_validate_index(self):
        matrix = DistanceMatrix([Point(0, 0)])
        with pytest.raises(TourError):
            matrix.validate_index(1)

    def test_row_copy(self):
        matrix = DistanceMatrix([Point(0, 0), Point(1, 0)])
        row = matrix.row(0)
        row[1] = 999.0
        assert matrix(0, 1) == 1.0


@pytest.mark.parametrize("name,constructor", CONSTRUCTORS)
class TestAllConstructors:
    def test_produces_valid_tour(self, name, constructor):
        pts = random_points(25, seed=2)
        tour = constructor(DistanceMatrix(pts))
        assert sorted(tour.order) == list(range(25))

    def test_tiny_instances(self, name, constructor):
        for n in (0, 1, 2, 3):
            pts = random_points(n, seed=3)
            tour = constructor(DistanceMatrix(pts))
            assert sorted(tour.order) == list(range(n))

    def test_deterministic(self, name, constructor):
        pts = random_points(20, seed=4)
        a = constructor(DistanceMatrix(pts))
        b = constructor(DistanceMatrix(pts))
        assert a.order == b.order

    def test_reasonable_quality_on_circle(self, name, constructor):
        # Cities on a circle: the optimal tour is the perimeter walk.
        import math
        n = 16
        pts = [Point(math.cos(2 * math.pi * i / n),
                     math.sin(2 * math.pi * i / n)) for i in range(n)]
        matrix = DistanceMatrix(pts)
        tour = constructor(matrix)
        optimal = 2 * n * math.sin(math.pi / n)
        assert tour.length(matrix) <= optimal * 1.6


class TestNearestNeighbor:
    def test_start_city_respected(self):
        pts = random_points(12, seed=5)
        tour = nearest_neighbor_tour(DistanceMatrix(pts), start=7)
        assert tour[0] == 7

    def test_invalid_start(self):
        with pytest.raises(TourError):
            nearest_neighbor_tour(DistanceMatrix(random_points(3)),
                                  start=9)

    def test_greedy_choice_on_line(self):
        pts = [Point(0, 0), Point(1, 0), Point(3, 0), Point(6, 0)]
        tour = nearest_neighbor_tour(DistanceMatrix(pts), start=0)
        assert tour.order == [0, 1, 2, 3]


class TestGreedyEdge:
    def test_beats_or_ties_nn_usually(self):
        wins = 0
        for seed in range(10):
            pts = random_points(30, seed=seed)
            matrix = DistanceMatrix(pts)
            nn_len = nearest_neighbor_tour(matrix).length(matrix)
            ge_len = greedy_edge_tour(matrix).length(matrix)
            if ge_len <= nn_len + 1e-9:
                wins += 1
        assert wins >= 6  # greedy edge is typically the better builder
