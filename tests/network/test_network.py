"""Tests for repro.network.network."""

import pytest

from repro.errors import DeploymentError
from repro.geometry import Point
from repro.network import Sensor, SensorNetwork


def _network(locations, side=100.0, base=None):
    sensors = [Sensor(index=i, location=loc)
               for i, loc in enumerate(locations)]
    return SensorNetwork(sensors, side, base_station=base)


class TestConstruction:
    def test_basic(self):
        network = _network([Point(1, 1), Point(2, 2)])
        assert len(network) == 2
        assert network[1].location == Point(2, 2)

    def test_default_base_station(self):
        network = _network([Point(1, 1)])
        assert network.base_station == Point(0, 0)

    def test_explicit_base_station(self):
        network = _network([Point(1, 1)], base=Point(50, 50))
        assert network.base_station == Point(50, 50)

    def test_bad_indices_rejected(self):
        sensors = [Sensor(index=1, location=Point(0, 0))]
        with pytest.raises(DeploymentError):
            SensorNetwork(sensors, 100.0)

    def test_invalid_field_rejected(self):
        with pytest.raises(DeploymentError):
            SensorNetwork([], 0.0)

    def test_locations_order(self):
        pts = [Point(3, 3), Point(1, 1), Point(2, 2)]
        network = _network(pts)
        assert network.locations == pts


class TestQueries:
    def test_neighbors_within_includes_self(self):
        network = _network([Point(0, 0), Point(1, 0), Point(10, 0)])
        found = sorted(network.neighbors_within(0, 2.0))
        assert found == [0, 1]

    def test_spatial_index_cached(self):
        network = _network([Point(0, 0), Point(1, 0)])
        first = network.spatial_index(5.0)
        second = network.spatial_index(5.0)
        assert first is second
        third = network.spatial_index(2.0)
        assert third is not first

    def test_density(self):
        network = _network([Point(i, i) for i in range(4)], side=1000.0)
        assert network.density_per_km2() == pytest.approx(4.0)

    def test_hull(self):
        network = _network([Point(0, 0), Point(4, 0), Point(0, 4),
                            Point(1, 1)])
        assert len(network.hull()) == 3


class TestMissionState:
    def test_reset_and_satisfaction(self):
        network = _network([Point(0, 0), Point(1, 1)])
        network[0].harvest(5.0)
        assert len(network.unsatisfied()) == 1
        network[1].harvest(5.0)
        assert network.all_satisfied()
        network.reset_energy()
        assert len(network.unsatisfied()) == 2

    def test_iteration(self):
        network = _network([Point(0, 0), Point(1, 1)])
        indices = [sensor.index for sensor in network]
        assert indices == [0, 1]
