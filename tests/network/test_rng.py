"""Tests for the seed-discipline helpers."""

from repro.network import derive_seed, make_rng, seed_sequence


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed("fig12", 3) == derive_seed("fig12", 3)

    def test_distinct_labels(self):
        assert derive_seed("fig12", 3) != derive_seed("fig13", 3)

    def test_distinct_runs(self):
        assert derive_seed("fig12", 3) != derive_seed("fig12", 4)

    def test_positive_63_bit(self):
        seed = derive_seed("anything", 0, "really")
        assert 0 <= seed < 2 ** 63

    def test_order_matters(self):
        assert derive_seed(1, 2) != derive_seed(2, 1)


class TestStreams:
    def test_make_rng_independent(self):
        a = make_rng(1)
        b = make_rng(1)
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_seed_sequence_length_and_uniqueness(self):
        seeds = list(seed_sequence(42, 50))
        assert len(seeds) == 50
        assert len(set(seeds)) == 50

    def test_seed_sequence_deterministic(self):
        assert list(seed_sequence(42, 5)) == list(seed_sequence(42, 5))
