"""Tests for deployment generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.errors import DeploymentError
from repro.geometry import Point
from repro.network import (clustered_deployment, grid_deployment,
                           poisson_deployment, uniform_deployment)
from repro.network import testbed_deployment as make_testbed_network


class TestUniform:
    def test_count_and_bounds(self):
        network = uniform_deployment(count=50, seed=1,
                                     field_side_m=200.0)
        assert len(network) == 50
        for sensor in network:
            assert 0.0 <= sensor.location.x <= 200.0
            assert 0.0 <= sensor.location.y <= 200.0

    def test_deterministic(self):
        a = uniform_deployment(count=20, seed=7)
        b = uniform_deployment(count=20, seed=7)
        assert a.locations == b.locations

    def test_different_seeds_differ(self):
        a = uniform_deployment(count=20, seed=7)
        b = uniform_deployment(count=20, seed=8)
        assert a.locations != b.locations

    def test_zero_count(self):
        assert len(uniform_deployment(count=0, seed=1)) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(DeploymentError):
            uniform_deployment(count=-1, seed=1)

    def test_requirement_propagated(self):
        network = uniform_deployment(count=3, seed=1, required_j=7.0)
        assert all(s.required_j == 7.0 for s in network)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=60),
           st.integers(min_value=0, max_value=2**31))
    def test_indices_are_consecutive(self, count, seed):
        network = uniform_deployment(count=count, seed=seed)
        assert [s.index for s in network] == list(range(count))


class TestClustered:
    def test_count(self):
        network = clustered_deployment(count=60, seed=3, clusters=4)
        assert len(network) == 60

    def test_clamped_to_field(self):
        network = clustered_deployment(count=200, seed=3, clusters=2,
                                       spread_m=500.0,
                                       field_side_m=100.0)
        for sensor in network:
            assert 0.0 <= sensor.location.x <= 100.0
            assert 0.0 <= sensor.location.y <= 100.0

    def test_clustering_is_tighter_than_uniform(self):
        # Mean nearest-neighbour distance should be clearly smaller for
        # clustered deployments at equal density.
        def mean_nn(network):
            total = 0.0
            for s in network:
                total += min(s.location.distance_to(t.location)
                             for t in network if t.index != s.index)
            return total / len(network)

        clustered = clustered_deployment(count=80, seed=5, clusters=4,
                                         spread_m=30.0)
        uniform = uniform_deployment(count=80, seed=5)
        assert mean_nn(clustered) < 0.5 * mean_nn(uniform)

    def test_invalid_clusters_rejected(self):
        with pytest.raises(DeploymentError):
            clustered_deployment(count=10, seed=1, clusters=0)


class TestGrid:
    def test_rows_times_cols(self):
        network = grid_deployment(rows=4, cols=5)
        assert len(network) == 20

    def test_no_jitter_is_regular(self):
        network = grid_deployment(rows=2, cols=2, field_side_m=300.0)
        xs = sorted({s.location.x for s in network})
        assert xs == [100.0, 200.0]

    def test_jitter_moves_points(self):
        plain = grid_deployment(rows=3, cols=3, jitter_m=0.0)
        jittered = grid_deployment(rows=3, cols=3, jitter_m=5.0, seed=1)
        assert plain.locations != jittered.locations

    def test_invalid_dims_rejected(self):
        with pytest.raises(DeploymentError):
            grid_deployment(rows=0, cols=3)


class TestPoisson:
    def test_zero_intensity(self):
        assert len(poisson_deployment(0.0, seed=1)) == 0

    def test_mean_scales_with_intensity(self):
        counts = [len(poisson_deployment(100.0, seed=s))
                  for s in range(30)]
        mean = sum(counts) / len(counts)
        assert 70.0 < mean < 130.0  # ~Poisson(100)

    def test_negative_intensity_rejected(self):
        with pytest.raises(DeploymentError):
            poisson_deployment(-1.0, seed=1)

    def test_huge_intensity_uses_normal_approx(self):
        network = poisson_deployment(1200.0, seed=2)
        assert 1000 < len(network) < 1400


class TestTestbed:
    def test_paper_coordinates(self):
        network = make_testbed_network()
        assert len(network) == 6
        assert network.locations[0] == Point(1.0, 1.0)
        assert network.field_side_m == constants.TESTBED_SIDE_M
        assert all(s.required_j == constants.TESTBED_DELTA_J
                   for s in network)
