"""Tests for repro.network.sensor."""

import pytest

from repro.errors import ModelError
from repro.geometry import Point
from repro.network import Sensor


class TestSensor:
    def test_defaults(self):
        sensor = Sensor(index=0, location=Point(1, 2))
        assert sensor.required_j == 2.0
        assert sensor.harvested_j == 0.0
        assert not sensor.is_satisfied

    def test_harvest_accumulates(self):
        sensor = Sensor(index=0, location=Point(0, 0), required_j=2.0)
        sensor.harvest(1.5)
        sensor.harvest(0.4)
        assert sensor.harvested_j == pytest.approx(1.9)
        assert not sensor.is_satisfied
        sensor.harvest(0.1)
        assert sensor.is_satisfied

    def test_deficit(self):
        sensor = Sensor(index=0, location=Point(0, 0), required_j=2.0)
        sensor.harvest(0.5)
        assert sensor.deficit_j == pytest.approx(1.5)
        sensor.harvest(5.0)
        assert sensor.deficit_j == 0.0

    def test_reset(self):
        sensor = Sensor(index=0, location=Point(0, 0))
        sensor.harvest(3.0)
        sensor.reset()
        assert sensor.harvested_j == 0.0

    def test_negative_harvest_rejected(self):
        sensor = Sensor(index=0, location=Point(0, 0))
        with pytest.raises(ModelError):
            sensor.harvest(-0.1)

    def test_invalid_index_rejected(self):
        with pytest.raises(ModelError):
            Sensor(index=-1, location=Point(0, 0))

    def test_invalid_requirement_rejected(self):
        with pytest.raises(ModelError):
            Sensor(index=0, location=Point(0, 0), required_j=-1.0)

    def test_satisfaction_tolerance(self):
        sensor = Sensor(index=0, location=Point(0, 0), required_j=2.0)
        sensor.harvest(2.0 - 1e-13)
        assert sensor.is_satisfied  # within numerical tolerance
