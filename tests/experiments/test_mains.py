"""Smoke tests for every experiment module's ``main`` entry point."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentConfig

#: Micro scale: main() must print tables without blowing the test
#: budget.  extLifetime and fig14 are the heavy ones; keep n tiny.
MICRO = ExperimentConfig(runs=1, node_count=25, node_counts=(25,),
                         radii=(15.0, 30.0), default_radius=20.0)

#: Modules cheap enough to exercise here (the rest share the exact same
#: main() shape and are covered by run_experiment tests).
FAST_IDS = ["fig06", "fig10", "fig16", "extDwell", "extFleet"]


@pytest.mark.parametrize("experiment_id", FAST_IDS)
def test_main_prints_tables(experiment_id, capsys):
    module = EXPERIMENTS[experiment_id]
    tables = module.main(MICRO)
    out = capsys.readouterr().out
    assert tables
    for table in tables:
        title_head = table.title.split(" — ")[0][:30]
        assert title_head in out


def test_every_module_has_main_and_run():
    for experiment_id, module in EXPERIMENTS.items():
        assert callable(getattr(module, "run", None)), experiment_id
        assert callable(getattr(module, "main", None)), experiment_id


def test_fig10_main_renders_ascii(capsys):
    EXPERIMENTS["fig10"].main(MICRO)
    out = capsys.readouterr().out
    assert "BC-OPT tour, bundle radius" in out
    assert "D" in out  # the depot marker of the ASCII canvas
