"""Tests for the significance helpers (validated against SciPy)."""

import random

import pytest

from repro.errors import ExperimentError
from repro.experiments.stats import (paired_t_test, student_t_sf,
                                     welch_t_test)

scipy_stats = pytest.importorskip("scipy.stats")


class TestStudentTSf:
    @pytest.mark.parametrize("t,df", [(0.0, 5.0), (1.0, 3.0),
                                      (2.5, 10.0), (-1.7, 7.0),
                                      (4.0, 30.0), (0.3, 1.0)])
    def test_matches_scipy(self, t, df):
        ours = student_t_sf(t, df)
        reference = scipy_stats.t.sf(t, df)
        assert ours == pytest.approx(reference, abs=1e-9)

    def test_invalid_df(self):
        with pytest.raises(ExperimentError):
            student_t_sf(1.0, 0.0)


class TestWelch:
    def test_matches_scipy_on_random_samples(self):
        rng = random.Random(3)
        a = [rng.gauss(10.0, 2.0) for _ in range(12)]
        b = [rng.gauss(11.0, 3.0) for _ in range(15)]
        ours = welch_t_test(a, b)
        reference = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(reference.statistic,
                                               rel=1e-9)
        assert ours.p_value == pytest.approx(reference.pvalue,
                                             abs=1e-9)

    def test_clearly_different_samples_significant(self):
        a = [1.0, 1.1, 0.9, 1.05, 0.95]
        b = [5.0, 5.2, 4.9, 5.1, 4.8]
        result = welch_t_test(a, b)
        assert result.significant(alpha=0.001)

    def test_identical_distributions_not_significant(self):
        rng = random.Random(7)
        a = [rng.gauss(0.0, 1.0) for _ in range(10)]
        b = [rng.gauss(0.0, 1.0) for _ in range(10)]
        result = welch_t_test(a, b)
        assert result.p_value > 0.001  # almost surely

    def test_equal_constant_samples(self):
        result = welch_t_test([2.0, 2.0], [2.0, 2.0])
        assert result.p_value == 1.0

    def test_too_small_samples_rejected(self):
        with pytest.raises(ExperimentError):
            welch_t_test([1.0], [2.0, 3.0])


class TestPaired:
    def test_matches_scipy(self):
        rng = random.Random(5)
        a = [rng.gauss(10.0, 2.0) for _ in range(10)]
        b = [x + rng.gauss(0.5, 0.3) for x in a]
        ours = paired_t_test(a, b)
        reference = scipy_stats.ttest_rel(a, b)
        assert ours.statistic == pytest.approx(reference.statistic,
                                               rel=1e-9)
        assert ours.p_value == pytest.approx(reference.pvalue,
                                             abs=1e-9)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ExperimentError):
            paired_t_test([1.0, 2.0], [1.0])

    def test_paired_beats_unpaired_on_correlated_data(self):
        # The classic motivation: big per-seed variance, small paired
        # difference -> paired test detects it, Welch may not.
        rng = random.Random(11)
        a = [rng.gauss(100.0, 30.0) for _ in range(10)]
        b = [x - 1.0 + rng.gauss(0.0, 0.2) for x in a]
        paired = paired_t_test(a, b)
        unpaired = welch_t_test(a, b)
        assert paired.p_value < unpaired.p_value
        assert paired.significant()

    def test_real_planner_comparison(self, paper_cost):
        # BC-OPT vs BC on the same deployments must be significantly
        # cheaper over a handful of seeds.
        from repro.network import uniform_deployment
        from repro.planners import make_planner
        from repro.tour import evaluate_plan
        bc_totals = []
        opt_totals = []
        for seed in range(5):
            network = uniform_deployment(count=60, seed=seed)
            for name, bucket in (("BC", bc_totals),
                                 ("BC-OPT", opt_totals)):
                plan = make_planner(name, 30.0).plan(network,
                                                     paper_cost)
                bucket.append(evaluate_plan(
                    plan, network.locations, paper_cost).total_j)
        result = paired_t_test(bc_totals, opt_totals)
        assert result.statistic > 0.0  # BC costs more
        assert result.significant(alpha=0.01)
