"""Tests for experiment aggregation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.experiments import CellStats, aggregate_rows, mean_std
from repro.experiments.aggregate import ratio

values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=30)


class TestMeanStd:
    def test_single_value(self):
        stats = mean_std([5.0])
        assert stats.mean == 5.0
        assert stats.std == 0.0
        assert stats.count == 1

    def test_known_values(self):
        stats = mean_std([2.0, 4.0, 6.0])
        assert stats.mean == pytest.approx(4.0)
        assert stats.std == pytest.approx(2.0)  # sample std

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            mean_std([])

    @given(values)
    def test_mean_within_bounds(self, xs):
        stats = mean_std(xs)
        assert min(xs) - 1e-9 <= stats.mean <= max(xs) + 1e-9
        assert stats.std >= 0.0

    def test_str_formats(self):
        assert "±" in str(mean_std([1.0, 2.0]))
        assert "±" not in str(mean_std([1.0]))


class TestAggregateRows:
    def test_keyed_aggregation(self):
        rows = [{"a": 1.0, "b": 10.0}, {"a": 3.0, "b": 30.0}]
        agg = aggregate_rows(rows)
        assert agg["a"].mean == pytest.approx(2.0)
        assert agg["b"].mean == pytest.approx(20.0)
        assert agg["a"].count == 2

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ExperimentError):
            aggregate_rows([{"a": 1.0}, {"b": 2.0}])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            aggregate_rows([])


class TestRatio:
    def test_simple(self):
        assert ratio(CellStats(10.0, 0, 1),
                     CellStats(5.0, 0, 1)) == pytest.approx(2.0)

    def test_zero_denominator(self):
        assert math.isinf(ratio(CellStats(1.0, 0, 1),
                                CellStats(0.0, 0, 1)))
        assert ratio(CellStats(0.0, 0, 1),
                     CellStats(0.0, 0, 1)) == 1.0
