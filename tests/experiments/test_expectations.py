"""Tests for the reproduction-verdict harness.

The checkers are tested directly on hand-built tables (fast, and lets
us verify they *fail* on counterfeit data, which a live run never
exercises).
"""

import pytest

from repro.experiments import EXPECTATIONS, Finding, render_findings
from repro.experiments.aggregate import CellStats
from repro.experiments.expectations import _check_fig12, _check_fig16
from repro.experiments.tables import ResultTable


def _cell(value: float) -> CellStats:
    return CellStats(value, 0.0, 1)


def _fig12_tables(sc_flat=True, opt_beats_bc=True):
    columns = ["radius_m", "SC", "CSS", "BC", "BC-OPT"]
    energy = ResultTable("Fig. 12(a)", columns)
    tour = ResultTable("Fig. 12(b)", columns)
    charge = ResultTable("Fig. 12(c)", columns)
    for i, radius in enumerate((10.0, 40.0)):
        sc_energy = 50.0 if sc_flat else 50.0 + 20.0 * i
        opt_energy = 45.0 - i if opt_beats_bc else 49.0 + i
        energy.add_row(radius_m=radius, SC=_cell(sc_energy),
                       CSS=_cell(48.0), BC=_cell(48.0 - i),
                       **{"BC-OPT": _cell(opt_energy)})
        tour.add_row(radius_m=radius, SC=_cell(8.0), CSS=_cell(7.0),
                     BC=_cell(7.5), **{"BC-OPT": _cell(6.5)})
        charge.add_row(radius_m=radius, SC=_cell(3333.0),
                       CSS=_cell(5000.0 + 1000.0 * i),
                       BC=_cell(3300.0), **{"BC-OPT": _cell(5000.0)})
    return [energy, tour, charge]


class TestCheckers:
    def test_fig12_passes_on_good_data(self):
        findings = _check_fig12(_fig12_tables())
        assert all(f.passed for f in findings)

    def test_fig12_detects_non_flat_sc(self):
        findings = _check_fig12(_fig12_tables(sc_flat=False))
        flat = [f for f in findings if "radius-independent" in f.claim]
        assert not flat[0].passed

    def test_fig12_detects_bcopt_regression(self):
        findings = _check_fig12(_fig12_tables(opt_beats_bc=False))
        beats = [f for f in findings if "beats BC" in f.claim]
        assert not beats[0].passed

    def test_fig16_checks(self):
        energy = ResultTable(
            "Fig. 16(a)", ["radius_m", "SC", "BC", "BC-OPT",
                           "bc_saving_pct", "bcopt_saving_pct"])
        tour = ResultTable("Fig. 16(b)",
                           ["radius_m", "SC", "BC", "BC-OPT"])
        for radius, bc_save, opt_save in ((0.2, 0.0, 2.0),
                                          (1.2, 5.0, 20.0)):
            energy.add_row(radius_m=radius, SC=_cell(80.0),
                           BC=_cell(80.0 * (1 - bc_save / 100)),
                           **{"BC-OPT": _cell(
                               80.0 * (1 - opt_save / 100)),
                              "bc_saving_pct": _cell(bc_save),
                              "bcopt_saving_pct": _cell(opt_save)})
            tour.add_row(radius_m=radius, SC=_cell(14.0),
                         BC=_cell(13.0), **{"BC-OPT": _cell(9.0)})
        findings = _check_fig16([energy, tour])
        assert all(f.passed for f in findings)

    def test_registry_covers_every_paper_figure(self):
        assert set(EXPECTATIONS) == {"fig06", "fig10", "fig11",
                                     "fig12", "fig13", "fig14",
                                     "fig16"}


class TestRendering:
    def test_render_findings(self):
        findings = [Finding("fig06", "a claim", True),
                    Finding("fig12", "another claim", False)]
        text = render_findings(findings)
        assert "[PASS] fig06" in text
        assert "[FAIL] fig12" in text
        assert "1/2 expectations hold" in text


class TestCliCheck:
    def test_check_flag_parses(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["check", "--fast"])
        assert args.experiment == "check"
