"""Tests for experiment config and the multi-seed runner."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentConfig, run_averaged
from repro.experiments.runner import kilo, run_algorithms_once
from repro.network import uniform_deployment


class TestConfig:
    def test_defaults(self):
        config = ExperimentConfig.default()
        assert config.runs == 10
        assert config.node_count == 100

    def test_paper_scale(self):
        assert ExperimentConfig.paper().runs == 100

    def test_fast_scale_smaller(self):
        fast = ExperimentConfig.fast()
        default = ExperimentConfig.default()
        assert fast.runs < default.runs
        assert fast.node_count < default.node_count

    def test_with_runs(self):
        assert ExperimentConfig.default().with_runs(3).runs == 3

    def test_invalid_values_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(runs=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(node_count=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(radii=())

    def test_cost_factory_fresh_instances(self):
        config = ExperimentConfig.default()
        assert config.cost() is not config.cost()


class TestRunner:
    def test_run_once_returns_all_algorithms(self, paper_cost):
        network = uniform_deployment(count=20, seed=1,
                                     field_side_m=400.0)
        results = run_algorithms_once(network, paper_cost, 30.0,
                                      ["SC", "BC"])
        assert set(results) == {"SC", "BC"}
        assert results["SC"]["total_j"] > 0.0

    def test_run_averaged_aggregates_seeds(self):
        config = ExperimentConfig(runs=3, node_count=20,
                                  node_counts=(20,), radii=(30.0,))
        aggregated = run_averaged(config, 20, 30.0, ["SC"], "unit-test")
        assert aggregated["SC"]["total_j"].count == 3
        assert aggregated["SC"]["total_j"].std >= 0.0

    def test_run_averaged_deterministic(self):
        config = ExperimentConfig(runs=2, node_count=15,
                                  node_counts=(15,), radii=(25.0,))
        a = run_averaged(config, 15, 25.0, ["BC"], "det-test")
        b = run_averaged(config, 15, 25.0, ["BC"], "det-test")
        assert a["BC"]["total_j"].mean == b["BC"]["total_j"].mean

    def test_experiment_label_isolates_seeds(self):
        config = ExperimentConfig(runs=2, node_count=15,
                                  node_counts=(15,), radii=(25.0,))
        a = run_averaged(config, 15, 25.0, ["SC"], "label-one")
        b = run_averaged(config, 15, 25.0, ["SC"], "label-two")
        assert a["SC"]["total_j"].mean != b["SC"]["total_j"].mean

    def test_kilo_rescales(self):
        from repro.experiments.aggregate import CellStats
        cell = kilo(CellStats(5000.0, 1000.0, 4))
        assert cell.mean == 5.0
        assert cell.std == 1.0
        assert cell.count == 4


class TestRunnerHelpers:
    def test_metric_series_extracts_aligned_cells(self):
        from repro.experiments.aggregate import CellStats
        from repro.experiments.runner import metric_series
        sweep = [
            {"SC": {"total_j": CellStats(10.0, 0, 1)}},
            {"SC": {"total_j": CellStats(20.0, 0, 1)}},
        ]
        series = metric_series(sweep, "SC", "total_j")
        assert [cell.mean for cell in series] == [10.0, 20.0]

    def test_pick_returns_requested_order(self):
        from repro.experiments.aggregate import CellStats
        from repro.experiments.runner import pick
        row = {"a": CellStats(1.0, 0, 1), "b": CellStats(2.0, 0, 1)}
        cells = pick(row, "b", "a")
        assert [cell.mean for cell in cells] == [2.0, 1.0]


class TestParallelRunner:
    def test_jobs_validated(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(jobs=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(jobs=-2)

    def test_parallel_matches_serial_exactly(self):
        from dataclasses import replace
        config = ExperimentConfig(runs=3, node_count=30,
                                  node_counts=(30,), radii=(15.0,))
        serial = run_averaged(config, 30, 15.0, ["BC", "SC"], "partest")
        parallel = run_averaged(replace(config, jobs=2), 30, 15.0,
                                ["BC", "SC"], "partest")
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert serial[name].keys() == parallel[name].keys()
            for metric in serial[name]:
                s = serial[name][metric]
                p = parallel[name][metric]
                assert (s.mean, s.std, s.count) == (p.mean, p.std, p.count)

    def test_jobs_capped_by_runs(self):
        # jobs > runs must not break anything (the pool is shrunk).
        from dataclasses import replace
        config = replace(ExperimentConfig(runs=2, node_count=20,
                                          node_counts=(20,), radii=(15.0,)),
                         jobs=8)
        result = run_averaged(config, 20, 15.0, ["SC"], "captest")
        assert result["SC"]["total_j"].count == 2


class TestWorkerTelemetry:
    """Workers return perf snapshots; the parent merges them back."""

    def _snapshot_for(self, jobs):
        from dataclasses import replace
        from repro.perf.counters import PERF
        config = ExperimentConfig(runs=3, node_count=30,
                                  node_counts=(30,), radii=(15.0,),
                                  jobs=1)
        PERF.reset()
        try:
            run_averaged(replace(config, jobs=jobs), 30, 15.0,
                         ["BC", "SC"], "perf-parity")
            return PERF.snapshot()
        finally:
            PERF.reset()

    def test_parallel_and_serial_report_identical_op_counts(self):
        serial = self._snapshot_for(jobs=1)
        parallel = self._snapshot_for(jobs=2)
        # The planners' kernels must have actually counted something,
        # or this test would vacuously compare empty dicts.
        assert serial["counters"]
        assert serial["counters"] == parallel["counters"]
        # Timer *totals* are wall time and legitimately differ; the
        # call counts must match exactly.
        assert {name: stats["calls"]
                for name, stats in serial["timers"].items()} == \
            {name: stats["calls"]
             for name, stats in parallel["timers"].items()}

    def test_parallel_traced_run_nests_worker_spans(self):
        from dataclasses import replace
        from repro.obs.tracer import TRACER
        config = ExperimentConfig(runs=2, node_count=20,
                                  node_counts=(20,), radii=(15.0,),
                                  jobs=2)
        TRACER.enabled = True
        TRACER.reset()
        try:
            run_averaged(config, 20, 15.0, ["SC"], "trace-parity")
            events = TRACER.export_events()
        finally:
            TRACER.enabled = False
            TRACER.reset()
        spans = {}
        for event in events:
            if event.get("type") == "span":
                spans.setdefault(event["name"], []).append(event)
        assert len(spans["run"]) == 1
        assert len(spans["seed"]) == config.runs
        run_id = spans["run"][0]["span_id"]
        # Worker seed spans are re-parented under the parent run span
        # and come back in run-index order.
        assert all(seed["parent_id"] == run_id
                   for seed in spans["seed"])
        assert [seed["attrs"]["run_index"]
                for seed in spans["seed"]] == list(range(config.runs))
