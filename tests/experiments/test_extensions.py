"""Smoke + shape tests for the extension experiments."""

import pytest

from repro.experiments import ExperimentConfig, run_experiment

TINY = ExperimentConfig(runs=1, node_count=40, node_counts=(40,),
                        radii=(20.0,), default_radius=25.0)


class TestExtDwell:
    #: The accounting contrast needs some density to rise above TSP
    #: noise; 80 nodes x 2 seeds is the cheapest clear configuration.
    DENSER = ExperimentConfig(runs=2, node_count=80, node_counts=(80,),
                              radii=(20.0,), default_radius=25.0)

    @pytest.fixture(scope="class")
    def tables(self):
        return run_experiment("extDwell", self.DENSER)

    def test_single_table_both_columns(self, tables):
        (table,) = tables
        assert "simultaneous" in table.columns
        assert "sequential" in table.columns

    def test_sequential_u_shape(self, tables):
        (table,) = tables
        seq = table.mean_of("sequential")
        interior = min(seq[1:-1])
        # Interior minimum at or below the small-radius endpoint (up to
        # seed noise) and far below the large-radius blow-up.
        assert interior <= seq[0] + 1.0
        assert interior < 0.6 * seq[-1]

    def test_simultaneous_stays_flat_or_improves(self, tables):
        (table,) = tables
        sim = table.mean_of("simultaneous")
        # No blow-up under the paper's stated accounting: the largest
        # radius is at least as good as the smallest.
        assert sim[-1] <= sim[0] + 1.0

    def test_policies_agree_when_bundles_are_singletons(self, tables):
        (table,) = tables
        seq = table.mean_of("sequential")
        sim = table.mean_of("simultaneous")
        # At r = 2 m nothing merges, so the accountings coincide.
        assert seq[0] == pytest.approx(sim[0], rel=1e-9)


class TestExtDeploy:
    @pytest.fixture(scope="class")
    def tables(self):
        return run_experiment("extDeploy", TINY)

    def test_three_deployments(self, tables):
        (table,) = tables
        assert table.column("deployment") == ["uniform", "clustered",
                                              "lattice"]

    def test_clustered_saves_most(self, tables):
        (table,) = tables
        savings = dict(zip(table.column("deployment"),
                           table.mean_of("saving_pct")))
        assert savings["clustered"] > savings["uniform"]

    def test_savings_non_negative(self, tables):
        (table,) = tables
        for saving in table.mean_of("saving_pct"):
            assert saving >= -1.0  # BC-OPT ~ never worse than SC


class TestExtFleet:
    @pytest.fixture(scope="class")
    def tables(self):
        return run_experiment("extFleet", TINY)

    def test_makespan_non_increasing(self, tables):
        (table,) = tables
        makespans = table.mean_of("makespan_h")
        for previous, current in zip(makespans, makespans[1:]):
            assert current <= previous + 1e-9

    def test_speedup_bounded_by_k(self, tables):
        (table,) = tables
        for k, speedup in zip(table.mean_of("chargers"),
                              table.mean_of("speedup")):
            assert 1.0 - 1e-9 <= speedup <= k + 1e-6

    def test_energy_overhead_grows(self, tables):
        (table,) = tables
        overheads = table.mean_of("overhead_pct")
        assert overheads[0] == pytest.approx(0.0, abs=1e-6)
        assert overheads[-1] >= overheads[0]


class TestExtLifetime:
    @pytest.fixture(scope="class")
    def tables(self):
        return run_experiment("extLifetime", TINY)

    def test_all_planners_reported(self, tables):
        (table,) = tables
        assert table.column("planner") == ["SC", "CSS", "BC", "BC-OPT"]

    def test_rounds_and_energy_positive(self, tables):
        (table,) = tables
        for rounds in table.mean_of("rounds"):
            assert rounds >= 1.0
        for energy in table.mean_of("energy_per_day_kj"):
            assert energy > 0.0

    def test_availability_high(self, tables):
        (table,) = tables
        for availability in table.mean_of("availability_pct"):
            assert availability > 95.0


class TestExtLatency:
    @pytest.fixture(scope="class")
    def tables(self):
        return run_experiment("extLatency", TINY)

    def test_all_planners_reported(self, tables):
        (table,) = tables
        assert table.column("planner") == ["SC", "CSS", "BC", "BC-OPT"]

    def test_latencies_positive_and_ordered(self, tables):
        (table,) = tables
        for mean_latency, max_latency in zip(
                table.mean_of("mean_latency_h"),
                table.mean_of("max_latency_h")):
            assert 0.0 < mean_latency <= max_latency

    def test_reordering_never_hurts_latency(self, tables):
        (table,) = tables
        for gain in table.mean_of("latency_gain_pct"):
            assert gain >= -1e-6


class TestExtRobust:
    @pytest.fixture(scope="class")
    def tables(self):
        return run_experiment("extRobust", TINY)

    def test_all_planners_reported(self, tables):
        (table,) = tables
        assert table.column("planner") == ["SC", "CSS", "BC", "BC-OPT"]

    def test_margins_in_unit_interval(self, tables):
        (table,) = tables
        for margin in table.mean_of("break_even_scale"):
            assert 0.0 < margin <= 1.0

    def test_headroom_consistent_with_margin(self, tables):
        (table,) = tables
        for margin, headroom in zip(table.mean_of("break_even_scale"),
                                    table.mean_of("headroom_pct")):
            assert headroom == pytest.approx(100.0 * (1.0 - margin),
                                             abs=1e-6)

    def test_incidental_positive(self, tables):
        (table,) = tables
        for incidental in table.mean_of("incidental_pct"):
            assert incidental > 0.0


class TestExtConcur:
    @pytest.fixture(scope="class")
    def tables(self):
        return run_experiment("extConcur", TINY)

    def test_speedup_decreases_with_interference_reach(self, tables):
        (table,) = tables
        speedups = table.mean_of("speedup")
        assert speedups == sorted(speedups, reverse=True)

    def test_rounds_increase_with_interference_reach(self, tables):
        (table,) = tables
        rounds = table.mean_of("rounds")
        assert rounds == sorted(rounds)

    def test_cap_never_beats_uncapped(self, tables):
        (table,) = tables
        capped = table.mean_of("speedup_cap8")
        free = table.mean_of("speedup")
        for c, f in zip(capped, free):
            assert c <= f + 1e-9
