"""Smoke + shape tests for every paper-figure experiment.

Each experiment runs at reduced scale; assertions target the *shapes*
the paper reports (orderings, monotonicity, U-curves), not magnitudes.
"""

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments import (EXPERIMENTS, ExperimentConfig,
                               experiment_ids, run_experiment)

#: Tiny-but-meaningful scale for shape checks.
TINY = ExperimentConfig(runs=2, node_count=60,
                        node_counts=(40, 80),
                        radii=(10.0, 25.0, 40.0),
                        default_radius=25.0)


@pytest.fixture(scope="module")
def fig06_tables():
    return run_experiment("fig06", TINY)


@pytest.fixture(scope="module")
def fig11_tables():
    return run_experiment("fig11", TINY)


@pytest.fixture(scope="module")
def fig12_tables():
    return run_experiment("fig12", TINY)


@pytest.fixture(scope="module")
def fig13_tables():
    return run_experiment("fig13", TINY)


class TestRegistry:
    def test_all_figures_present(self):
        ids = experiment_ids()
        assert ids[:7] == ["fig06", "fig10", "fig11", "fig12", "fig13",
                           "fig14", "fig16"]
        assert set(ids[7:]) == {"extDwell", "extDeploy", "extFleet",
                                "extLifetime", "extLatency",
                                "extRobust", "extConcur"}

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", TINY)

    def test_modules_expose_run(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "run")
            assert hasattr(module, "main")


class TestFig06Shapes:
    def test_two_tables(self, fig06_tables):
        assert len(fig06_tables) == 2

    def test_tour_length_decreases_with_radius(self, fig06_tables):
        lengths = fig06_tables[0].mean_of("tour_length_km")
        assert lengths[0] > lengths[-1]

    def test_charging_time_increases_with_radius(self, fig06_tables):
        times = fig06_tables[0].mean_of("charging_time_ks")
        assert times[-1] > times[0]

    def test_bundle_count_decreases(self, fig06_tables):
        bundles = fig06_tables[0].mean_of("bundles")
        assert bundles == sorted(bundles, reverse=True)

    def test_total_is_movement_plus_charging(self, fig06_tables):
        table_b = fig06_tables[1]
        for row in table_b.rows:
            total = row["total_kj"].mean
            parts = row["movement_kj"].mean + row["charging_kj"].mean
            assert total == pytest.approx(parts, rel=1e-9)


class TestFig10:
    def test_bundles_shrink_with_radius(self):
        tables = run_experiment("fig10", TINY)
        table = tables[0]
        bundles = table.mean_of("bundles")
        assert bundles == sorted(bundles, reverse=True)

    def test_bcopt_no_worse_than_bc(self):
        tables = run_experiment("fig10", TINY)
        table = tables[0]
        for bc, opt in zip(table.mean_of("bc_total_kj"),
                           table.mean_of("bcopt_total_kj")):
            assert opt <= bc + 1e-6


class TestFig11Shapes:
    def test_two_tables(self, fig11_tables):
        assert len(fig11_tables) == 2

    def test_greedy_never_more_than_grid(self, fig11_tables):
        for table in fig11_tables:
            for grid, greedy in zip(table.mean_of("grid"),
                                    table.mean_of("greedy")):
                assert greedy <= grid + 1e-9

    def test_optimal_never_more_than_greedy(self, fig11_tables):
        for table in fig11_tables:
            for greedy, optimal in zip(table.mean_of("greedy"),
                                       table.mean_of("optimal")):
                if math.isnan(optimal):
                    continue  # exact search hit its budget
                assert optimal <= greedy + 1e-9

    def test_counts_decrease_with_radius(self, fig11_tables):
        greedy = fig11_tables[0].mean_of("greedy")
        assert greedy == sorted(greedy, reverse=True)

    def test_counts_increase_with_nodes(self, fig11_tables):
        greedy = fig11_tables[1].mean_of("greedy")
        assert greedy == sorted(greedy)


class TestFig12Shapes:
    def test_three_tables(self, fig12_tables):
        assert len(fig12_tables) == 3

    def test_sc_flat_across_radii(self, fig12_tables):
        sc = fig12_tables[0].mean_of("SC")
        assert max(sc) - min(sc) < 0.05 * max(sc)

    def test_bcopt_beats_bc_everywhere(self, fig12_tables):
        bc = fig12_tables[0].mean_of("BC")
        opt = fig12_tables[0].mean_of("BC-OPT")
        for b, o in zip(bc, opt):
            assert o <= b + 1e-6

    def test_bcopt_beats_sc_at_large_radius(self, fig12_tables):
        sc = fig12_tables[0].mean_of("SC")
        opt = fig12_tables[0].mean_of("BC-OPT")
        assert opt[-1] < sc[-1]

    def test_tour_lengths_shorter_than_sc(self, fig12_tables):
        table_b = fig12_tables[1]
        sc = table_b.mean_of("SC")
        for name in ("CSS", "BC-OPT"):
            series = table_b.mean_of(name)
            assert series[-1] < sc[-1]

    def test_sc_charging_time_constant(self, fig12_tables):
        # SC always charges at d = 0, so its per-sensor time is flat.
        table_c = fig12_tables[2]
        sc = table_c.mean_of("SC")
        assert max(sc) - min(sc) < 1e-6

    def test_css_charging_time_above_sc_and_growing(self, fig12_tables):
        # CSS parks on range boundaries without optimizing the charging
        # position — its per-sensor time exceeds SC's and grows with the
        # radius (the paper's Fig. 12(c) observation).
        table_c = fig12_tables[2]
        sc = table_c.mean_of("SC")
        css = table_c.mean_of("CSS")
        for s, c in zip(sc, css):
            assert c >= s - 1e-9
        assert css[-1] > css[0]


class TestFig13Shapes:
    def test_three_tables(self, fig13_tables):
        assert len(fig13_tables) == 3

    def test_energy_grows_with_density(self, fig13_tables):
        for name in ("SC", "BC", "BC-OPT"):
            series = fig13_tables[0].mean_of(name)
            assert series[-1] > series[0]

    def test_bcopt_best_at_every_density(self, fig13_tables):
        table = fig13_tables[0]
        opt = table.mean_of("BC-OPT")
        for name in ("SC", "CSS", "BC"):
            other = table.mean_of(name)
            for o, x in zip(opt, other):
                assert o <= x + 1e-6

    def test_bc_gain_over_sc_grows_with_density(self, fig13_tables):
        table = fig13_tables[0]
        sc = table.mean_of("SC")
        bc = table.mean_of("BC")
        gain_sparse = 1.0 - bc[0] / sc[0]
        gain_dense = 1.0 - bc[-1] / sc[-1]
        assert gain_dense >= gain_sparse - 0.02


class TestFig14:
    def test_tables_and_gain_column(self):
        tables = run_experiment(
            "fig14", ExperimentConfig(runs=1, node_count=60,
                                      node_counts=(60,),
                                      radii=(10.0, 25.0, 40.0)))
        assert len(tables) == 2
        gains = tables[1].mean_of("bcopt_gain_pct")
        assert all(g >= -1e-6 for g in gains)
        assert "optimal radius" in tables[1].title


class TestFig16:
    def test_shapes(self):
        tables = run_experiment("fig16", TINY)
        assert len(tables) == 2
        table_a, table_b = tables
        # BC-OPT saving grows (weakly) with radius and is positive at
        # the paper's highlighted radius 1.2 m.
        radii = table_a.mean_of("radius_m")
        savings = table_a.mean_of("bcopt_saving_pct")
        highlighted = savings[radii.index(1.2)]
        assert highlighted > 5.0
        # Tour lengths: BC-OPT <= BC <= SC at every radius.
        for sc, bc, opt in zip(table_b.mean_of("SC"),
                               table_b.mean_of("BC"),
                               table_b.mean_of("BC-OPT")):
            assert opt <= bc + 1e-9
            assert bc <= sc + 1e-9
