"""Tests for the ResultTable renderer."""

import os

import pytest

from repro.errors import ExperimentError
from repro.experiments import ResultTable, render_tables
from repro.experiments.aggregate import CellStats


class TestResultTable:
    def _table(self):
        table = ResultTable("demo", ["x", "y"])
        table.add_row(x=1.0, y=CellStats(2.0, 0.5, 3))
        table.add_row(x=2.0, y=CellStats(4.0, 0.0, 1))
        return table

    def test_row_key_mismatch_rejected(self):
        table = ResultTable("demo", ["x", "y"])
        with pytest.raises(ExperimentError):
            table.add_row(x=1.0)
        with pytest.raises(ExperimentError):
            table.add_row(x=1.0, y=2.0, z=3.0)

    def test_empty_columns_rejected(self):
        with pytest.raises(ExperimentError):
            ResultTable("demo", [])

    def test_column_access(self):
        table = self._table()
        assert table.column("x") == [1.0, 2.0]
        with pytest.raises(ExperimentError):
            table.column("nope")

    def test_mean_of_unwraps_cellstats(self):
        table = self._table()
        assert table.mean_of("y") == [2.0, 4.0]

    def test_render_contains_everything(self):
        text = self._table().render()
        assert "demo" in text
        assert "x" in text and "y" in text
        assert "2±0.5" in text

    def test_render_empty_table(self):
        table = ResultTable("empty", ["only"])
        text = table.render()
        assert "only" in text

    def test_csv_roundtrip(self, tmp_path):
        table = self._table()
        path = os.path.join(tmp_path, "out.csv")
        table.to_csv(path)
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1.0,2.0"  # CellStats reduced to mean

    def test_render_tables_joins(self):
        text = render_tables([self._table(), self._table()])
        assert text.count("== demo ==") == 2
