"""Tests for the velocity-control substrate."""

import math

import pytest

from repro.errors import GeometryError, ModelError
from repro.geometry import Point
from repro.network import Sensor, SensorNetwork, uniform_deployment
from repro.velocity import (PolylinePath, drive_through_vs_stops,
                            harvest_along_path, max_feasible_speed)


class TestPolylinePath:
    def test_length(self):
        path = PolylinePath([Point(0, 0), Point(3, 4), Point(3, 0)])
        assert path.length == pytest.approx(9.0)

    def test_closed_adds_return_leg(self):
        path = PolylinePath([Point(0, 0), Point(3, 4), Point(3, 0)],
                            closed=True)
        assert path.length == pytest.approx(12.0)

    def test_point_at_interpolates(self):
        path = PolylinePath([Point(0, 0), Point(10, 0)])
        assert path.point_at(4.0).is_close(Point(4, 0))

    def test_point_at_clamps(self):
        path = PolylinePath([Point(0, 0), Point(10, 0)])
        assert path.point_at(-5.0) == Point(0, 0)
        assert path.point_at(99.0).is_close(Point(10, 0))

    def test_point_at_across_vertices(self):
        path = PolylinePath([Point(0, 0), Point(10, 0), Point(10, 10)])
        assert path.point_at(15.0).is_close(Point(10, 5))

    def test_single_waypoint(self):
        path = PolylinePath([Point(5, 5)])
        assert path.length == 0.0
        assert path.point_at(3.0) == Point(5, 5)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            PolylinePath([])

    def test_sample_includes_endpoints(self):
        path = PolylinePath([Point(0, 0), Point(10, 0)])
        samples = path.sample(3.0)
        assert samples[0] == Point(0, 0)
        assert samples[-1].is_close(Point(10, 0))

    def test_sample_invalid_step(self):
        with pytest.raises(GeometryError):
            PolylinePath([Point(0, 0)]).sample(0.0)


class TestHarvest:
    def _tiny(self):
        sensors = [Sensor(index=0, location=Point(5, 1),
                          required_j=2.0)]
        network = SensorNetwork(sensors, 100.0)
        path = PolylinePath([Point(0, 0), Point(10, 0)])
        return network, path

    def test_inverse_proportional_to_speed(self, paper_cost):
        network, path = self._tiny()
        slow = harvest_along_path(path, network, paper_cost, 0.5)
        fast = harvest_along_path(path, network, paper_cost, 2.0)
        assert slow[0] == pytest.approx(4.0 * fast[0], rel=1e-9)

    def test_invalid_inputs(self, paper_cost):
        network, path = self._tiny()
        with pytest.raises(ModelError):
            harvest_along_path(path, network, paper_cost, 0.0)
        with pytest.raises(ModelError):
            harvest_along_path(path, network, paper_cost, 1.0,
                               step_m=0.0)

    def test_closer_path_harvests_more(self, paper_cost):
        network, _ = self._tiny()
        near = PolylinePath([Point(0, 1), Point(10, 1)])
        far = PolylinePath([Point(0, 50), Point(10, 50)])
        h_near = harvest_along_path(near, network, paper_cost, 1.0)
        h_far = harvest_along_path(far, network, paper_cost, 1.0)
        assert h_near[0] > h_far[0]


class TestMaxFeasibleSpeed:
    def test_speed_fully_charges_everyone(self, paper_cost):
        network = uniform_deployment(count=10, seed=4,
                                     field_side_m=100.0)
        path = PolylinePath(network.locations, closed=True)
        v_max = max_feasible_speed(path, network, paper_cost)
        assert v_max > 0.0
        harvest = harvest_along_path(path, network, paper_cost, v_max)
        assert min(harvest.values()) == pytest.approx(
            paper_cost.delta_j, rel=1e-6)

    def test_faster_than_max_undercharges(self, paper_cost):
        network = uniform_deployment(count=10, seed=4,
                                     field_side_m=100.0)
        path = PolylinePath(network.locations, closed=True)
        v_max = max_feasible_speed(path, network, paper_cost)
        harvest = harvest_along_path(path, network, paper_cost,
                                     v_max * 2.0)
        assert min(harvest.values()) < paper_cost.delta_j

    def test_cutoff_model_can_make_it_infeasible(self):
        from repro.charging import CostParameters, \
            IdealDiskChargingModel
        cost = CostParameters(
            model=IdealDiskChargingModel(0.5, 5.0, 1.0), delta_j=1.0)
        sensors = [Sensor(index=0, location=Point(50, 50),
                          required_j=1.0)]
        network = SensorNetwork(sensors, 100.0)
        path = PolylinePath([Point(0, 0), Point(10, 0)])
        assert max_feasible_speed(path, network, cost) == 0.0

    def test_empty_network_unconstrained(self, paper_cost):
        network = SensorNetwork([], 100.0)
        path = PolylinePath([Point(0, 0), Point(10, 0)])
        assert math.isinf(max_feasible_speed(path, network, paper_cost))


class TestDriveThroughComparison:
    def test_comparison_fields_consistent(self, paper_cost):
        from repro.planners import BundleChargingPlanner
        network = uniform_deployment(count=20, seed=6,
                                     field_side_m=300.0)
        plan = BundleChargingPlanner(30.0).plan(network, paper_cost)
        comparison = drive_through_vs_stops(plan, network, paper_cost)
        assert comparison.drive_speed_m_per_s > 0.0
        assert comparison.drive_time_s > 0.0
        assert comparison.stop_energy_j > 0.0
        assert comparison.stop_advantage > 0.0

    def test_drive_strategy_is_actually_feasible(self, paper_cost):
        # The comparison's reported max speed must fully charge the
        # worst sensor when driven (the ref [2] constraint).
        from repro.planners import BundleChargingPlanner
        network = uniform_deployment(count=15, seed=9,
                                     field_side_m=300.0)
        plan = BundleChargingPlanner(30.0).plan(network, paper_cost)
        comparison = drive_through_vs_stops(plan, network, paper_cost)
        path = PolylinePath(plan.waypoints(), closed=True)
        harvest = harvest_along_path(path, network, paper_cost,
                                     comparison.drive_speed_m_per_s)
        assert min(harvest.values()) == pytest.approx(
            paper_cost.delta_j, rel=1e-6)
