"""Tests for the metrics engine (repro.obs.metrics).

Covers the histogram edge cases the ISSUE pins down — empty quantiles,
out-of-range clamping into the overflow bucket, cross-worker merges —
plus the zero-cost disabled contract and the Prometheus renderer.
"""

import math

import pytest

from repro.obs.metrics import (DEFAULT_LATENCY_BOUNDS, NULL_HISTOGRAM,
                               Histogram, MetricsRegistry,
                               bucket_quantile, render_prometheus,
                               summarize_histogram)


class TestHistogram:
    def test_empty_quantiles_are_none(self):
        histogram = Histogram((1.0, 2.0))
        assert histogram.quantile(0.5) is None
        assert histogram.quantile(0.0) is None
        assert histogram.quantile(1.0) is None

    def test_empty_snapshot_min_max_none(self):
        snapshot = Histogram((1.0, 2.0)).snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None
        assert snapshot["max"] is None

    def test_single_observation_all_quantiles_equal_it(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(1.5)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(1.5)

    def test_above_last_edge_lands_in_overflow_bucket(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.counts == [0, 0, 1]
        assert histogram.quantile(0.5) == pytest.approx(100.0)

    def test_below_first_edge_lands_in_first_bucket(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(-5.0)
        assert histogram.counts == [1, 0, 0]
        assert histogram.quantile(0.5) == pytest.approx(-5.0)

    def test_infinities_clamp_by_sign(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(float("inf"))
        histogram.observe(float("-inf"))
        assert histogram.counts == [1, 0, 1]

    def test_nan_is_dropped(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(float("nan"))
        assert histogram.count == 0

    def test_quantiles_clamped_to_observed_range(self):
        histogram = Histogram(DEFAULT_LATENCY_BOUNDS)
        for value in (0.003, 0.004, 0.006, 0.007):
            histogram.observe(value)
        assert histogram.quantile(0.0) == pytest.approx(0.003)
        assert histogram.quantile(1.0) == pytest.approx(0.007)
        p50 = histogram.quantile(0.5)
        assert 0.003 <= p50 <= 0.007

    def test_quantile_monotone_in_q(self):
        histogram = Histogram(DEFAULT_LATENCY_BOUNDS)
        for index in range(100):
            histogram.observe(0.0001 * (index + 1) * 7 % 0.5)
        previous = -math.inf
        for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            value = histogram.quantile(q)
            assert value >= previous
            previous = value

    def test_boundaries_must_be_increasing(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_merge_snapshot_sums_buckets_and_combines_extremes(self):
        left = Histogram((1.0, 2.0))
        right = Histogram((1.0, 2.0))
        left.observe(0.5)
        left.observe(1.5)
        right.observe(1.7)
        right.observe(9.0)
        left.merge_snapshot(right.snapshot())
        assert left.count == 4
        assert left.counts == [1, 2, 1]
        assert left.vmin == pytest.approx(0.5)
        assert left.vmax == pytest.approx(9.0)
        assert left.total == pytest.approx(0.5 + 1.5 + 1.7 + 9.0)

    def test_merge_rejects_mismatched_boundaries(self):
        left = Histogram((1.0, 2.0))
        right = Histogram((1.0, 3.0))
        right.observe(2.5)
        with pytest.raises(ValueError):
            left.merge_snapshot(right.snapshot())


class TestBucketQuantile:
    def test_empty_returns_none(self):
        assert bucket_quantile((1.0,), [0, 0], 0, math.inf,
                               -math.inf, 0.5) is None

    def test_extremes_return_min_max(self):
        assert bucket_quantile((1.0,), [2, 0], 2, 0.2, 0.8, 0.0) == 0.2
        assert bucket_quantile((1.0,), [2, 0], 2, 0.2, 0.8, 1.0) == 0.8


class TestSummarize:
    def test_summary_adds_percentiles_and_mean(self):
        histogram = Histogram(DEFAULT_LATENCY_BOUNDS)
        for value in (0.001, 0.002, 0.004, 0.008):
            histogram.observe(value)
        entry = dict(histogram.snapshot(), name="x", labels={})
        summary = summarize_histogram(entry)
        for key in ("p50", "p90", "p95", "p99", "mean"):
            assert isinstance(summary[key], float)
        assert summary["mean"] == pytest.approx(0.00375)

    def test_empty_summary_fields_are_none(self):
        entry = dict(Histogram((1.0,)).snapshot(), name="x", labels={})
        summary = summarize_histogram(entry)
        assert summary["p50"] is None
        assert summary["mean"] is None


class TestRegistry:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.set_gauge("b", 1.0)
        registry.observe("c", 0.1)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == []
        assert snapshot["gauges"] == []
        assert snapshot["histograms"] == []

    def test_disabled_histogram_handle_is_shared_noop(self):
        registry = MetricsRegistry(enabled=False)
        handle = registry.histogram("c")
        assert handle is NULL_HISTOGRAM
        assert not handle
        handle.observe(1.0)  # must not raise, must not record

    def test_null_histogram_has_no_instance_dict(self):
        assert not hasattr(NULL_HISTOGRAM, "__dict__")

    def test_labels_separate_series(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("req", planner="BC")
        registry.inc("req", planner="BC")
        registry.inc("req", planner="TSPN")
        counters = registry.snapshot()["counters"]
        assert [(c["labels"]["planner"], c["value"])
                for c in counters] == [("BC", 2), ("TSPN", 1)]

    def test_snapshot_order_is_deterministic(self):
        first = MetricsRegistry(enabled=True)
        second = MetricsRegistry(enabled=True)
        for registry, order in ((first, (1, 2, 3)), (second, (3, 1, 2))):
            for seed in order:
                registry.observe("lat", 0.001 * seed,
                                 planner=f"p{seed}")
                registry.inc("req", planner=f"p{seed}")
        assert first.snapshot() == second.snapshot()

    def test_merge_snapshot_across_workers(self):
        # Simulate the --jobs hand-off: two worker registries fold
        # into the parent and the result equals one serial registry.
        parent = MetricsRegistry(enabled=True)
        serial = MetricsRegistry(enabled=True)
        workers = [MetricsRegistry(enabled=True) for _ in range(2)]
        observations = [(0, 0.001), (1, 0.500), (0, 99.0), (1, 0.002)]
        for worker_index, value in observations:
            workers[worker_index].observe("lat", value, planner="BC")
            workers[worker_index].inc("req", planner="BC")
            serial.observe("lat", value, planner="BC")
            serial.inc("req", planner="BC")
        for worker in workers:
            parent.merge_snapshot(worker.snapshot())
        assert parent.snapshot() == serial.snapshot()

    def test_merge_into_disabled_registry_is_noop(self):
        source = MetricsRegistry(enabled=True)
        source.inc("a")
        target = MetricsRegistry(enabled=False)
        target.merge_snapshot(source.snapshot())
        assert target.snapshot()["counters"] == []


class TestPrometheus:
    def test_render_counters_gauges_histograms(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("service.requests", 3, path="/v1/plan")
        registry.set_gauge("queue.depth", 2.0)
        registry.observe("service.request_seconds", 0.003,
                         boundaries=(0.001, 0.01), planner="BC")
        registry.observe("service.request_seconds", 5.0,
                         boundaries=(0.001, 0.01), planner="BC")
        text = render_prometheus(registry.snapshot())
        assert '# TYPE bc_service_requests_total counter' in text
        assert 'bc_service_requests_total{path="/v1/plan"} 3' in text
        assert "# TYPE bc_queue_depth gauge" in text
        assert ('# TYPE bc_service_request_seconds histogram'
                in text)
        # Cumulative buckets: 0.001 -> 0, 0.01 -> 1, +Inf -> 2.
        assert ('bc_service_request_seconds_bucket'
                '{le="0.001",planner="BC"} 0') in text
        assert ('bc_service_request_seconds_bucket'
                '{le="0.01",planner="BC"} 1') in text
        assert ('bc_service_request_seconds_bucket'
                '{le="+Inf",planner="BC"} 2') in text
        assert ('bc_service_request_seconds_count{planner="BC"} 2'
                in text)
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("c", label='quo"te')
        text = render_prometheus(registry.snapshot())
        assert 'label="quo\\"te"' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(
            MetricsRegistry(enabled=True).snapshot()) == ""
