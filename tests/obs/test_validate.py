"""Tests for trace/manifest schema validation (the CI gate)."""

import pytest

from repro.obs.jsonl import JsonlError, read_jsonl, write_jsonl
from repro.obs.manifest import build_manifest
from repro.obs.tracer import Tracer
from repro.obs.validate import (KNOWN_EVENT_TYPES, KNOWN_SPAN_NAMES,
                                assert_valid_jsonl, validate_events,
                                validate_jsonl, validate_manifest)


def _traced_events():
    tracer = Tracer(enabled=True)
    with tracer.span("run", experiment="figX"):
        with tracer.span("seed", run_index=0, seed=7):
            with tracer.span("deploy", n=5):
                pass
    return tracer.events


class TestValidateEvents:
    def test_clean_stream_has_no_problems(self):
        assert validate_events(_traced_events()) == []

    def test_unknown_span_name_is_flagged(self):
        tracer = Tracer(enabled=True)
        with tracer.span("obg.typo"):
            pass
        problems = validate_events(tracer.events)
        assert any("unknown span name" in p and "obg.typo" in p
                   for p in problems)

    def test_unknown_event_type_is_flagged(self):
        problems = validate_events([{"type": "mystery"}])
        assert any("unknown type" in p for p in problems)

    def test_missing_type_discriminator_is_flagged(self):
        problems = validate_events([{"name": "run"}])
        assert any("no 'type'" in p for p in problems)

    def test_missing_span_key_is_flagged(self):
        events = _traced_events()
        del events[0]["duration_s"]
        problems = validate_events(events)
        assert any("missing key 'duration_s'" in p for p in problems)

    def test_dangling_parent_id_is_flagged(self):
        events = _traced_events()
        events[0]["parent_id"] = 999
        problems = validate_events(events)
        assert any("unknown parent" in p for p in problems)

    def test_negative_duration_is_flagged(self):
        events = _traced_events()
        events[0]["duration_s"] = -1.0
        problems = validate_events(events)
        assert any("negative duration" in p for p in problems)

    def test_mission_trace_records_are_known_types(self):
        for kind in ("move", "charge", "harvest"):
            assert kind in KNOWN_EVENT_TYPES
        assert validate_events([{"type": "move", "length_m": 2.0}]) == []

    def test_taxonomy_covers_the_pipeline(self):
        for name in ("run", "seed", "deploy", "plan", "obg.candidates",
                     "obg.cover", "bto.tsp", "bto.tspn", "bto.anchors",
                     "sim.mission"):
            assert name in KNOWN_SPAN_NAMES


class TestValidateManifest:
    def test_complete_manifest_is_valid(self):
        manifest = build_manifest("fig13", {"runs": 2}, [1, 2], 0.1)
        assert validate_manifest(manifest) == []

    def test_each_missing_required_field_is_flagged(self):
        manifest = build_manifest("fig13", {"runs": 2}, [1, 2], 0.1)
        for field in ("config_hash", "seeds", "git_sha", "wall_time_s"):
            broken = dict(manifest)
            del broken[field]
            problems = validate_manifest(broken)
            assert any(field in p and "missing" in p
                       for p in problems), field

    def test_wrong_schema_tag_is_flagged(self):
        manifest = build_manifest("fig13", {}, [], 0.1)
        manifest["schema"] = "bundle-charging/manifest/v999"
        assert any("unknown manifest schema" in p
                   for p in validate_manifest(manifest))

    def test_non_list_seeds_is_flagged(self):
        manifest = build_manifest("fig13", {}, [], 0.1)
        manifest["seeds"] = "1,2,3"
        assert any("'seeds' must be a list" in p
                   for p in validate_manifest(manifest))


class TestValidateJsonl:
    def _write_trace(self, tmp_path, manifest=None):
        tracer = Tracer(enabled=True)
        with tracer.span("run"):
            pass
        path = str(tmp_path / "run.jsonl")
        tracer.write_jsonl(path, manifest=manifest)
        return path

    def test_full_stream_is_valid(self, tmp_path):
        manifest = build_manifest("fig13", {}, [], 0.1)
        path = self._write_trace(tmp_path, manifest=manifest)
        assert validate_jsonl(path) == []
        assert_valid_jsonl(path)  # must not raise

    def test_missing_manifest_is_flagged(self, tmp_path):
        path = self._write_trace(tmp_path, manifest=None)
        problems = validate_jsonl(path)
        assert any("no manifest" in p for p in problems)
        assert validate_jsonl(path, expect_manifest=False) == []

    def test_missing_header_is_flagged(self, tmp_path):
        path = str(tmp_path / "headless.jsonl")
        write_jsonl(path, _traced_events())
        problems = validate_jsonl(path, expect_manifest=False)
        assert any("header" in p for p in problems)

    def test_wrong_header_schema_is_flagged(self, tmp_path):
        path = str(tmp_path / "old.jsonl")
        write_jsonl(path, [{"type": "header",
                            "schema": "bundle-charging/trace/v0"}])
        problems = validate_jsonl(path, expect_manifest=False)
        assert any("unknown trace schema" in p for p in problems)

    def test_assert_valid_raises_with_all_problems(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        write_jsonl(path, [{"type": "mystery"}])
        with pytest.raises(ValueError) as excinfo:
            assert_valid_jsonl(path, expect_manifest=False)
        assert "header" in str(excinfo.value)
        assert "unknown type" in str(excinfo.value)

    def test_malformed_jsonl_line_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"type": "header"}\nnot json\n')
        with pytest.raises(JsonlError):
            read_jsonl(str(path))


class TestServiceSchemas:
    """The service wire schemas re-exported through repro.obs."""

    def _request(self):
        return {"schema": "bundle-charging/request/v1",
                "deployment": {"kind": "uniform", "n": 10, "seed": 1},
                "planner": "BC", "radius_m": 20.0}

    def test_service_request_span_name_is_known(self):
        assert "service.request" in KNOWN_SPAN_NAMES

    def test_validate_request_accepts_valid(self):
        from repro.obs import validate_request
        assert validate_request(self._request()) == []

    def test_validate_request_flags_problems(self):
        from repro.obs import validate_request
        bad = dict(self._request(), radius_m=-1.0)
        assert validate_request(bad)

    def test_validate_response_round_trip(self):
        from repro.obs import validate_response
        from repro.service.request import (canonical_request,
                                           ok_envelope, request_digest)
        canonical = canonical_request(self._request())
        payload = {"request": canonical,
                   "request_sha256": request_digest(canonical),
                   "plan": {}, "metrics": {}}
        assert validate_response(ok_envelope(payload, "off")) == []
        assert validate_response({"schema": "wrong"})
