"""Tests for trace-replay energy accounting.

The acceptance test for the observability PR lives here: replaying a
traced ``run_averaged`` through ``energy_split`` must reproduce the
untraced runner's aggregates *exactly* (float-for-float), because the
report reuses the same rows and the same reduction.
"""

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_averaged
from repro.obs.report import (ENERGY_METRICS, build_report_tables,
                              counter_summary, diff_traces, energy_split,
                              phase_summary, plan_rows,
                              render_trace_report, trace_manifest)
from repro.obs.tracer import TRACER
from repro.planners import PAPER_ALGORITHMS

CONFIG = ExperimentConfig(runs=2, node_count=40, node_counts=(40,),
                          radii=(20.0,), default_radius=20.0)


@pytest.fixture
def traced():
    """Enable the global tracer for one test, restoring it afterwards."""
    TRACER.enabled = True
    TRACER.reset()
    try:
        yield TRACER
    finally:
        TRACER.enabled = False
        TRACER.reset()


def _run(config=CONFIG):
    return run_averaged(config, config.node_count,
                        config.default_radius, list(PAPER_ALGORITHMS),
                        "report-test")


class TestExactReplay:
    def test_energy_split_equals_untraced_aggregates(self, traced):
        """Acceptance: replayed totals match the live run exactly."""
        live = _run()
        events = traced.export_events()

        TRACER.enabled = False
        untraced = _run()

        replayed = energy_split(events)
        assert set(replayed) == set(PAPER_ALGORITHMS)
        for algorithm in PAPER_ALGORITHMS:
            for metric in ENERGY_METRICS:
                cell = replayed[algorithm][metric]
                assert cell == live[algorithm][metric], \
                    (algorithm, metric)
                assert cell == untraced[algorithm][metric], \
                    (algorithm, metric)

    def test_replay_matches_parallel_run(self, traced):
        """Worker-absorbed events replay to the same aggregates."""
        live = _run(replace(CONFIG, jobs=2))
        replayed = energy_split(traced.export_events())
        for algorithm in PAPER_ALGORITHMS:
            for metric in ENERGY_METRICS:
                assert replayed[algorithm][metric] == \
                    live[algorithm][metric], (algorithm, metric)

    def test_plan_rows_keep_run_order(self, traced):
        _run()
        rows = plan_rows(traced.export_events())
        for algorithm in PAPER_ALGORITHMS:
            assert len(rows[algorithm]) == CONFIG.runs
            for row in rows[algorithm]:
                assert set(ENERGY_METRICS) <= set(row)


class TestSummaries:
    def test_phase_summary_counts_pipeline_spans(self, traced):
        _run()
        phases = phase_summary(traced.export_events())
        assert phases["run"]["calls"] == 1
        assert phases["seed"]["calls"] == CONFIG.runs
        assert phases["plan"]["calls"] == \
            CONFIG.runs * len(PAPER_ALGORITHMS)
        assert phases["deploy"]["calls"] == CONFIG.runs
        assert phases["run"]["total_s"] > 0.0

    def test_counter_summary_sums_root_spans_only(self):
        events = [
            {"type": "span", "name": "run", "span_id": 1,
             "parent_id": None, "duration_s": 2.0, "attrs": {},
             "wall_s": 0.0,
             "perf": {"counters": {"bundling.cover": 10}}},
            # child delta is already inside the root's; must not double
            {"type": "span", "name": "seed", "span_id": 2,
             "parent_id": 1, "duration_s": 1.0, "attrs": {},
             "wall_s": 0.0,
             "perf": {"counters": {"bundling.cover": 10}}},
        ]
        summary = counter_summary(events)
        assert summary["bundling.cover"]["count"] == 10.0
        assert summary["bundling.cover"]["rate_per_s"] == 5.0

    def test_trace_manifest_extraction(self):
        events = [{"type": "header"},
                  {"type": "manifest", "experiment": "fig13"},
                  {"type": "span"}]
        assert trace_manifest(events)["experiment"] == "fig13"
        assert trace_manifest([{"type": "header"}]) is None


class TestRendering:
    def _write_trace(self, tmp_path, name, config=CONFIG):
        from repro.obs.manifest import build_manifest
        TRACER.enabled = True
        TRACER.reset()
        try:
            _run(config)
            manifest = build_manifest("report-test", {"runs": config.runs},
                                      [], 0.5)
            path = str(tmp_path / name)
            TRACER.write_jsonl(path, manifest=manifest)
        finally:
            TRACER.enabled = False
            TRACER.reset()
        return path

    def test_build_report_tables_shapes(self, traced):
        _run()
        tables = build_report_tables(traced.export_events())
        titles = [table.title for table in tables]
        assert any("Energy split" in t for t in titles)
        assert any("pipeline phase" in t for t in titles)
        assert any("Kernel counters" in t for t in titles)

    def test_empty_trace_builds_no_tables(self):
        assert build_report_tables([]) == []

    def test_render_trace_report_end_to_end(self, tmp_path):
        path = self._write_trace(tmp_path, "run.jsonl")
        text = render_trace_report(path)
        assert "report-test" in text
        assert "Energy split" in text
        for algorithm in PAPER_ALGORITHMS:
            assert algorithm in text

    def test_diff_traces_reports_deltas(self, tmp_path):
        path_a = self._write_trace(tmp_path, "a.jsonl")
        path_b = self._write_trace(tmp_path, "b.jsonl",
                                   config=replace(CONFIG, base_seed=99))
        text = diff_traces(path_a, path_b)
        assert "Energy diff" in text
        assert "Phase time diff" in text

    def test_diff_same_trace_is_zero(self, tmp_path):
        path = self._write_trace(tmp_path, "same.jsonl")
        text = diff_traces(path, path)
        assert "+0.00%" in text
