"""Tests for the span tracer core."""

import json

import pytest

from repro.obs.jsonl import read_jsonl
from repro.obs.tracer import (NULL_SPAN, TRACE_SCHEMA, Tracer, TRACER,
                              obs_enabled, obs_span)
from repro.perf.counters import PERF


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("deploy", n=5) is NULL_SPAN
        assert tracer.span("obg.cover") is NULL_SPAN

    def test_null_span_is_falsy(self):
        assert not NULL_SPAN
        assert bool(NULL_SPAN) is False

    def test_null_span_performs_no_attribute_writes(self):
        # __slots__ = () means there is no instance dict to write into:
        # no code path through a disabled span can mutate anything.
        assert NULL_SPAN.__slots__ == ()
        assert not hasattr(NULL_SPAN, "__dict__")
        with pytest.raises(AttributeError):
            NULL_SPAN.anything = 1

    def test_disabled_context_manager_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("deploy", n=3) as span:
            assert span is NULL_SPAN
            span.set(ignored=True)
        assert tracer.events == []
        assert tracer._stack == []
        assert tracer._next_id == 1

    def test_disabled_emit_drops_record(self):
        tracer = Tracer(enabled=False)
        tracer.emit({"type": "move"})
        assert tracer.events == []

    def test_global_tracer_starts_disabled(self):
        assert TRACER.enabled is False
        assert obs_enabled() is False
        assert obs_span("deploy") is NULL_SPAN


class TestEnabledSpans:
    def test_span_event_fields(self, tracer):
        with tracer.span("deploy", n=7, seed=42):
            pass
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event["type"] == "span"
        assert event["name"] == "deploy"
        assert event["span_id"] == 1
        assert event["parent_id"] is None
        assert event["attrs"] == {"n": 7, "seed": 42}
        assert event["duration_s"] >= 0.0
        assert event["wall_s"] > 0.0

    def test_nesting_assigns_parent_ids(self, tracer):
        with tracer.span("run") as run_span:
            assert tracer.current() is run_span
            with tracer.span("seed"):
                with tracer.span("deploy"):
                    pass
        by_name = {event["name"]: event for event in tracer.events}
        assert by_name["run"]["parent_id"] is None
        assert by_name["seed"]["parent_id"] == by_name["run"]["span_id"]
        assert by_name["deploy"]["parent_id"] == \
            by_name["seed"]["span_id"]

    def test_children_exit_before_parents_in_stream(self, tracer):
        with tracer.span("run"):
            with tracer.span("seed"):
                pass
        assert [event["name"] for event in tracer.events] == \
            ["seed", "run"]

    def test_set_attaches_attributes(self, tracer):
        with tracer.span("plan", algorithm="BC") as span:
            span.set(total_j=12.5)
        assert tracer.events[0]["attrs"] == {"algorithm": "BC",
                                             "total_j": 12.5}

    def test_truthiness_of_live_span(self, tracer):
        span = tracer.span("plan")
        assert span  # live spans are truthy so `if span:` guards work

    def test_emit_tags_current_span(self, tracer):
        with tracer.span("sim.mission") as span:
            tracer.emit({"type": "move", "length_m": 5.0})
        move = tracer.events[0]
        assert move["type"] == "move"
        assert move["span_id"] == span.span_id

    def test_reset_clears_everything(self, tracer):
        with tracer.span("run"):
            pass
        tracer.reset()
        assert tracer.events == []
        assert tracer._next_id == 1


class TestPerfAbsorption:
    def test_span_absorbs_counter_delta(self, tracer):
        PERF.add("obs.test.counter", 0)  # ensure key exists
        with tracer.span("obg.cover"):
            PERF.add("obs.test.counter", 5)
        perf = tracer.events[0]["perf"]
        assert perf["counters"]["obs.test.counter"] == 5

    def test_span_absorbs_timer_delta(self, tracer):
        with tracer.span("obg.cover"):
            with PERF.timer("obs.test.timer"):
                pass
        timers = tracer.events[0]["perf"]["timers"]
        assert timers["obs.test.timer"]["calls"] == 1
        assert timers["obs.test.timer"]["total_s"] >= 0.0

    def test_untouched_counters_are_not_reported(self, tracer):
        PERF.add("obs.test.before", 3)
        with tracer.span("obg.cover"):
            pass
        assert "perf" not in tracer.events[0]


class TestWorkerAbsorption:
    def test_absorb_remaps_ids_and_reparents(self, tracer):
        worker = Tracer(enabled=True)
        with worker.span("seed", run_index=1):
            with worker.span("deploy"):
                pass
        exported = worker.export_events()
        assert worker.events == []

        with tracer.span("run"):
            tracer.absorb_events(exported)
        by_name = {event["name"]: event for event in tracer.events}
        run_id = by_name["run"]["span_id"]
        assert by_name["seed"]["parent_id"] == run_id
        assert by_name["deploy"]["parent_id"] == \
            by_name["seed"]["span_id"]
        ids = [event["span_id"] for event in tracer.events]
        assert len(set(ids)) == len(ids)  # no collisions after remap

    def test_absorb_into_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.absorb_events([{"type": "span", "span_id": 1,
                               "parent_id": None, "name": "seed"}])
        assert tracer.events == []


class TestJsonlExport:
    def test_write_jsonl_header_manifest_events(self, tracer, tmp_path):
        with tracer.span("run"):
            pass
        path = str(tmp_path / "run.jsonl")
        tracer.write_jsonl(path, manifest={"experiment": "figX"})
        events = read_jsonl(path)
        assert events[0] == {"type": "header", "schema": TRACE_SCHEMA}
        assert events[1]["type"] == "manifest"
        assert events[1]["experiment"] == "figX"
        assert events[2]["name"] == "run"

    def test_events_are_json_serializable(self, tracer):
        with tracer.span("plan", algorithm="BC") as span:
            span.set(total_j=1.0)
        json.dumps(tracer.events)  # must not raise
