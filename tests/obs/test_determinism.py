"""Disabled tracing must be invisible to the numbers.

Two subprocess runs of a trimmed fig13 sweep — one with the tracer
simply left disabled, one where ``repro.obs`` is *blocked from
importing at all* — must write byte-identical results CSVs.  This pins
the zero-cost contract from both directions: the NULL_SPAN path does
not perturb the pipeline, and every instrumented call site degrades
gracefully when the observability package does not exist.
"""

import os
import subprocess
import sys

_DRIVER = r"""
import sys

mode, out_dir = sys.argv[1], sys.argv[2]

if mode == "block":
    import importlib.abc

    class BlockObs(importlib.abc.MetaPathFinder):
        def find_spec(self, fullname, path=None, target=None):
            if fullname == "repro.obs" or \
                    fullname.startswith("repro.obs."):
                raise ImportError(f"{fullname} blocked for test")
            return None

    sys.meta_path.insert(0, BlockObs())

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.tables import print_tables

config = ExperimentConfig(runs=2, node_count=40, node_counts=(40, 60),
                          radii=(20.0,), default_radius=20.0)
tables = run_experiment("fig13", config)
print_tables(tables, csv_dir=out_dir)

if mode == "block":
    leaked = [name for name in sys.modules
              if name == "repro.obs" or name.startswith("repro.obs.")]
    assert not leaked, f"repro.obs leaked into sys.modules: {leaked}"
"""


def _run_fig13(mode: str, out_dir: str) -> None:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    completed = subprocess.run(
        [sys.executable, "-c", _DRIVER, mode, out_dir],
        capture_output=True, text=True, env=env, timeout=600)
    assert completed.returncode == 0, completed.stderr


def test_tracing_off_and_never_imported_are_byte_identical(tmp_path):
    plain_dir = tmp_path / "plain"
    blocked_dir = tmp_path / "blocked"
    _run_fig13("plain", str(plain_dir))
    _run_fig13("block", str(blocked_dir))

    plain_csvs = sorted(os.listdir(plain_dir))
    blocked_csvs = sorted(os.listdir(blocked_dir))
    assert plain_csvs == blocked_csvs
    assert plain_csvs  # the sweep must actually have written CSVs
    for name in plain_csvs:
        plain_bytes = (plain_dir / name).read_bytes()
        blocked_bytes = (blocked_dir / name).read_bytes()
        assert plain_bytes == blocked_bytes, name
