"""Tests for run-provenance manifests."""

import json

from repro import __version__
from repro.obs.manifest import (MANIFEST_SCHEMA,
                                REQUIRED_MANIFEST_FIELDS, build_manifest,
                                config_digest, git_revision,
                                write_manifest)
from repro.obs.validate import validate_manifest


class TestConfigDigest:
    def test_digest_is_sha256_hex(self):
        digest = config_digest({"runs": 10})
        assert len(digest) == 64
        int(digest, 16)  # must be hex

    def test_digest_is_key_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == \
            config_digest({"b": 2, "a": 1})

    def test_digest_distinguishes_configs(self):
        assert config_digest({"runs": 10}) != config_digest({"runs": 11})

    def test_digest_handles_non_json_values(self):
        # asdict(ExperimentConfig) can contain tuples; default=str
        # canonicalises anything json.dumps cannot encode natively.
        config_digest({"radii": (10.0, 20.0), "cost": object()})


class TestBuildManifest:
    def test_carries_every_required_field(self):
        manifest = build_manifest("fig13", {"runs": 2}, [7, 8], 1.25)
        for field in REQUIRED_MANIFEST_FIELDS:
            assert field in manifest, field
        assert validate_manifest(manifest) == []

    def test_core_values(self):
        manifest = build_manifest("fig13", {"runs": 2}, [7, 8], 1.25,
                                  argv=["bundle-charging", "trace"])
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["experiment"] == "fig13"
        assert manifest["config"] == {"runs": 2}
        assert manifest["config_hash"] == config_digest({"runs": 2})
        assert manifest["seeds"] == [7, 8]
        assert manifest["wall_time_s"] == 1.25
        assert manifest["argv"] == ["bundle-charging", "trace"]
        assert manifest["package_version"] == __version__

    def test_extra_keys_merge_without_shadowing(self):
        manifest = build_manifest(
            "fig13", {}, [], 0.0,
            extra={"traced": True, "experiment": "SHADOW"})
        assert manifest["traced"] is True
        assert manifest["experiment"] == "fig13"  # required field wins

    def test_git_sha_matches_checkout(self):
        # The test suite runs inside the repo, so the subprocess probe
        # should agree with what build_manifest recorded.
        sha = git_revision()
        manifest = build_manifest("fig13", {}, [], 0.0)
        assert manifest["git_sha"] == sha
        if sha is not None:
            assert len(sha) == 40

    def test_git_revision_outside_checkout(self, tmp_path):
        assert git_revision(cwd=str(tmp_path)) is None


class TestWriteManifest:
    def test_round_trips_through_json(self, tmp_path):
        manifest = build_manifest("fig12", {"runs": 3}, [1, 2, 3], 0.5)
        path = tmp_path / "manifest.json"
        write_manifest(manifest, str(path))
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded == manifest
