"""Cross-module integration tests: plan -> simulate -> validate.

The library's end-to-end contract: every planner's output, executed by
the discrete-event simulator, leaves every sensor at or above its energy
requirement, and the simulator's energy ledger matches the static
evaluator's.
"""

import pytest

from repro import (CostParameters, PAPER_ALGORITHMS,
                   clustered_deployment, evaluate_plan, make_planner,
                   uniform_deployment, validate_plan)
from repro.sim import run_mission


@pytest.mark.parametrize("name", PAPER_ALGORITHMS)
class TestEveryPlannerEndToEnd:
    def test_uniform_network_fully_charged(self, name, paper_cost):
        network = uniform_deployment(count=40, seed=77)
        plan = make_planner(name, radius=30.0).plan(network, paper_cost)
        result = validate_plan(plan, network, paper_cost, strict=True)
        assert result.satisfied

    def test_clustered_network_fully_charged(self, name, paper_cost):
        network = clustered_deployment(count=40, seed=78, clusters=4)
        plan = make_planner(name, radius=30.0).plan(network, paper_cost)
        result = validate_plan(plan, network, paper_cost, strict=True)
        assert result.satisfied

    def test_simulated_ledger_matches_evaluator(self, name, paper_cost):
        network = uniform_deployment(count=30, seed=79)
        plan = make_planner(name, radius=30.0).plan(network, paper_cost)
        metrics = evaluate_plan(plan, network.locations, paper_cost)
        trace = run_mission(plan, network, paper_cost)
        assert trace.total_energy_j == pytest.approx(metrics.total_j,
                                                     rel=1e-9)
        assert trace.tour_length_m == pytest.approx(
            metrics.energy.tour_length_m, rel=1e-9)


class TestPaperHeadlines:
    """The paper's headline comparative claims, at reduced scale."""

    def test_energy_ordering_dense_network(self, paper_cost):
        # Fig. 12/13 ordering at a productive radius: BC-OPT < BC < SC
        # and BC-OPT < CSS.
        totals = {}
        network = uniform_deployment(count=120, seed=5)
        for name in PAPER_ALGORITHMS:
            plan = make_planner(name, radius=35.0).plan(network,
                                                        paper_cost)
            totals[name] = evaluate_plan(plan, network.locations,
                                         paper_cost).total_j
        assert totals["BC-OPT"] < totals["BC"]
        assert totals["BC-OPT"] < totals["CSS"]
        assert totals["BC"] < totals["SC"]

    def test_bundle_count_shrinks_with_density_fixed_radius(
            self, paper_cost):
        # Denser networks bundle *relatively* better: stops per sensor
        # fall as n grows.
        from repro.bundling import greedy_bundles
        ratios = []
        for count in (40, 160):
            network = uniform_deployment(count=count, seed=9)
            bundles = greedy_bundles(network, 40.0)
            ratios.append(len(bundles) / count)
        assert ratios[1] < ratios[0]

    def test_one_to_many_incidental_bonus_positive(self, paper_cost):
        network = uniform_deployment(count=60, seed=12)
        plan = make_planner("BC", radius=30.0).plan(network, paper_cost)
        result = validate_plan(plan, network, paper_cost)
        assert result.incidental_fraction > 0.0

    def test_radius_tradeoff_components(self, paper_cost):
        # Fig. 6(a)'s trade-off: growing the radius shortens the tour
        # monotonically while the charging time/energy grows, and the
        # charging share of total energy rises from negligible to
        # dominant across a wide radius ladder.
        network = uniform_deployment(count=100, seed=31)
        tours = []
        charge_shares = []
        for radius in (2.0, 30.0, 300.0):
            plan = make_planner("BC", radius=radius).plan(network,
                                                          paper_cost)
            metrics = evaluate_plan(plan, network.locations, paper_cost)
            tours.append(metrics.energy.tour_length_m)
            charge_shares.append(
                metrics.energy.charging_j / metrics.total_j)
        assert tours == sorted(tours, reverse=True)
        assert charge_shares == sorted(charge_shares)
        assert charge_shares[0] < 0.2
        assert charge_shares[-1] > 0.5

    def test_depot_membership_all_planners(self, paper_cost):
        network = uniform_deployment(count=25, seed=44)
        for name in PAPER_ALGORITHMS:
            plan = make_planner(name, radius=25.0).plan(network,
                                                        paper_cost)
            assert plan.depot == network.base_station
