"""Tests for the SC planner."""

import pytest

from repro.planners import SingleChargingPlanner
from repro.tour import evaluate_plan


class TestSingleCharging:
    def test_one_stop_per_sensor(self, medium_network, paper_cost):
        plan = SingleChargingPlanner().plan(medium_network, paper_cost)
        assert len(plan) == len(medium_network)
        for stop in plan:
            assert len(stop.sensors) == 1

    def test_stops_at_sensor_locations(self, medium_network,
                                       paper_cost):
        plan = SingleChargingPlanner().plan(medium_network, paper_cost)
        locations = medium_network.locations
        for stop in plan:
            (sensor_index,) = stop.sensors
            assert stop.position == locations[sensor_index]

    def test_zero_distance_dwell(self, medium_network, paper_cost):
        plan = SingleChargingPlanner().plan(medium_network, paper_cost)
        expected = paper_cost.dwell_time_for_distance(0.0)
        for stop in plan:
            assert stop.dwell_s == pytest.approx(expected)

    def test_depot_round_trip(self, medium_network, paper_cost):
        plan = SingleChargingPlanner().plan(medium_network, paper_cost)
        assert plan.depot == medium_network.base_station

    def test_no_depot_option(self, medium_network, paper_cost):
        planner = SingleChargingPlanner(use_depot=False)
        plan = planner.plan(medium_network, paper_cost)
        assert plan.depot is None

    def test_minimal_charging_energy(self, medium_network, paper_cost):
        # SC charges every sensor at d = 0 — the charging term is the
        # theoretical minimum n * delta * beta^2 / alpha.
        plan = SingleChargingPlanner().plan(medium_network, paper_cost)
        metrics = evaluate_plan(plan, medium_network.locations,
                                paper_cost)
        minimum = len(medium_network) * 50.0
        assert metrics.energy.charging_j == pytest.approx(minimum)

    def test_label(self, medium_network, paper_cost):
        plan = SingleChargingPlanner().plan(medium_network, paper_cost)
        assert plan.label == "SC"

    def test_empty_network(self, paper_cost):
        from repro.network import uniform_deployment
        network = uniform_deployment(count=0, seed=0)
        plan = SingleChargingPlanner().plan(network, paper_cost)
        assert len(plan) == 0
