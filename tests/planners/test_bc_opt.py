"""Tests for the BC-OPT planner."""

import pytest

from repro.planners import (BundleChargingOptPlanner,
                            BundleChargingPlanner)
from repro.tour import evaluate_plan


class TestBundleChargingOpt:
    def test_all_sensors_assigned(self, medium_network, paper_cost):
        plan = BundleChargingOptPlanner(40.0).plan(medium_network,
                                                   paper_cost)
        plan.validate_complete(len(medium_network))

    def test_never_worse_than_bc(self, paper_cost):
        from repro.network import uniform_deployment
        for seed in (1, 2, 3):
            network = uniform_deployment(count=80, seed=seed)
            bc = BundleChargingPlanner(30.0).plan(network, paper_cost)
            opt = BundleChargingOptPlanner(30.0).plan(network,
                                                      paper_cost)
            bc_total = evaluate_plan(bc, network.locations,
                                     paper_cost).total_j
            opt_total = evaluate_plan(opt, network.locations,
                                      paper_cost).total_j
            assert opt_total <= bc_total + 1e-6

    def test_strictly_improves_dense_network(self, paper_cost):
        from repro.network import uniform_deployment
        network = uniform_deployment(count=120, seed=8)
        bc = BundleChargingPlanner(30.0).plan(network, paper_cost)
        opt = BundleChargingOptPlanner(30.0).plan(network, paper_cost)
        bc_total = evaluate_plan(bc, network.locations,
                                 paper_cost).total_j
        opt_total = evaluate_plan(opt, network.locations,
                                  paper_cost).total_j
        assert opt_total < bc_total * 0.999

    def test_dwell_covers_worst_member(self, medium_network,
                                       paper_cost):
        plan = BundleChargingOptPlanner(40.0).plan(medium_network,
                                                   paper_cost)
        locations = medium_network.locations
        for stop in plan:
            worst = stop.worst_distance(locations)
            assert stop.dwell_s >= paper_cost.dwell_time_for_distance(
                worst) - 1e-6

    def test_definition3_cap_respected(self, paper_cost):
        # Every member of every stop stays within the generation radius
        # of the (possibly displaced) anchor — Definition 3.
        from repro.network import uniform_deployment
        radius = 30.0
        network = uniform_deployment(count=80, seed=4)
        plan = BundleChargingOptPlanner(radius).plan(network, paper_cost)
        locations = network.locations
        for stop in plan:
            for sensor_index in stop.sensors:
                assert stop.position.distance_to(
                    locations[sensor_index]) <= radius + 1e-5

    def test_report_available(self, medium_network, paper_cost):
        planner = BundleChargingOptPlanner(40.0)
        planner.plan(medium_network, paper_cost)
        assert planner.last_report is not None
        assert planner.last_report.improvement_j >= -1e-9

    def test_label(self, medium_network, paper_cost):
        plan = BundleChargingOptPlanner(40.0).plan(medium_network,
                                                   paper_cost)
        assert plan.label == "BC-OPT"

    def test_deterministic(self, medium_network, paper_cost):
        a = BundleChargingOptPlanner(40.0).plan(medium_network,
                                                paper_cost)
        b = BundleChargingOptPlanner(40.0).plan(medium_network,
                                                paper_cost)
        assert [s.position for s in a] == [s.position for s in b]
