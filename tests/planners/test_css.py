"""Tests for the CSS baseline."""

import pytest

from repro.errors import PlanError
from repro.planners import (CombineSkipSubstitutePlanner,
                            SingleChargingPlanner)
from repro.tour import evaluate_plan


class TestCSS:
    def test_all_sensors_assigned(self, medium_network, paper_cost):
        plan = CombineSkipSubstitutePlanner(30.0).plan(medium_network,
                                                       paper_cost)
        plan.validate_complete(len(medium_network))

    def test_stops_within_range_of_members(self, medium_network,
                                           paper_cost):
        radius = 30.0
        plan = CombineSkipSubstitutePlanner(radius).plan(
            medium_network, paper_cost)
        locations = medium_network.locations
        for stop in plan:
            for sensor_index in stop.sensors:
                assert stop.position.distance_to(
                    locations[sensor_index]) <= radius + 1e-6

    def test_combining_reduces_stops(self, medium_network, paper_cost):
        small = CombineSkipSubstitutePlanner(5.0).plan(medium_network,
                                                       paper_cost)
        large = CombineSkipSubstitutePlanner(120.0).plan(medium_network,
                                                         paper_cost)
        assert len(large) < len(small)

    def test_zero_radius_equals_sc_stop_count(self, medium_network,
                                              paper_cost):
        plan = CombineSkipSubstitutePlanner(0.0).plan(medium_network,
                                                      paper_cost)
        assert len(plan) == len(medium_network)

    def test_shorter_tour_than_sc(self, paper_cost):
        from repro.network import uniform_deployment
        network = uniform_deployment(count=100, seed=17)
        sc_plan = SingleChargingPlanner().plan(network, paper_cost)
        css_plan = CombineSkipSubstitutePlanner(30.0).plan(network,
                                                           paper_cost)
        sc = evaluate_plan(sc_plan, network.locations, paper_cost)
        css = evaluate_plan(css_plan, network.locations, paper_cost)
        assert css.energy.tour_length_m < sc.energy.tour_length_m

    def test_higher_charging_time_than_sc(self, paper_cost):
        # CSS does not optimize charging positions: its average dwell
        # per sensor is at least SC's zero-distance dwell.
        from repro.network import uniform_deployment
        network = uniform_deployment(count=60, seed=21)
        sc_plan = SingleChargingPlanner().plan(network, paper_cost)
        css_plan = CombineSkipSubstitutePlanner(25.0).plan(network,
                                                           paper_cost)
        sc = evaluate_plan(sc_plan, network.locations, paper_cost)
        css = evaluate_plan(css_plan, network.locations, paper_cost)
        assert (css.average_charging_time_s
                >= sc.average_charging_time_s - 1e-9)

    def test_negative_radius_rejected(self):
        with pytest.raises(PlanError):
            CombineSkipSubstitutePlanner(-1.0)

    def test_deterministic(self, medium_network, paper_cost):
        a = CombineSkipSubstitutePlanner(30.0).plan(medium_network,
                                                    paper_cost)
        b = CombineSkipSubstitutePlanner(30.0).plan(medium_network,
                                                    paper_cost)
        assert [s.position for s in a] == [s.position for s in b]

    def test_label(self, medium_network, paper_cost):
        plan = CombineSkipSubstitutePlanner(30.0).plan(medium_network,
                                                       paper_cost)
        assert plan.label == "CSS"
