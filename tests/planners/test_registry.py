"""Tests for the planner registry."""

import pytest

from repro.errors import ExperimentError
from repro.planners import (PAPER_ALGORITHMS, Planner, make_planner,
                            planner_names, register_planner)


class TestRegistry:
    def test_paper_order(self):
        assert planner_names() == ["SC", "CSS", "BC", "BC-OPT"]
        assert tuple(planner_names()) == PAPER_ALGORITHMS

    @pytest.mark.parametrize("name", PAPER_ALGORITHMS)
    def test_make_each(self, name):
        planner = make_planner(name, radius=20.0)
        assert planner.name == name

    def test_unknown_name(self):
        with pytest.raises(ExperimentError):
            make_planner("nope", radius=20.0)

    def test_strategy_and_seed_forwarded(self):
        planner = make_planner("BC", radius=20.0,
                               tsp_strategy="greedy+2opt", seed=9)
        assert planner.tsp_strategy == "greedy+2opt"
        assert planner.seed == 9

    def test_register_custom(self, medium_network, paper_cost):
        class NullPlanner(Planner):
            name = "NULL-TEST"

            def plan(self, network, cost):
                from repro.tour import ChargingPlan, stop_for_sensors
                stops = tuple(
                    stop_for_sensors(s.location, [s.index],
                                     network.locations, cost)
                    for s in network)
                return ChargingPlan(stops=stops, label=self.name)

        register_planner("NULL-TEST",
                         lambda radius, strategy, seed: NullPlanner())
        try:
            planner = make_planner("NULL-TEST", radius=1.0)
            plan = planner.plan(medium_network, paper_cost)
            assert plan.label == "NULL-TEST"
            with pytest.raises(ExperimentError):
                register_planner("NULL-TEST", lambda r, s, x: None)
        finally:
            from repro.planners import registry
            registry._REGISTRY.pop("NULL-TEST", None)

    def test_plans_are_complete_for_all(self, medium_network,
                                        paper_cost):
        for name in PAPER_ALGORITHMS:
            plan = make_planner(name, radius=25.0).plan(medium_network,
                                                        paper_cost)
            plan.validate_complete(len(medium_network))
