"""Tests for the BC planner."""

import pytest

from repro.bundling import grid_bundles
from repro.errors import PlanError
from repro.planners import BundleChargingPlanner, SingleChargingPlanner
from repro.tour import evaluate_plan


class TestBundleCharging:
    def test_all_sensors_assigned(self, medium_network, paper_cost):
        plan = BundleChargingPlanner(40.0).plan(medium_network,
                                                paper_cost)
        plan.validate_complete(len(medium_network))

    def test_stop_count_equals_bundle_count(self, medium_network,
                                            paper_cost):
        planner = BundleChargingPlanner(40.0)
        bundle_set = planner.generate_bundles(medium_network)
        plan = planner.plan(medium_network, paper_cost)
        assert len(plan) == len(bundle_set)

    def test_dwell_covers_worst_member(self, medium_network,
                                       paper_cost):
        plan = BundleChargingPlanner(40.0).plan(medium_network,
                                                paper_cost)
        locations = medium_network.locations
        for stop in plan:
            worst = stop.worst_distance(locations)
            assert stop.dwell_s >= paper_cost.dwell_time_for_distance(
                worst) - 1e-9

    def test_fewer_stops_than_sc_in_dense_network(self, paper_cost):
        from repro.network import uniform_deployment
        network = uniform_deployment(count=150, seed=13)
        bc_plan = BundleChargingPlanner(40.0).plan(network, paper_cost)
        assert len(bc_plan) < len(network)

    def test_tiny_radius_degenerates_to_sc(self, medium_network,
                                           paper_cost):
        bc_plan = BundleChargingPlanner(1e-9).plan(medium_network,
                                                   paper_cost)
        sc_plan = SingleChargingPlanner().plan(medium_network,
                                               paper_cost)
        bc = evaluate_plan(bc_plan, medium_network.locations,
                           paper_cost)
        sc = evaluate_plan(sc_plan, medium_network.locations,
                           paper_cost)
        assert bc.stop_count == sc.stop_count
        assert bc.total_j == pytest.approx(sc.total_j, rel=0.02)

    def test_custom_bundle_generator(self, medium_network, paper_cost):
        planner = BundleChargingPlanner(
            40.0, bundle_generator=grid_bundles)
        plan = planner.plan(medium_network, paper_cost)
        plan.validate_complete(len(medium_network))

    def test_negative_radius_rejected(self):
        with pytest.raises(PlanError):
            BundleChargingPlanner(-5.0)

    def test_deterministic(self, medium_network, paper_cost):
        a = BundleChargingPlanner(40.0).plan(medium_network, paper_cost)
        b = BundleChargingPlanner(40.0).plan(medium_network, paper_cost)
        assert [s.position for s in a] == [s.position for s in b]

    def test_label(self, medium_network, paper_cost):
        plan = BundleChargingPlanner(40.0).plan(medium_network,
                                                paper_cost)
        assert plan.label == "BC"
