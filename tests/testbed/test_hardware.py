"""Tests for the simulated testbed hardware."""

import pytest

from repro.errors import ModelError
from repro.geometry import Point
from repro.testbed import AccessPoint, PowerharvesterSensor, RobotCar


class TestRobotCar:
    def test_drive_updates_state(self):
        car = RobotCar(speed_m_per_s=0.5, move_cost_j_per_m=2.0)
        travel = car.drive_to(Point(3, 4))
        assert travel == pytest.approx(10.0)  # 5 m at 0.5 m/s
        assert car.position == Point(3, 4)
        assert car.odometer_m == pytest.approx(5.0)
        assert car.energy_spent_j == pytest.approx(10.0)

    def test_consecutive_legs_accumulate(self):
        car = RobotCar()
        car.drive_to(Point(1, 0))
        car.drive_to(Point(1, 1))
        assert car.odometer_m == pytest.approx(2.0)

    def test_invalid_speed(self):
        with pytest.raises(ModelError):
            RobotCar(speed_m_per_s=0.0)

    def test_paper_defaults(self):
        car = RobotCar()
        assert car.speed_m_per_s == 0.3
        assert car.move_cost_j_per_m == 5.59


class TestPowerharvesterSensor:
    def test_receive_accumulates(self):
        sensor = PowerharvesterSensor(index=0, location=Point(0, 0),
                                      required_j=1e-3)
        credit = sensor.receive(1e-4, 5.0)
        assert credit == pytest.approx(5e-4)
        assert not sensor.charged
        sensor.receive(1e-4, 5.0)
        assert sensor.charged

    def test_invalid_receive(self):
        sensor = PowerharvesterSensor(index=0, location=Point(0, 0))
        with pytest.raises(ModelError):
            sensor.receive(-1.0, 1.0)
        with pytest.raises(ModelError):
            sensor.receive(1.0, -1.0)


class TestAccessPoint:
    def test_reports_collected(self):
        ap = AccessPoint()
        ap.report(0, 1.0, 0.5)
        ap.report(1, 2.0, 0.25)
        ap.report(0, 3.0, 0.75)
        assert len(ap.reports) == 3
        assert ap.latest_by_sensor() == {0: 0.75, 1: 0.25}

    def test_invalid_time(self):
        with pytest.raises(ModelError):
            AccessPoint().report(0, -1.0, 0.5)
