"""Tests for the testbed scenario and runner."""

import pytest

from repro import constants
from repro.charging import PowercastChargingModel
from repro.planners import (BundleChargingOptPlanner,
                            BundleChargingPlanner,
                            SingleChargingPlanner)
from repro.testbed import (compare_planners, paper_testbed, run_testbed)


class TestScenario:
    def test_paper_configuration(self):
        scenario = paper_testbed()
        assert len(scenario.network) == 6
        assert isinstance(scenario.cost.model, PowercastChargingModel)
        assert scenario.speed_m_per_s == 0.3
        assert scenario.cost.delta_j == constants.TESTBED_DELTA_J


class TestRunner:
    def test_sc_mission_charges_all(self):
        scenario = paper_testbed()
        run = run_testbed(SingleChargingPlanner(tsp_strategy="exact"),
                          scenario)
        assert run.charged_sensors == 6
        assert run.tour_length_m > 0.0
        assert run.total_energy_j == pytest.approx(
            run.movement_energy_j + run.charging_energy_j)

    def test_ap_collects_reports(self):
        scenario = paper_testbed()
        run = run_testbed(SingleChargingPlanner(tsp_strategy="exact"),
                          scenario)
        assert run.reports >= 6  # at least one frame per stop

    def test_bundling_saves_energy_at_paper_radius(self):
        scenario = paper_testbed()
        sc = run_testbed(SingleChargingPlanner(tsp_strategy="exact"),
                         scenario)
        bc = run_testbed(
            BundleChargingPlanner(1.2, tsp_strategy="exact"), scenario)
        opt = run_testbed(
            BundleChargingOptPlanner(1.2, tsp_strategy="exact"),
            scenario)
        # Fig. 16 ordering at r = 1.2 m.
        assert bc.total_energy_j < sc.total_energy_j
        assert opt.total_energy_j < bc.total_energy_j

    def test_bcopt_tour_much_shorter_than_sc(self):
        # The paper reports > 20% tour reduction for BC-OPT.
        scenario = paper_testbed()
        sc = run_testbed(SingleChargingPlanner(tsp_strategy="exact"),
                         scenario)
        opt = run_testbed(
            BundleChargingOptPlanner(1.2, tsp_strategy="exact"),
            scenario)
        assert opt.tour_length_m < 0.8 * sc.tour_length_m

    def test_tiny_radius_equals_sc(self):
        scenario = paper_testbed()
        sc = run_testbed(SingleChargingPlanner(tsp_strategy="exact"),
                         scenario)
        bc = run_testbed(
            BundleChargingPlanner(1e-6, tsp_strategy="exact"), scenario)
        assert bc.total_energy_j == pytest.approx(sc.total_energy_j,
                                                  rel=1e-6)

    def test_compare_planners_helper(self):
        scenario = paper_testbed()
        results = compare_planners(
            {"SC": SingleChargingPlanner(tsp_strategy="exact"),
             "BC": BundleChargingPlanner(1.2, tsp_strategy="exact")},
            scenario)
        assert [name for name, _ in results] == ["SC", "BC"]

    def test_mission_time_includes_travel_and_dwell(self):
        scenario = paper_testbed()
        run = run_testbed(SingleChargingPlanner(tsp_strategy="exact"),
                          scenario)
        travel = run.tour_length_m / scenario.speed_m_per_s
        dwell = sum(stop.dwell_s for stop in run.plan.stops)
        assert run.mission_time_s == pytest.approx(travel + dwell,
                                                   rel=1e-6)
