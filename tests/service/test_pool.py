"""Pre-forked worker pool: sharded dispatch, aggregation, drain.

The contracts under test:

* payloads are byte-identical (``payload_sha256``) whether a request
  is served by ``--workers 1``, a pool, or a degraded build with
  ``repro.obs``/``repro.cache`` blocked;
* identical requests route to the same shard worker (sticky by
  canonical digest), so duplicate collapse keeps working;
* ``/metrics`` merges worker documents with parent-owned
  ``started_unix``/``uptime_s`` and per-worker rows;
* ``stop_pool`` drains and reaps every child — no orphans.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.validate import validate_service_metrics
from repro.service import (METRICS_SCHEMA_V2, ServiceConfig,
                           aggregate_worker_metrics, metrics_problems,
                           prometheus_text, start_pool, start_server,
                           stop_pool, stop_server, worker_config)

from .conftest import post_json, small_request

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="worker pool needs os.fork")


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


@pytest.fixture(scope="module")
def pool_base():
    """One shared 2-worker pool for the read-mostly HTTP tests."""
    config = ServiceConfig(port=0, jobs=2, workers=2, timeout_s=60.0)
    pool, _ = start_pool(config)
    try:
        yield pool, f"http://127.0.0.1:{pool.port}"
    finally:
        stop_pool(pool)


class TestWorkerConfig:
    def test_derives_per_worker_outputs(self, tmp_path):
        config = ServiceConfig(
            port=0, workers=4,
            access_log=str(tmp_path / "access.jsonl"),
            trace_dir=str(tmp_path / "trace"),
            cache_dir=str(tmp_path / "cache"))
        derived = worker_config(config, 2)
        assert derived.workers == 1
        assert derived.access_log.endswith("access.jsonl.w2")
        assert derived.trace_dir.endswith(os.path.join("trace",
                                                       "worker2"))
        # The disk cache is the shared warm tier — never per-worker.
        assert derived.cache_dir == config.cache_dir

    def test_workers_bounds_validated(self):
        from repro.errors import ServiceError
        with pytest.raises(ServiceError):
            ServiceConfig(workers=0)
        with pytest.raises(ServiceError):
            ServiceConfig(workers=65)


class TestShardedServing:
    def test_identical_requests_stick_to_one_worker(self, pool_base):
        _, base = pool_base
        body = small_request()
        results = [post_json(f"{base}/v1/plan", body)
                   for _ in range(3)]
        workers = {headers.get("X-BC-Worker")
                   for _, headers, _ in results}
        assert len(workers) == 1 and None not in workers
        digests = {document["payload_sha256"]
                   for _, _, document in results}
        assert len(digests) == 1

    def test_pool_payload_matches_single_server(self, pool_base):
        _, base = pool_base
        body = small_request()
        single, _ = start_server(ServiceConfig(port=0, jobs=2,
                                               timeout_s=60.0))
        try:
            _, _, expected = post_json(
                f"http://127.0.0.1:{single.port}/v1/plan", body)
        finally:
            stop_server(single)
        _, _, pooled = post_json(f"{base}/v1/plan", body)
        assert pooled["payload"] == expected["payload"]
        assert pooled["payload_sha256"] == expected["payload_sha256"]

    def test_batch_duplicates_share_one_payload(self, pool_base):
        _, base = pool_base
        body = small_request()
        other = small_request(
            deployment={"kind": "uniform", "n": 25, "seed": 12,
                        "field_side_m": 300.0})
        status, _, document = post_json(
            f"{base}/v1/batch", {"requests": [body, body, other]})
        assert status == 200
        first, second, third = document["responses"]
        assert first["payload"] == second["payload"]
        assert third["payload_sha256"] != first["payload_sha256"]

    def test_validation_errors_answered_by_dispatcher(self, pool_base):
        _, base = pool_base
        status, _, document = post_json(
            f"{base}/v1/plan", small_request(planner="NOPE"))
        assert status == 400
        assert document["error"]["code"] == "unknown-planner"

    def test_healthz_reports_every_worker(self, pool_base):
        pool, base = pool_base
        document = _get_json(f"{base}/healthz")
        assert document["status"] == "ok"
        assert [row["worker"] for row in document["workers"]] == [0, 1]
        assert all(row["alive"] for row in document["workers"])

    def test_metrics_aggregates_across_workers(self, pool_base):
        pool, base = pool_base
        post_json(f"{base}/v1/plan", small_request())
        document = _get_json(f"{base}/metrics")
        assert document["schema"] == METRICS_SCHEMA_V2
        assert validate_service_metrics(document) == []
        rows = document["workers"]
        assert [row["worker"] for row in rows] == [0, 1]
        assert all(row["healthy"] for row in rows)
        assert document["dispatcher"]["workers"] == 2
        assert document["dispatcher"]["routed_total"] \
            == sum(row["routed"] for row in rows)
        # jobs sum across the pool: 2 workers x 2 threads.
        assert document["scheduler"]["jobs"] == 4


class TestPayloadIdentityAcrossWorkerCounts:
    def test_workers_1_and_4_serve_identical_bytes(self):
        body = small_request()
        single, _ = start_server(ServiceConfig(port=0, jobs=2,
                                               timeout_s=60.0))
        try:
            _, _, expected = post_json(
                f"http://127.0.0.1:{single.port}/v1/plan", body)
        finally:
            stop_server(single)
        pool, _ = start_pool(ServiceConfig(port=0, jobs=1, workers=4,
                                           timeout_s=60.0))
        try:
            _, headers, pooled = post_json(
                f"http://127.0.0.1:{pool.port}/v1/plan", body)
        finally:
            stop_pool(pool)
        assert "X-BC-Worker" in headers
        assert pooled["payload"] == expected["payload"]
        assert pooled["payload_sha256"] == expected["payload_sha256"]


class TestDrain:
    def test_stop_pool_reaps_every_child(self):
        pool, _ = start_pool(ServiceConfig(port=0, jobs=1, workers=2,
                                           timeout_s=60.0))
        base = f"http://127.0.0.1:{pool.port}"
        post_json(f"{base}/v1/plan", small_request())
        pids = [handle.pid for handle in pool.workers]
        stop_pool(pool)
        orphans = []
        for pid in pids:
            try:
                os.kill(pid, 0)
                orphans.append(pid)
            except ProcessLookupError:
                pass
        assert orphans == []
        with pytest.raises(OSError):
            urllib.request.urlopen(f"{base}/healthz", timeout=5)


def _worker_document(started_unix=100.0, uptime_s=5.0, completed=3,
                     engine=None):
    return {
        "schema": METRICS_SCHEMA_V2,
        "uptime_s": uptime_s,
        "started_unix": started_unix,
        "provenance": None,
        "scheduler": {"jobs": 2, "queue_limit": 32, "queue_depth": 0,
                      "open_batches": 0, "draining": False,
                      "counters": {"accepted": completed,
                                   "completed": completed}},
        "perf": {"counters": {"cache.stage.hit": 1},
                 "timers": {"plan": {"total_s": 0.5,
                                     "calls": completed}}},
        "cache": {"memory": {"entries": 2, "bytes": 64,
                             "max_entries": 1024},
                  "shadow_rate": 0.0, "warm_start": False},
        "metrics": engine,
    }


def _engine_snapshot(count):
    registry = MetricsRegistry(enabled=True)
    for index in range(count):
        registry.observe("service.request_seconds",
                         0.01 * (index + 1), planner="BC",
                         outcome="miss", status="200")
    return registry.snapshot()


class TestAggregateWorkerMetrics:
    def _entries(self, documents):
        return [{"worker": index, "pid": 1000 + index,
                 "port": 9000 + index, "routed": 2 * index + 1,
                 "document": document}
                for index, document in enumerate(documents)]

    def test_parent_owns_top_level_timestamps(self):
        merged = aggregate_worker_metrics(
            self._entries([_worker_document(started_unix=50.0),
                           _worker_document(started_unix=60.0)]),
            uptime_s=9.5, started_unix=42.0)
        assert merged["started_unix"] == 42.0
        assert merged["uptime_s"] == 9.5
        assert [row["started_unix"] for row in merged["workers"]] \
            == [50.0, 60.0]

    def test_counters_and_perf_sum(self):
        merged = aggregate_worker_metrics(
            self._entries([_worker_document(completed=3),
                           _worker_document(completed=5)]))
        assert merged["scheduler"]["counters"]["completed"] == 8
        assert merged["scheduler"]["jobs"] == 4
        assert merged["perf"]["counters"]["cache.stage.hit"] == 2
        assert merged["perf"]["timers"]["plan"]["calls"] == 8
        assert merged["cache"]["memory"]["entries"] == 4

    def test_engine_histograms_bucket_merge(self):
        merged = aggregate_worker_metrics(
            self._entries([_worker_document(engine=_engine_snapshot(3)),
                           _worker_document(
                               engine=_engine_snapshot(5))]))
        histograms = merged["metrics"]["histograms"]
        assert len(histograms) == 1
        assert histograms[0]["count"] == 8
        assert "p99" in histograms[0]  # re-summarized after merge

    def test_unhealthy_worker_row_survives(self):
        merged = aggregate_worker_metrics(
            self._entries([_worker_document(), None]))
        assert [row["healthy"] for row in merged["workers"]] \
            == [True, False]
        assert merged["scheduler"]["counters"]["completed"] == 3
        assert merged["dispatcher"]["routed_total"] == 4

    def test_document_validates_and_renders_prometheus(self):
        merged = aggregate_worker_metrics(
            self._entries([_worker_document(),
                           _worker_document()]),
            uptime_s=1.0, started_unix=2.0, ring_replicas=160)
        assert metrics_problems(merged) == []
        assert validate_service_metrics(merged) == []
        text = prometheus_text(merged)
        assert 'bc_worker_up{worker="0"} 1' in text
        assert 'bc_worker_routed_total{worker="1"} 3' in text
        assert "bc_dispatcher_workers 2" in text

    def test_rejects_malformed_worker_rows(self):
        merged = aggregate_worker_metrics(
            self._entries([_worker_document()]))
        merged["workers"][0]["routed"] = "three"
        problems = metrics_problems(merged)
        assert any("routed" in problem for problem in problems)
        merged["dispatcher"] = {"workers": 1}
        problems = metrics_problems(merged)
        assert any("routed_total" in problem for problem in problems)


_DEGRADED_DRIVER = r"""
import json
import sys
import urllib.request

out_path = sys.argv[1]

import importlib.abc

class BlockOptionalDeps(importlib.abc.MetaPathFinder):
    _BLOCKED = ("repro.obs", "repro.cache")

    def find_spec(self, fullname, path=None, target=None):
        for prefix in self._BLOCKED:
            if fullname == prefix or fullname.startswith(prefix + "."):
                raise ImportError(f"{fullname} blocked for test")
        return None

sys.meta_path.insert(0, BlockOptionalDeps())

from repro.service import ServiceConfig, start_pool, stop_pool

config = ServiceConfig(port=0, jobs=1, workers=2, timeout_s=60.0)
pool, _ = start_pool(config)
try:
    body = json.dumps({
        "schema": "bundle-charging/request/v1",
        "deployment": {"kind": "uniform", "n": 25, "seed": 11,
                       "field_side_m": 300.0},
        "planner": "BC",
        "radius_m": 20.0,
    }).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{pool.port}/v1/plan", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as response:
        document = json.loads(response.read().decode("utf-8"))
finally:
    stop_pool(pool)

with open(out_path, "w", encoding="utf-8") as handle:
    json.dump({"payload": document["payload"],
               "payload_sha256": document["payload_sha256"],
               "cache": document["cache"]}, handle, sort_keys=True)
"""


def test_degraded_pool_serves_identical_payloads(tmp_path):
    # The pool must keep the byte-identity contract with repro.obs
    # and repro.cache both unimportable: no provenance, cache "off",
    # same payload bytes.
    out_path = str(tmp_path / "degraded.json")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    completed = subprocess.run(
        [sys.executable, "-c", _DEGRADED_DRIVER, out_path],
        capture_output=True, text=True, env=env, timeout=300)
    assert completed.returncode == 0, completed.stderr
    with open(out_path, encoding="utf-8") as handle:
        degraded = json.load(handle)
    assert degraded["cache"] == "off"

    single, _ = start_server(ServiceConfig(port=0, jobs=2,
                                           timeout_s=60.0))
    try:
        _, _, expected = post_json(
            f"http://127.0.0.1:{single.port}/v1/plan",
            small_request())
    finally:
        stop_server(single)
    assert degraded["payload"] == expected["payload"]
    assert degraded["payload_sha256"] == expected["payload_sha256"]
