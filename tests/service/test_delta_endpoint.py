"""POST /v1/plan/delta over live HTTP: identity, chaining, errors."""

from __future__ import annotations

import os

import pytest

from repro.delta import DELTA_REQUEST_SCHEMA, delta_kernel_sha256
from repro.service import ServiceConfig

from .conftest import post_json, small_request


def delta_body(handle, deltas=None, **overrides):
    body = {
        "schema": DELTA_REQUEST_SCHEMA,
        "session": handle,
        "deltas": deltas if deltas is not None else [],
    }
    body.update(overrides)
    return body


MOVE = {"type": "sensor_moved", "v": 1, "index": 0,
        "x": 12.5, "y": 140.0}


def establish(url):
    status, headers, envelope = post_json(url + "/v1/plan",
                                          small_request())
    assert status == 200
    handle = headers.get("X-BC-Session")
    assert handle == envelope["payload"]["request_sha256"]
    return handle, envelope["payload"]


class TestEmptyDeltaIdentity:
    def test_noop_repair_is_byte_identical(self, live_server):
        _, url = live_server()
        handle, plan_payload = establish(url)
        status, headers, envelope = post_json(
            url + "/v1/plan/delta", delta_body(handle))
        assert status == 200
        payload = envelope["payload"]
        assert payload["plan"] == plan_payload["plan"]
        assert payload["metrics"] == plan_payload["metrics"]
        assert payload["repair"]["strategy"] == "noop"
        # No successor: the handle chain does not advance on a noop.
        assert headers["X-BC-Session"] == handle
        assert payload["session"] == handle

    def test_repeat_noop_is_a_cache_hit_with_identical_digest(
            self, live_server):
        _, url = live_server(cache_entries=64)
        handle, _ = establish(url)
        first = post_json(url + "/v1/plan/delta", delta_body(handle))
        second = post_json(url + "/v1/plan/delta", delta_body(handle))
        assert first[2]["payload"] == second[2]["payload"]
        assert second[1]["X-BC-Cache"] == "hit"


class TestRepairChaining:
    def test_repair_mints_successor_and_chains(self, live_server):
        _, url = live_server()
        handle, _ = establish(url)
        status, headers, envelope = post_json(
            url + "/v1/plan/delta", delta_body(handle, [MOVE]))
        assert status == 200
        successor = headers["X-BC-Session"]
        assert successor.startswith(handle + ".")
        assert envelope["payload"]["session"] == successor
        assert envelope["payload"]["repair"]["strategy"] \
            in ("repair", "full")
        # The successor is itself addressable.
        move2 = dict(MOVE, index=1, x=200.0, y=30.0)
        status2, headers2, _ = post_json(
            url + "/v1/plan/delta", delta_body(successor, [move2]))
        assert status2 == 200
        assert headers2["X-BC-Session"].startswith(handle + ".")

    def test_repair_is_deterministic_across_servers(self, live_server):
        _, url_a = live_server()
        _, url_b = live_server()
        results = []
        for url in (url_a, url_b):
            handle, _ = establish(url)
            _, headers, envelope = post_json(
                url + "/v1/plan/delta", delta_body(handle, [MOVE]))
            results.append((headers["X-BC-Session"],
                            envelope["payload"]))
        assert results[0] == results[1]

    def test_shadow_verify_does_not_change_bytes(self, live_server):
        _, url_plain = live_server()
        _, url_shadow = live_server(delta_shadow_verify=True,
                                    delta_max_ratio=2.0)
        payloads = []
        for url in (url_plain, url_shadow):
            handle, _ = establish(url)
            _, headers, envelope = post_json(
                url + "/v1/plan/delta", delta_body(handle, [MOVE]))
            payloads.append(envelope["payload"])
            if url is url_shadow:
                ratio = float(headers["X-BC-Delta-Ratio"])
                assert ratio <= 2.0
        assert payloads[0] == payloads[1]


class TestErrorEnvelopes:
    def test_unknown_session_is_404(self, live_server):
        _, url = live_server()
        status, _, envelope = post_json(
            url + "/v1/plan/delta", delta_body("f" * 64))
        assert status == 404
        assert envelope["error"]["code"] == "unknown-session"

    def test_stale_kernel_pin_is_409(self, live_server):
        _, url = live_server()
        handle, _ = establish(url)
        status, _, envelope = post_json(
            url + "/v1/plan/delta",
            delta_body(handle, kernel_sha256="0" * 64))
        assert status == 409
        assert envelope["error"]["code"] == "stale-kernel"

    def test_matching_kernel_pin_passes(self, live_server):
        _, url = live_server()
        handle, _ = establish(url)
        status, _, _ = post_json(
            url + "/v1/plan/delta",
            delta_body(handle, kernel_sha256=delta_kernel_sha256()))
        assert status == 200

    def test_malformed_body_is_400(self, live_server):
        _, url = live_server()
        status, _, envelope = post_json(
            url + "/v1/plan/delta",
            {"schema": DELTA_REQUEST_SCHEMA, "session": "x",
             "deltas": [{"type": "nope"}]})
        assert status == 400
        assert envelope["error"]["code"] == "invalid-request"
        assert envelope["error"]["problems"]

    def test_wrong_schema_is_400_unsupported(self, live_server):
        _, url = live_server()
        status, _, envelope = post_json(
            url + "/v1/plan/delta",
            {"schema": "nope/v9", "session": "x", "deltas": []})
        assert status == 400
        assert envelope["error"]["code"] == "unsupported-schema"


@pytest.mark.skipif(not hasattr(os, "fork"),
                    reason="worker pool needs os.fork")
class TestPoolRouting:
    def test_session_survives_multi_worker_pool(self):
        from repro.service import start_pool, stop_pool
        config = ServiceConfig(port=0, jobs=2, workers=2,
                               timeout_s=60.0)
        pool, _ = start_pool(config)
        try:
            url = f"http://127.0.0.1:{pool.port}"
            handle, plan_payload = establish(url)
            status, headers, envelope = post_json(
                url + "/v1/plan/delta", delta_body(handle))
            assert status == 200
            assert envelope["payload"]["plan"] == plan_payload["plan"]
            assert headers["X-BC-Session"] == handle
            # Repairs route by the handle's root segment, so the
            # session's whole lineage stays on the minting worker.
            status2, headers2, _ = post_json(
                url + "/v1/plan/delta", delta_body(handle, [MOVE]))
            assert status2 == 200
            assert headers2["X-BC-Worker"] == headers["X-BC-Worker"]
        finally:
            stop_pool(pool)
