"""Shared fixtures for the planning-service tests."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

import pytest

from repro.service import ServiceConfig, start_server, stop_server


def small_request(**overrides: Any) -> Dict[str, Any]:
    """A small valid planning request (fast to execute in tests)."""
    body: Dict[str, Any] = {
        "schema": "bundle-charging/request/v1",
        "deployment": {"kind": "uniform", "n": 25, "seed": 11,
                       "field_side_m": 300.0},
        "planner": "BC",
        "radius_m": 20.0,
    }
    body.update(overrides)
    return body


def http_call(url: str, body: Optional[bytes] = None
              ) -> Tuple[int, Dict[str, str], Any]:
    """GET/POST ``url``; return (status, headers, parsed JSON body)."""
    request = urllib.request.Request(
        url, data=body,
        headers={"Content-Type": "application/json"} if body else {})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            raw = response.read()
            status = response.status
            headers = dict(response.headers)
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        headers = dict(error.headers)
    return status, headers, json.loads(raw.decode("utf-8"))


def post_json(url: str, document: Any) -> Tuple[int, Dict[str, str], Any]:
    return http_call(url, json.dumps(document).encode("utf-8"))


@pytest.fixture
def live_server():
    """Start servers on ephemeral ports; stop them all at teardown."""
    running = []

    def start(**overrides: Any):
        config = ServiceConfig(**{"port": 0, "jobs": 2,
                                  "queue_limit": 8, "timeout_s": 60.0,
                                  **overrides})
        server, _ = start_server(config)
        running.append(server)
        return server, f"http://{config.host}:{server.port}"

    yield start
    for server in running:
        stop_server(server, drain=True)
