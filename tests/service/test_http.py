"""Tests for the HTTP front end (routing, errors, headers, batch)."""

import json

from repro.service import METRICS_SCHEMA_V2, response_problems

from .conftest import http_call, post_json, small_request


class TestEndpoints:
    def test_healthz(self, live_server):
        _, base = live_server()
        status, _, doc = http_call(f"{base}/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["draining"] is False

    def test_metrics_schema_and_shape(self, live_server):
        _, base = live_server()
        status, _, doc = http_call(f"{base}/metrics")
        assert status == 200
        assert doc["schema"] == METRICS_SCHEMA_V2
        assert "counters" in doc["scheduler"]
        assert "perf" in doc
        assert doc["cache"] is not None  # caching on by default

    def test_unknown_path_404(self, live_server):
        _, base = live_server()
        status, _, doc = http_call(f"{base}/v2/plan")
        assert status == 404
        assert doc["error"]["code"] == "not-found"

    def test_post_to_get_endpoint_405(self, live_server):
        _, base = live_server()
        status, _, doc = http_call(f"{base}/healthz", b"{}")
        assert status == 405
        assert doc["error"]["code"] == "method-not-allowed"


class TestPlanEndpoint:
    def test_ok_response_and_headers(self, live_server):
        _, base = live_server()
        status, headers, doc = post_json(f"{base}/v1/plan",
                                         small_request())
        assert status == 200
        assert response_problems(doc) == []
        assert doc["cache"] == "miss"
        assert headers["X-BC-Cache"] == "miss"
        assert headers["X-BC-Request-SHA256"] == \
            doc["payload"]["request_sha256"]
        assert doc["provenance"]["request_sha256"] == \
            doc["payload"]["request_sha256"]

    def test_malformed_json_400(self, live_server):
        _, base = live_server()
        status, _, doc = http_call(f"{base}/v1/plan", b"{broken")
        assert status == 400
        assert doc["error"]["code"] == "invalid-json"

    def test_invalid_request_400_with_problems(self, live_server):
        _, base = live_server()
        status, _, doc = post_json(f"{base}/v1/plan",
                                   small_request(radius_m=-1.0))
        assert status == 400
        assert doc["error"]["code"] == "invalid-request"
        assert doc["error"]["problems"]

    def test_unknown_planner_400(self, live_server):
        _, base = live_server()
        status, _, doc = post_json(f"{base}/v1/plan",
                                   small_request(planner="NOPE"))
        assert status == 400
        assert doc["error"]["code"] == "unknown-planner"

    def test_planner_allowlist_enforced(self, live_server):
        _, base = live_server(planners=("SC",))
        status, _, doc = post_json(f"{base}/v1/plan", small_request())
        assert status == 400
        assert doc["error"]["code"] == "planner-not-served"
        status, _, doc = post_json(f"{base}/v1/plan",
                                   small_request(planner="SC"))
        assert status == 200

    def test_oversized_body_413(self, live_server):
        _, base = live_server(max_body_bytes=64)
        status, _, doc = http_call(f"{base}/v1/plan",
                                   json.dumps(small_request()).encode())
        assert status == 413
        assert doc["error"]["code"] == "payload-too-large"

    def test_cache_off_server_reports_off(self, live_server):
        _, base = live_server(use_cache=False)
        for _ in range(2):
            status, headers, doc = post_json(f"{base}/v1/plan",
                                             small_request())
            assert status == 200
            assert doc["cache"] == "off"
            assert headers["X-BC-Cache"] == "off"


class TestBatchEndpoint:
    def test_mixed_batch(self, live_server):
        _, base = live_server()
        batch = {"requests": [small_request(),
                              small_request(planner="NOPE"),
                              small_request(seed=2)]}
        status, _, doc = post_json(f"{base}/v1/batch", batch)
        assert status == 200
        responses = doc["responses"]
        assert [r["status"] for r in responses] == ["ok", "error", "ok"]
        assert responses[1]["error"]["code"] == "unknown-planner"
        assert all(response_problems(r) == [] for r in responses)

    def test_batch_too_large_400(self, live_server):
        _, base = live_server(max_batch=2)
        batch = {"requests": [small_request(seed=s) for s in range(3)]}
        status, _, doc = post_json(f"{base}/v1/batch", batch)
        assert status == 400
        assert doc["error"]["code"] == "batch-too-large"

    def test_empty_batch_400(self, live_server):
        _, base = live_server()
        status, _, doc = post_json(f"{base}/v1/batch", {"requests": []})
        assert status == 400
        assert doc["error"]["code"] == "invalid-request"
