"""The service replay contract: byte-identical payloads, everywhere.

This is the acceptance test of the ISSUE's determinism criterion:
serving the same request body twice — including against a *fresh*
server with a fresh cache — must produce byte-identical response
payloads, with cache/provenance/timing confined to the envelope and
transport headers.
"""

import json

from repro.obs import validate_response
from repro.service import canonical_json

from .conftest import http_call, post_json, small_request


def payload_bytes(doc) -> bytes:
    return canonical_json(doc["payload"]).encode("utf-8")


class TestReplayDeterminism:
    def test_same_server_repeat_is_identical_and_hits(self, live_server):
        _, base = live_server()
        _, _, first = post_json(f"{base}/v1/plan", small_request())
        _, _, second = post_json(f"{base}/v1/plan", small_request())
        assert payload_bytes(first) == payload_bytes(second)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert first["payload_sha256"] == second["payload_sha256"]

    def test_fresh_server_reproduces_payload_bytes(self, live_server):
        _, base_a = live_server()
        _, base_b = live_server()  # fresh server, fresh cache
        _, _, doc_a = post_json(f"{base_a}/v1/plan", small_request())
        _, _, doc_b = post_json(f"{base_b}/v1/plan", small_request())
        assert payload_bytes(doc_a) == payload_bytes(doc_b)
        assert doc_b["cache"] == "miss"  # fresh cache recomputed it

    def test_equivalent_bodies_converge(self, live_server):
        _, base = live_server()
        explicit = small_request(tsp_strategy="nn+2opt", seed=0,
                                 charging={"model": "paper"})
        _, _, doc_a = post_json(f"{base}/v1/plan", small_request())
        _, _, doc_b = post_json(f"{base}/v1/plan", explicit)
        assert payload_bytes(doc_a) == payload_bytes(doc_b)
        assert doc_b["cache"] == "hit"  # same canonical request

    def test_nondeterminism_is_confined_to_envelope(self, live_server):
        _, base = live_server()
        _, _, first = post_json(f"{base}/v1/plan", small_request())
        _, _, second = post_json(f"{base}/v1/plan", small_request())
        # The envelope may differ (cache outcome, provenance timing)...
        assert first["cache"] != second["cache"]
        # ...but stripping the transport keys leaves identical bodies.
        for doc in (first, second):
            doc.pop("provenance", None)
            doc.pop("cache", None)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_envelopes_pass_schema_validation(self, live_server):
        _, base = live_server()
        _, _, ok_doc = post_json(f"{base}/v1/plan", small_request())
        assert validate_response(ok_doc) == []
        _, _, error_doc = http_call(f"{base}/v1/plan", b"nope")
        assert validate_response(error_doc) == []


class TestTracedService:
    def test_trace_written_and_valid_on_shutdown(self, tmp_path):
        from repro.obs.validate import validate_jsonl
        from repro.service import (ServiceConfig, start_server,
                                   stop_server)

        trace_dir = tmp_path / "traces"
        server, _ = start_server(ServiceConfig(
            port=0, jobs=2, trace_dir=str(trace_dir)))
        base = f"http://127.0.0.1:{server.port}"
        try:
            _, _, doc = post_json(f"{base}/v1/plan", small_request())
            assert doc["status"] == "ok"
        finally:
            stop_server(server, drain=True)
        trace_path = trace_dir / "service.jsonl"
        assert trace_path.exists()
        assert validate_jsonl(str(trace_path)) == []
        events = [json.loads(line)
                  for line in trace_path.read_text().splitlines()]
        spans = [e for e in events if e.get("type") == "span"]
        assert any(e["name"] == "service.request" for e in spans)
