"""Tests for the micro-batching scheduler and admission control."""

import threading
import time

import pytest

from repro.service import canonical_request
from repro.service.scheduler import (DrainingError, OverloadedError,
                                     PlanningScheduler)

from .conftest import small_request


def requests(count):
    """``count`` distinct canonical requests (distinct seeds)."""
    return [canonical_request(small_request(seed=seed))
            for seed in range(count)]


class GatedCompute:
    """A compute stub whose executions block until released."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, request):
        with self._lock:
            self.calls += 1
        if not self.gate.wait(timeout=30):
            raise TimeoutError("gate never released")
        return {"request": request}, "off"


class TestMicroBatching:
    def test_identical_requests_share_one_compute(self):
        compute = GatedCompute()
        scheduler = PlanningScheduler(compute, jobs=2, queue_limit=8)
        request = canonical_request(small_request())
        batches = [scheduler.submit(request) for _ in range(5)]
        assert len({id(batch) for batch in batches}) == 1
        assert batches[0].waiters == 5
        compute.gate.set()
        assert scheduler.wait(batches[0], timeout_s=30)
        assert compute.calls == 1
        stats = scheduler.stats()
        assert stats["counters"]["accepted"] == 5
        assert stats["counters"]["joined"] == 4
        assert stats["counters"]["completed"] == 1
        scheduler.shutdown()

    def test_distinct_requests_do_not_batch(self):
        compute = GatedCompute()
        compute.gate.set()
        scheduler = PlanningScheduler(compute, jobs=2, queue_limit=8)
        batches = [scheduler.submit(request)
                   for request in requests(3)]
        for batch in batches:
            assert scheduler.wait(batch, timeout_s=30)
        assert compute.calls == 3
        scheduler.shutdown()


class TestAdmissionControl:
    def test_exactly_k_rejections_at_queue_plus_k(self):
        queue_limit, extra = 4, 3
        compute = GatedCompute()
        scheduler = PlanningScheduler(compute, jobs=2,
                                      queue_limit=queue_limit)
        admitted = [scheduler.submit(request)
                    for request in requests(queue_limit)]
        rejections = 0
        for request in requests(queue_limit + extra)[queue_limit:]:
            with pytest.raises(OverloadedError):
                scheduler.submit(request)
            rejections += 1
        assert rejections == extra
        assert scheduler.stats()["counters"]["rejected"] == extra
        # Joining a full queue is still admitted (no new work).
        joined = scheduler.submit(admitted[0].request)
        assert joined is admitted[0]
        compute.gate.set()
        for batch in admitted:
            assert scheduler.wait(batch, timeout_s=30)
        scheduler.shutdown()
        stats = scheduler.stats()
        assert stats["open_batches"] == 0
        assert stats["queue_depth"] == 0

    def test_capacity_frees_after_completion(self):
        compute = GatedCompute()
        scheduler = PlanningScheduler(compute, jobs=1, queue_limit=2)
        first, second = [scheduler.submit(request)
                         for request in requests(2)]
        with pytest.raises(OverloadedError):
            scheduler.submit(canonical_request(small_request(seed=99)))
        compute.gate.set()
        assert scheduler.wait(first, timeout_s=30)
        assert scheduler.wait(second, timeout_s=30)
        third = scheduler.submit(
            canonical_request(small_request(seed=99)))
        assert scheduler.wait(third, timeout_s=30)
        scheduler.shutdown()


class TestFailuresAndTimeouts:
    def test_compute_failure_settles_batch(self):
        def explode(request):
            raise ValueError("planner blew up")

        scheduler = PlanningScheduler(explode, jobs=1, queue_limit=4)
        batch = scheduler.submit(canonical_request(small_request()))
        assert scheduler.wait(batch, timeout_s=30)
        assert isinstance(batch.error, ValueError)
        assert scheduler.stats()["counters"]["failed"] == 1
        scheduler.shutdown()

    def test_wait_timeout_is_counted(self):
        compute = GatedCompute()
        scheduler = PlanningScheduler(compute, jobs=1, queue_limit=4)
        batch = scheduler.submit(canonical_request(small_request()))
        assert not scheduler.wait(batch, timeout_s=0.05)
        assert scheduler.stats()["counters"]["timeouts"] == 1
        compute.gate.set()
        assert scheduler.wait(batch, timeout_s=30)
        scheduler.shutdown()


class TestShutdown:
    def test_draining_rejects_new_work(self):
        compute = GatedCompute()
        compute.gate.set()
        scheduler = PlanningScheduler(compute, jobs=1, queue_limit=4)
        scheduler.shutdown(drain=True)
        with pytest.raises(DrainingError):
            scheduler.submit(canonical_request(small_request()))
        assert scheduler.stats()["counters"]["drained"] == 1

    def test_graceful_drain_finishes_open_batches(self):
        compute = GatedCompute()
        scheduler = PlanningScheduler(compute, jobs=2, queue_limit=8)
        batches = [scheduler.submit(request)
                   for request in requests(5)]
        releaser = threading.Timer(0.1, compute.gate.set)
        releaser.start()
        scheduler.shutdown(drain=True)
        releaser.join()
        for batch in batches:
            assert batch.done.is_set()
            assert batch.error is None
        assert scheduler.stats()["counters"]["completed"] == 5

    def test_hard_shutdown_settles_queued_with_error(self):
        compute = GatedCompute()
        scheduler = PlanningScheduler(compute, jobs=1, queue_limit=8)
        batches = [scheduler.submit(request)
                   for request in requests(4)]
        for _ in range(2000):  # until the worker holds batch 0
            if compute.calls:
                break
            time.sleep(0.005)
        assert compute.calls == 1
        # Release the gate mid-shutdown so the join can complete, while
        # batches 1..3 never start.
        releaser = threading.Timer(0.1, compute.gate.set)
        releaser.start()
        scheduler.shutdown(drain=False)
        releaser.join()
        assert all(batch.done.is_set() for batch in batches)
        assert all(isinstance(batch.error, DrainingError)
                   for batch in batches[1:])
        assert compute.calls == 1
