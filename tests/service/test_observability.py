"""Serving telemetry: /metrics v2, Prometheus exposition, access log,
and the byte-identity contract (metrics must be a pure observer).
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

from repro.service import (ACCESS_SCHEMA, METRICS_SCHEMA_V2,
                           access_record_problems, metrics_problems,
                           prometheus_text)

from .conftest import http_call, post_json, small_request


def _fetch_text(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=60) as response:
        return (response.status, dict(response.headers),
                response.read().decode("utf-8"))


def _read_log(path, expect_lines):
    # Access records are written just after the response bytes go out,
    # so poll briefly instead of racing the handler thread.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        lines = path.read_text().splitlines() if path.exists() else []
        if len(lines) >= expect_lines:
            return lines
        time.sleep(0.01)
    raise AssertionError(
        f"access log never reached {expect_lines} lines: {lines!r}")


class TestMetricsV2:
    def test_document_validates_and_carries_uptime(self, live_server):
        _, base = live_server()
        status, _, doc = http_call(f"{base}/metrics")
        assert status == 200
        assert doc["schema"] == METRICS_SCHEMA_V2
        assert metrics_problems(doc) == []
        assert isinstance(doc["uptime_s"], float)
        assert isinstance(doc["started_unix"], float)

    def test_request_histograms_appear_after_traffic(self, live_server):
        _, base = live_server()
        status, _, _ = post_json(f"{base}/v1/plan", small_request())
        assert status == 200
        _, _, doc = http_call(f"{base}/metrics")
        names = {h["name"] for h in doc["metrics"]["histograms"]}
        assert "service.request_seconds" in names
        assert "service.queue_wait_seconds" in names
        assert "service.compute_seconds" in names
        request_series = [h for h in doc["metrics"]["histograms"]
                          if h["name"] == "service.request_seconds"]
        labels = request_series[0]["labels"]
        assert labels["planner"] == "BC"
        assert labels["outcome"] in ("miss", "hit", "joined", "off")
        assert request_series[0]["p50"] is not None

    def test_metrics_disabled_server_omits_engine_series(
            self, live_server):
        _, base = live_server(metrics=False)
        post_json(f"{base}/v1/plan", small_request())
        _, _, doc = http_call(f"{base}/metrics")
        assert metrics_problems(doc) == []
        assert doc["metrics"] is None

    def test_v1_documents_still_validate(self):
        v1 = {"schema": "bundle-charging/service-metrics/v1",
              "scheduler": {"counters": {}}, "perf": {}, "cache": None}
        assert metrics_problems(v1) == []


class TestPrometheusNegotiation:
    def test_query_parameter_selects_text(self, live_server):
        _, base = live_server()
        post_json(f"{base}/v1/plan", small_request())
        status, headers, text = _fetch_text(
            f"{base}/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE bc_uptime_seconds gauge" in text
        assert "bc_service_request_seconds_bucket" in text
        assert 'le="+Inf"' in text

    def test_accept_header_selects_text(self, live_server):
        _, base = live_server()
        status, headers, text = _fetch_text(
            f"{base}/metrics", headers={"Accept": "text/plain"})
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "bc_scheduler_" in text

    def test_default_remains_json(self, live_server):
        _, base = live_server()
        status, headers, doc = http_call(f"{base}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        assert doc["schema"] == METRICS_SCHEMA_V2

    def test_prometheus_text_renders_offline_document(self, live_server):
        _, base = live_server()
        post_json(f"{base}/v1/plan", small_request())
        _, _, doc = http_call(f"{base}/metrics")
        text = prometheus_text(doc)
        assert "bc_process_start_time_seconds" in text
        assert "bc_perf_" in text


class TestAccessLog:
    def test_every_request_logged_and_valid(self, live_server,
                                            tmp_path):
        log_path = tmp_path / "access.jsonl"
        _, base = live_server(access_log=str(log_path))
        post_json(f"{base}/v1/plan", small_request())
        post_json(f"{base}/v1/plan", small_request())  # cache hit
        http_call(f"{base}/nope")  # 404
        lines = _read_log(log_path, 3)
        records = [json.loads(line) for line in lines]
        for record in records:
            assert record["schema"] == ACCESS_SCHEMA
            assert access_record_problems(record) == []
            assert record["latency_s"] >= 0.0
        plans = [r for r in records if r["path"] == "/v1/plan"]
        assert [r["status"] for r in plans] == [200, 200]
        assert plans[0]["planner"] == "BC"
        assert plans[0]["outcome"] == "miss"
        assert plans[1]["outcome"] == "hit"
        assert plans[0]["digest"] == plans[1]["digest"]
        missing = [r for r in records if r["path"] == "/nope"]
        assert missing[0]["method"] == "GET"
        assert missing[0]["status"] == 404
        assert missing[0]["error"] == "not-found"

    def test_error_requests_carry_code(self, live_server, tmp_path):
        log_path = tmp_path / "access.jsonl"
        _, base = live_server(access_log=str(log_path))
        post_json(f"{base}/v1/plan", small_request(planner="NOPE"))
        record = json.loads(_read_log(log_path, 1)[0])
        assert record["status"] == 400
        assert record["error"] == "unknown-planner"


_IDENTITY_DRIVER = r"""
import json
import sys
import urllib.request

mode, out_path = sys.argv[1], sys.argv[2]

if mode == "block":
    import importlib.abc

    class BlockObs(importlib.abc.MetaPathFinder):
        def find_spec(self, fullname, path=None, target=None):
            if fullname == "repro.obs" or \
                    fullname.startswith("repro.obs."):
                raise ImportError(f"{fullname} blocked for test")
            return None

    sys.meta_path.insert(0, BlockObs())

from repro.service import ServiceConfig, start_server, stop_server

config = ServiceConfig(port=0, jobs=2, timeout_s=60.0,
                       metrics=(mode != "off"))
server, _ = start_server(config)
try:
    body = json.dumps({
        "schema": "bundle-charging/request/v1",
        "deployment": {"kind": "uniform", "n": 25, "seed": 11,
                       "field_side_m": 300.0},
        "planner": "BC",
        "radius_m": 20.0,
    }).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/v1/plan", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as response:
        document = json.loads(response.read().decode("utf-8"))
finally:
    stop_server(server, drain=True)

canonical = json.dumps(
    {"payload": document["payload"],
     "payload_sha256": document["payload_sha256"]},
    sort_keys=True, separators=(",", ":"))
with open(out_path, "w", encoding="utf-8") as handle:
    handle.write(canonical)
"""


def _plan_payload_bytes(mode, out_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    completed = subprocess.run(
        [sys.executable, "-c", _IDENTITY_DRIVER, mode, out_path],
        capture_output=True, text=True, env=env, timeout=300)
    assert completed.returncode == 0, completed.stderr
    with open(out_path, "rb") as handle:
        return handle.read()


def test_plan_payload_identical_with_metrics_on_off_absent(tmp_path):
    # Telemetry must be a pure observer: the planning payload bytes
    # cannot depend on whether metrics are on, off, or repro.obs is
    # not importable at all.
    on = _plan_payload_bytes("on", str(tmp_path / "on.json"))
    off = _plan_payload_bytes("off", str(tmp_path / "off.json"))
    blocked = _plan_payload_bytes("block", str(tmp_path / "block.json"))
    assert on == off == blocked
    assert b'"payload_sha256"' in on
