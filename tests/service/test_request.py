"""Tests for the service wire protocol (request/response schemas)."""

import pytest

from repro.constants import DELTA_J, FIELD_SIDE_M, MOVE_COST_J_PER_M
from repro.service import request as req
from repro.service.request import (RequestError, build_cost,
                                   canonical_json, canonical_request,
                                   error_envelope, ok_envelope,
                                   payload_digest, request_digest,
                                   request_problems, response_problems)

from .conftest import small_request


class TestCanonicalization:
    def test_minimal_request_fills_defaults(self):
        canonical = canonical_request(small_request())
        assert canonical["tsp_strategy"] == "nn+2opt"
        assert canonical["seed"] == 0
        charging = canonical["charging"]
        assert charging["model"] == "friis"
        assert charging["params"] == {"alpha": 36.0, "beta": 30.0,
                                      "source_power_w": 0.9 / 60.0}
        assert charging["move_cost_j_per_m"] == MOVE_COST_J_PER_M
        assert charging["delta_j"] == DELTA_J
        assert charging["dwell_policy"] == "simultaneous"

    def test_schema_defaulted_when_absent(self):
        body = small_request()
        del body["schema"]
        assert canonical_request(body)["schema"] == req.REQUEST_SCHEMA

    def test_equivalent_bodies_share_a_digest(self):
        explicit = canonical_request(small_request(
            tsp_strategy="nn+2opt", seed=0,
            charging={"model": "paper"}))
        minimal = canonical_request(small_request())
        assert explicit == minimal
        assert request_digest(explicit) == request_digest(minimal)

    def test_int_radius_normalizes_to_float(self):
        as_int = canonical_request(small_request(radius_m=20))
        as_float = canonical_request(small_request(radius_m=20.0))
        assert request_digest(as_int) == request_digest(as_float)

    def test_field_side_defaults_to_paper(self):
        body = small_request()
        del body["deployment"]["field_side_m"]
        canonical = canonical_request(body)
        assert canonical["deployment"]["field_side_m"] == FIELD_SIDE_M

    def test_inline_deployment(self):
        body = small_request(deployment={
            "kind": "inline", "sensors": [[1.0, 2.0], [3, 4]],
            "field_side_m": 100.0})
        canonical = canonical_request(body)
        assert canonical["deployment"]["sensors"] == [[1.0, 2.0],
                                                      [3.0, 4.0]]


class TestValidation:
    def test_unknown_planner_is_typed(self):
        with pytest.raises(RequestError) as excinfo:
            canonical_request(small_request(planner="NOPE"))
        assert excinfo.value.code == "unknown-planner"

    def test_unsupported_schema_is_typed(self):
        with pytest.raises(RequestError) as excinfo:
            canonical_request(small_request(schema="bundle/other/v9"))
        assert excinfo.value.code == "unsupported-schema"

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(RequestError) as excinfo:
            canonical_request(small_request(extra=1))
        assert any("unknown keys" in p for p in excinfo.value.problems)

    @pytest.mark.parametrize("radius", [0.0, -5.0, "wide", None,
                                        float("inf"), float("nan"), True])
    def test_bad_radius_rejected(self, radius):
        assert request_problems(small_request(radius_m=radius))

    def test_non_object_body_rejected(self):
        assert request_problems([1, 2, 3])
        assert request_problems(None)

    def test_bad_deployment_kind(self):
        problems = request_problems(small_request(
            deployment={"kind": "ring", "n": 5}))
        assert any("deployment.kind" in p for p in problems)

    def test_inline_rejects_uniform_keys(self):
        problems = request_problems(small_request(deployment={
            "kind": "inline", "sensors": [[0.0, 0.0]], "seed": 1}))
        assert any("only valid with kind 'uniform'" in p
                   for p in problems)

    def test_sensor_cap_enforced(self):
        problems = request_problems(small_request(deployment={
            "kind": "uniform", "n": req.MAX_SENSORS + 1}))
        assert problems

    def test_bad_charging_model(self):
        problems = request_problems(small_request(
            charging={"model": "quantum"}))
        assert any("charging.model" in p for p in problems)

    def test_linear_model_requires_params(self):
        problems = request_problems(small_request(
            charging={"model": "linear"}))
        assert any("required for model" in p for p in problems)

    def test_bad_strategy_rejected(self):
        assert request_problems(small_request(tsp_strategy="magic"))

    def test_collects_multiple_problems(self):
        problems = request_problems(small_request(
            planner="NOPE", radius_m=-1.0, seed="x"))
        assert len(problems) >= 3


class TestBuildCost:
    def test_paper_alias_matches_friis_defaults(self):
        canonical = canonical_request(small_request(
            charging={"model": "paper"}))
        cost = build_cost(canonical["charging"])
        assert cost.model.alpha == 36.0
        assert cost.model.beta == 30.0

    def test_ideal_model(self):
        canonical = canonical_request(small_request(charging={
            "model": "ideal",
            "params": {"efficiency": 0.5, "range_m": 10.0,
                       "source_power_w": 0.1}}))
        cost = build_cost(canonical["charging"])
        assert cost.model.range_m == 10.0

    def test_invalid_physics_rejected_at_validation(self):
        problems = request_problems(small_request(charging={
            "model": "ideal",
            "params": {"efficiency": 2.0, "range_m": 10.0,
                       "source_power_w": 0.1}}))
        assert any("rejected" in p for p in problems)


class TestEnvelopes:
    def _payload(self):
        canonical = canonical_request(small_request())
        return {"request": canonical,
                "request_sha256": request_digest(canonical),
                "plan": {"stops": []}, "metrics": {"total_j": 1.0}}

    def test_ok_envelope_round_trips(self):
        envelope = ok_envelope(self._payload(), "miss")
        assert response_problems(envelope) == []
        assert envelope["payload_sha256"] == payload_digest(
            envelope["payload"])

    def test_unknown_cache_outcome_rejected(self):
        with pytest.raises(Exception):
            ok_envelope(self._payload(), "warmish")

    def test_error_envelope_validates(self):
        envelope = error_envelope("invalid-request", "nope",
                                  ["problem 1"])
        assert response_problems(envelope) == []
        assert envelope["error"]["problems"] == ["problem 1"]

    def test_tampered_payload_detected(self):
        envelope = ok_envelope(self._payload(), "hit")
        envelope["payload"]["metrics"]["total_j"] = 999.0
        assert any("payload_sha256" in p
                   for p in response_problems(envelope))

    def test_digest_mismatch_on_modified_request(self):
        payload = self._payload()
        payload["request"]["seed"] = 5
        envelope = ok_envelope(payload, "miss")
        assert any("request_sha256" in p
                   for p in response_problems(envelope))

    def test_canonical_json_is_tight_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1.5, 2]}) == \
            '{"a":[1.5,2],"b":1}'
