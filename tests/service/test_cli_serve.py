"""Tests for the ``serve`` subcommand and ServiceConfig validation."""

import pytest

from repro.errors import ServiceError
from repro.cli import main as cli_main
from repro.service.cli import build_parser, serve_config
from repro.service.config import ServiceConfig


class TestServiceConfig:
    def test_defaults_validate(self):
        config = ServiceConfig()
        assert config.jobs == 2
        assert config.serves_planner("BC")

    @pytest.mark.parametrize("overrides", [
        {"jobs": 0}, {"queue_limit": -1}, {"timeout_s": 0.0},
        {"timeout_s": float("nan")}, {"cache_entries": 0},
        {"max_batch": 0}, {"port": 70000}, {"planners": ()},
        {"planners": ("BC", "NOPE")},
    ])
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ServiceError):
            ServiceConfig(**overrides)

    def test_allowlist_restricts(self):
        config = ServiceConfig(planners=("SC", "BC"))
        assert config.serves_planner("SC")
        assert not config.serves_planner("CSS")


class TestServeFlags:
    def test_flags_map_to_config(self):
        args = build_parser().parse_args(
            ["--port", "0", "--jobs", "3", "--queue-limit", "5",
             "--no-cache", "--planners", "BC, SC"])
        config = serve_config(args)
        assert config.port == 0
        assert config.jobs == 3
        assert config.queue_limit == 5
        assert config.use_cache is False
        assert config.planners == ("BC", "SC")

    def test_unknown_planner_exits_2(self, capsys):
        from repro.service.cli import main as serve_main
        assert serve_main(["--planners", "NOPE", "--port", "0"]) == 2
        assert "NOPE" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, capsys):
        from repro.service.cli import main as serve_main
        assert serve_main(["--jobs", "0", "--port", "0"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_top_level_cli_dispatches_serve_errors(self, capsys):
        assert cli_main(["serve", "--planners", "NOPE",
                         "--port", "0"]) == 2
        assert "NOPE" in capsys.readouterr().err
