"""Unit tests for the consistent-hash ring (`repro.service.ring`).

The two properties the worker pool leans on:

* **balance** — shard sizes stay within a fixed factor of the mean
  for every pool size the service supports in practice (2..16);
* **stability** — removing one node remaps *only* the keys it owned
  (~1/N of the corpus); every key whose owner survives keeps it.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.errors import ServiceError
from repro.service.ring import DEFAULT_REPLICAS, HashRing

#: A fixed digest corpus — sha256 like real canonical request digests.
CORPUS = [hashlib.sha256(f"request-{index}".encode()).hexdigest()
          for index in range(4000)]

#: Empirical worst max/mean at 160 vnodes over 2..16 nodes is ~1.26;
#: the bound leaves headroom without hiding a balance regression.
MAX_OVER_MEAN = 1.35
MIN_OVER_MEAN = 0.60


class TestBalance:
    @pytest.mark.parametrize("nodes", list(range(2, 17)))
    def test_shard_balance_within_fixed_bound(self, nodes: int) -> None:
        ring = HashRing([str(index) for index in range(nodes)])
        counts = ring.shard_counts(CORPUS)
        assert set(counts) == {str(index) for index in range(nodes)}
        assert sum(counts.values()) == len(CORPUS)
        mean = len(CORPUS) / nodes
        assert max(counts.values()) <= MAX_OVER_MEAN * mean
        assert min(counts.values()) >= MIN_OVER_MEAN * mean

    def test_more_replicas_tighten_the_spread(self) -> None:
        loose = HashRing(["a", "b", "c", "d"], replicas=4)
        tight = HashRing(["a", "b", "c", "d"],
                         replicas=DEFAULT_REPLICAS)

        def spread(ring: HashRing) -> int:
            counts = ring.shard_counts(CORPUS)
            return max(counts.values()) - min(counts.values())

        assert spread(tight) < spread(loose)


class TestStability:
    @pytest.mark.parametrize("nodes", [4, 8, 16])
    def test_removing_one_node_remaps_only_its_shard(
            self, nodes: int) -> None:
        ring = HashRing([str(index) for index in range(nodes)])
        owners = {digest: ring.node_for(digest) for digest in CORPUS}
        removed = str(nodes // 2)
        smaller = ring.without(removed)

        moved_from_survivors = 0
        remapped = 0
        for digest in CORPUS:
            new_owner = smaller.node_for(digest)
            if owners[digest] == removed:
                remapped += 1
                assert new_owner != removed
            elif new_owner != owners[digest]:
                moved_from_survivors += 1
        # The consistent-hashing contract: surviving owners keep every
        # key; only the removed node's ~1/N shard moves.
        assert moved_from_survivors == 0
        assert remapped <= MAX_OVER_MEAN * len(CORPUS) / nodes
        assert remapped >= MIN_OVER_MEAN * len(CORPUS) / nodes

    def test_mapping_is_deterministic_across_instances(self) -> None:
        first = HashRing(["0", "1", "2"])
        second = HashRing(["0", "1", "2"])
        for digest in CORPUS[:200]:
            assert first.node_for(digest) == second.node_for(digest)


class TestValidation:
    def test_rejects_empty_ring(self) -> None:
        with pytest.raises(ServiceError):
            HashRing([])

    def test_rejects_duplicate_nodes(self) -> None:
        with pytest.raises(ServiceError):
            HashRing(["0", "0"])

    def test_rejects_nonpositive_replicas(self) -> None:
        with pytest.raises(ServiceError):
            HashRing(["0"], replicas=0)

    def test_without_unknown_node(self) -> None:
        with pytest.raises(ServiceError):
            HashRing(["0", "1"]).without("7")

    def test_shard_counts_covers_every_node(self) -> None:
        ring = HashRing(["only"])
        assert ring.shard_counts([]) == {"only": 0}
        assert ring.node_for(CORPUS[0]) == "only"
