"""Tests for request execution and its cache integration."""

from repro.cache import StageCache
from repro.network import uniform_deployment
from repro.planners import make_planner
from repro.service import canonical_json, canonical_request
from repro.service.executor import (cache_for_service, execute_request,
                                    plan_payload, request_network)
from repro.service.config import ServiceConfig
from repro.tour import evaluate_plan

from .conftest import small_request


class TestPlanPayload:
    def test_payload_is_deterministic(self):
        request = canonical_request(small_request())
        first = canonical_json(plan_payload(request))
        second = canonical_json(plan_payload(request))
        assert first == second

    def test_payload_matches_direct_pipeline(self, paper_cost):
        request = canonical_request(small_request())
        payload = plan_payload(request)
        network = uniform_deployment(25, 11, field_side_m=300.0)
        planner = make_planner("BC", 20.0, tsp_strategy="nn+2opt",
                               seed=0)
        plan = planner.plan(network, paper_cost)
        metrics = evaluate_plan(plan, network.locations, paper_cost)
        assert payload["metrics"] == metrics.as_row()
        assert payload["sensor_count"] == 25
        assert payload["plan"]["tour_length_m"] == plan.tour_length()

    def test_inline_deployment_round_trips(self):
        request = canonical_request(small_request(deployment={
            "kind": "inline",
            "sensors": [[10.0, 10.0], [20.0, 15.0], [40.0, 40.0]],
            "field_side_m": 100.0}))
        network = request_network(request)
        assert len(network) == 3
        assert network[1].location.x == 20.0
        payload = plan_payload(request)
        assert payload["sensor_count"] == 3

    def test_sensors_required_j_follows_delta(self):
        request = canonical_request(small_request(
            charging={"model": "paper", "delta_j": 5.0}))
        network = request_network(request)
        assert all(sensor.required_j == 5.0 for sensor in network)


class TestExecuteRequest:
    def test_no_cache_reports_off(self):
        request = canonical_request(small_request())
        payload, outcome = execute_request(request, cache=None)
        assert outcome == "off"
        assert payload["request"] == request

    def test_miss_then_hit_byte_identical(self):
        request = canonical_request(small_request())
        cache = StageCache(max_entries=64)
        first, outcome_first = execute_request(request, cache)
        second, outcome_second = execute_request(request, cache)
        assert (outcome_first, outcome_second) == ("miss", "hit")
        assert canonical_json(first) == canonical_json(second)

    def test_distinct_requests_get_distinct_entries(self):
        cache = StageCache(max_entries=64)
        a = canonical_request(small_request())
        b = canonical_request(small_request(seed=3))
        _, outcome_a = execute_request(a, cache)
        _, outcome_b = execute_request(b, cache)
        assert outcome_a == "miss"
        assert outcome_b == "miss"

    def test_cache_survives_across_planners(self):
        # Same deployment, different planner: the service_request stage
        # misses but the shared deployment stage hits underneath.
        cache = StageCache(max_entries=64)
        execute_request(canonical_request(small_request()), cache)
        payload, outcome = execute_request(
            canonical_request(small_request(planner="SC")), cache)
        assert outcome == "miss"
        assert payload["request"]["planner"] == "SC"


class TestCacheForService:
    def test_enabled_by_default(self):
        assert cache_for_service(ServiceConfig(port=0)) is not None

    def test_disabled_when_requested(self):
        config = ServiceConfig(port=0, use_cache=False)
        assert cache_for_service(config) is None

    def test_cache_dir_enables_disk_store(self, tmp_path):
        config = ServiceConfig(port=0, use_cache=False,
                               cache_dir=str(tmp_path / "store"))
        cache = cache_for_service(config)
        assert cache is not None
        assert cache.disk is not None
