"""Tests for the closed-form analysis module."""

import math

import pytest

from repro.analysis import (bhh_tour_length, break_even_distance,
                            charging_energy_per_sensor,
                            expected_bundle_size, fraction_within,
                            greedy_cover_bound)
from repro.charging import (CostParameters, FriisChargingModel,
                            LinearChargingModel)
from repro.errors import ModelError


class TestBounds:
    def test_greedy_cover_bound(self):
        assert greedy_cover_bound(1) == pytest.approx(1.0)
        assert greedy_cover_bound(100) == pytest.approx(
            math.log(100) + 1.0)

    def test_greedy_cover_bound_invalid(self):
        with pytest.raises(ModelError):
            greedy_cover_bound(0)


class TestBreakEven:
    def test_paper_constants_value(self):
        cost = CostParameters.paper_defaults()
        # 5.59 * 36 / 2 - 30 = 70.62 m.
        assert break_even_distance(cost) == pytest.approx(70.62)

    def test_cheap_movement_zero(self):
        cost = CostParameters(model=FriisChargingModel(),
                              move_cost_j_per_m=0.1)
        assert break_even_distance(cost) == 0.0

    def test_non_friis_rejected(self):
        cost = CostParameters(
            model=LinearChargingModel(0.5, 10.0, 1.0))
        with pytest.raises(ModelError):
            break_even_distance(cost)

    def test_matches_two_bundle_shift(self):
        # The closed form must agree with the numerical Section V-B
        # optimizer for a separation large enough not to clamp.
        from repro.tour import two_bundle_shift
        cost = CostParameters.paper_defaults()
        radius = 10.0
        numerical = two_bundle_shift(400.0, radius, cost, steps=4000)
        analytic = break_even_distance(cost) - radius
        assert numerical == pytest.approx(analytic, abs=0.5)


class TestEstimates:
    def test_bhh_scaling(self):
        short = bhh_tour_length(50, 1000.0)
        long = bhh_tour_length(200, 1000.0)
        assert long == pytest.approx(2.0 * short)  # sqrt(4x) = 2x

    def test_bhh_trivial(self):
        assert bhh_tour_length(1, 1000.0) == 0.0
        assert bhh_tour_length(0, 1000.0) == 0.0

    def test_bhh_predicts_solver_output(self):
        # Heuristic tours land within ~25% of the BHH estimate.
        from repro.network import uniform_deployment
        from repro.tsp import solve_tsp, tour_length
        network = uniform_deployment(count=150, seed=3)
        tour = solve_tsp(network.locations)
        actual = tour_length(network.locations, tour)
        estimate = bhh_tour_length(150, 1000.0)
        assert 0.8 * estimate < actual < 1.35 * estimate

    def test_expected_bundle_size(self):
        # n * pi r^2 / A.
        value = expected_bundle_size(200, 1000.0, 40.0)
        assert value == pytest.approx(200 * math.pi * 1600 / 1e6)

    def test_expected_bundle_size_invalid(self):
        with pytest.raises(ModelError):
            expected_bundle_size(-1, 1000.0, 10.0)

    def test_charging_energy_per_sensor(self):
        cost = CostParameters.paper_defaults()
        assert charging_energy_per_sensor(cost, 0.0) == pytest.approx(
            50.0)

    def test_fraction_within(self):
        assert fraction_within([1.0, 2.0, 3.0, 4.0], 2.5) == 0.5
        assert fraction_within([], 1.0) == 0.0
