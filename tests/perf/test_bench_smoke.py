"""CI regression gate: the quick kernel benchmark + a traced run.

Runs the same harness as ``python -m repro.cli bench --quick`` on
trimmed workloads and fails when a fast path loses bit-identity or
regresses to worse than half its reference implementation's speed
(i.e. a >2x slowdown of the shipped kernels).  A traced quick
experiment rides along: its emitted JSONL must validate against the
``repro.obs`` schema — unknown span names or missing manifest fields
fail CI here.
"""

from repro.perf.bench import (_FULL, _QUICK, render_report,
                              run_benchmarks)

#: Every shipped fast path beats its reference at full scale (the SoA
#: candidates+cover entry by >10x, the distance rows — the narrowest
#: margin — by ~1.3x).  Quick-scale CI timings are noisy, so the gate
#: only fails a kernel that drops clearly below reference speed, which
#: for the shipped set means a multi-x regression from where it started.
MIN_SPEEDUP = 0.8

#: ``service_scaling`` is not a fast-vs-reference pair: its "speedup"
#: is the horizontal scaling factor (4-worker pool over one process),
#: bounded by the cores the container actually grants.  On a
#: single-core CI runner it hovers around 1.0x with the dispatcher hop
#: as noise, so it only gates against a pathological dispatcher (a
#: >2x slowdown), not against the kernel floor.
MIN_SCALING = 0.5


class TestQuickBench:
    def test_quick_bench_identity_and_no_regression(self):
        report = run_benchmarks(quick=True, out_path=None)
        assert report["all_identical"], render_report(report)
        for entry in report["entries"]:
            floor = (MIN_SCALING
                     if entry["name"].startswith("service_scaling")
                     else MIN_SPEEDUP)
            assert entry["speedup"] >= floor, (
                f"{entry['name']} regressed: {entry['speedup']}x "
                f"(fast {entry['fast_s']}s vs reference "
                f"{entry['reference_s']}s)")

    def test_workload_scales_are_consistent(self):
        assert set(_QUICK) == set(_FULL)
        for key in _QUICK:
            assert _QUICK[key] <= _FULL[key]

    def test_bench_report_embeds_provenance(self):
        from repro.obs.validate import validate_manifest
        report = run_benchmarks(quick=True, out_path=None)
        provenance = report["provenance"]
        assert validate_manifest(provenance) == []
        assert provenance["experiment"] == "bench"
        assert provenance["config"]["quick"] is True
        # The established report keys stay unchanged for trajectory
        # compatibility with older BENCH_*.json files.
        for key in ("benchmark", "quick", "python", "platform",
                    "entries", "all_identical", "perf_counters"):
            assert key in report, key


class TestTracedRunGate:
    def test_traced_quick_experiment_emits_valid_jsonl(self, tmp_path):
        """CI gate: run one experiment traced, validate the stream."""
        from repro.cli import main
        from repro.obs.jsonl import read_jsonl
        from repro.obs.validate import (assert_valid_jsonl,
                                        validate_jsonl)

        out_dir = tmp_path / "traced"
        code = main(["trace", "fig13", "--fast",
                     "--out-dir", str(out_dir)])
        assert code == 0
        trace_path = out_dir / "fig13.jsonl"
        manifest_path = out_dir / "manifest.json"
        assert trace_path.exists()
        assert manifest_path.exists()

        # Fails loudly on unknown span names, unknown event types or a
        # manifest missing a required provenance field.
        assert validate_jsonl(str(trace_path)) == []
        assert_valid_jsonl(str(trace_path))

        events = read_jsonl(str(trace_path))
        names = {event.get("name") for event in events
                 if event.get("type") == "span"}
        # The pipeline phases must actually appear in the stream.
        for expected in ("run", "seed", "deploy", "plan",
                         "obg.candidates", "obg.cover"):
            assert expected in names, expected
