"""CI regression gate: the quick kernel benchmark.

Runs the same harness as ``python -m repro.cli bench --quick`` on
trimmed workloads and fails when a fast path loses bit-identity or
regresses to worse than half its reference implementation's speed
(i.e. a >2x slowdown of the shipped kernels).
"""

from repro.perf.bench import (_FULL, _QUICK, render_report,
                              run_benchmarks)

#: A fast path that drops below half the reference speed has regressed
#: by more than 2x from where it started (all shipped kernels are >2x
#: faster than reference); fail CI then.
MIN_SPEEDUP = 0.5


class TestQuickBench:
    def test_quick_bench_identity_and_no_regression(self):
        report = run_benchmarks(quick=True, out_path=None)
        assert report["all_identical"], render_report(report)
        for entry in report["entries"]:
            assert entry["speedup"] >= MIN_SPEEDUP, (
                f"{entry['name']} regressed: {entry['speedup']}x "
                f"(fast {entry['fast_s']}s vs reference "
                f"{entry['reference_s']}s)")

    def test_workload_scales_are_consistent(self):
        assert set(_QUICK) == set(_FULL)
        for key in _QUICK:
            assert _QUICK[key] <= _FULL[key]
