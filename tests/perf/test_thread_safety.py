"""Hammer tests for the thread-safety contracts CONC001/CONC005 pin.

The registry/tracer/cache fixes landed because the linter's
concurrency rules flagged them; these tests make the same guarantees
dynamic — exact counts under a thread pool, no lost updates, no
cross-thread bleed of thread-local state.
"""

from __future__ import annotations

import threading

from repro.cache.active import activate_cache, get_active_cache
from repro.cache.stage import StageCache
from repro.obs.tracer import Tracer
from repro.perf.counters import PerfRegistry

_THREADS = 8
_ITERS = 500


def _hammer(worker, threads=_THREADS):
    pool = [threading.Thread(target=worker, args=(index,))
            for index in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestPerfRegistryUnderThreads:
    def test_counter_increments_are_exact(self):
        registry = PerfRegistry()

        def worker(_index):
            for _ in range(_ITERS):
                registry.add("ops")

        _hammer(worker)
        assert registry.counter("ops") == _THREADS * _ITERS

    def test_snapshot_during_concurrent_inserts(self):
        # Dict iteration during insert raises RuntimeError when the
        # lock is missing; under the lock it must never throw.
        registry = PerfRegistry()
        stop = threading.Event()
        errors = []

        def inserter(index):
            count = 0
            while not stop.is_set() and count < _ITERS * 4:
                registry.add(f"op.{index}.{count % 97}")
                registry.record_seconds(f"t.{index}.{count % 89}", 0.001)
                count += 1

        def snapshotter(_index):
            try:
                for _ in range(_ITERS):
                    registry.snapshot()
                    registry.instrument_view()
            except RuntimeError as exc:  # pragma: no cover - the bug
                errors.append(exc)
            finally:
                stop.set()

        pool = ([threading.Thread(target=inserter, args=(i,))
                 for i in range(4)]
                + [threading.Thread(target=snapshotter, args=(0,))])
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []

    def test_timer_totals_are_exact(self):
        registry = PerfRegistry()

        def worker(_index):
            for _ in range(_ITERS):
                registry.record_seconds("phase", 0.25)

        _hammer(worker)
        assert registry.timer_seconds("phase") == _THREADS * _ITERS * 0.25
        assert (registry.snapshot()["timers"]["phase"]["calls"]
                == _THREADS * _ITERS)


class TestTracerUnderThreads:
    def test_span_ids_unique_across_threads(self):
        tracer = Tracer(enabled=True)
        ids = []
        lock = threading.Lock()

        def worker(_index):
            local = []
            for _ in range(_ITERS):
                span = tracer.span("run")
                local.append(span.span_id)
            with lock:
                ids.extend(local)

        _hammer(worker)
        assert len(ids) == len(set(ids)) == _THREADS * _ITERS

    def test_emit_loses_no_events(self):
        tracer = Tracer(enabled=True)

        def worker(index):
            for count in range(_ITERS):
                tracer.emit({"type": "move", "i": index, "c": count})

        _hammer(worker)
        assert len(tracer.events) == _THREADS * _ITERS


class TestActiveCacheIsThreadLocal:
    def test_activation_does_not_bleed_across_threads(self):
        cache = StageCache(max_entries=4)
        seen = {}

        def worker(index):
            if index % 2:
                with activate_cache(cache):
                    seen[index] = get_active_cache()
            else:
                seen[index] = get_active_cache()

        _hammer(worker)
        for index, active in seen.items():
            assert active is (cache if index % 2 else None)

    def test_shadow_bypass_depth_is_per_thread(self):
        cache = StageCache(max_entries=4)
        cache._bypass_depth = 1
        observed = []

        def worker(_index):
            observed.append(cache._bypass_depth)

        _hammer(worker, threads=2)
        # Other threads start at depth 0; the setting thread's depth
        # never leaks into them.
        assert observed == [0, 0]
        assert cache._bypass_depth == 1


class TestStageCacheHintsUnderThreads:
    def test_hint_store_loses_no_strategies(self):
        cache = StageCache(max_entries=4, warm_start=True)

        def worker(index):
            for count in range(_ITERS):
                cache.store_tsp_hint(f"s{index}", count % 7,
                                     list(range(count % 7)))

        _hammer(worker)
        for index in range(_THREADS):
            for cities in range(7):
                assert cache.tsp_hint(f"s{index}", cities) is not None
