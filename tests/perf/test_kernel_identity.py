"""Bit-identity of the fast-path kernels against their references.

Every kernel behind :func:`repro.perf.reference_kernels` promises
*bit-identical* outputs.  These properties randomize over networks,
radii and geometric configurations and compare the two backends exactly
(no tolerances anywhere).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bundling.candidates import (candidate_member_sets,
                                       candidate_member_sets_reference,
                                       maximal_candidates,
                                       maximal_candidates_reference)
from repro.bundling.greedy import (greedy_bundles, greedy_set_cover,
                                   greedy_set_cover_reference)
from repro.geometry import Point
from repro.geometry.ellipse import (min_focal_sum_on_circle,
                                    min_focal_sum_on_circle_reference)
from repro.network import uniform_deployment
from repro.perf import reference_kernels, using_reference_kernels


def bundle_signature(bundle_set):
    return [(tuple(sorted(b.members)), b.anchor.x, b.anchor.y, b.radius)
            for b in bundle_set]


class TestBackendSwitch:
    def test_context_manager_restores_flags(self):
        assert not using_reference_kernels()
        with reference_kernels():
            assert using_reference_kernels()
            with reference_kernels():  # nestable
                assert using_reference_kernels()
            assert using_reference_kernels()
        assert not using_reference_kernels()

    def test_restored_on_exception(self):
        try:
            with reference_kernels():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not using_reference_kernels()


class TestGreedyIdentity:
    def test_selected_plans_identical_across_networks(self):
        for node_count, radius, seed in [
                (25, 8.0, 1), (60, 15.0, 2), (60, 40.0, 3),
                (120, 20.0, 4), (40, 0.5, 5)]:
            network = uniform_deployment(node_count, seed)
            fast = greedy_bundles(network, radius)
            with reference_kernels():
                slow = greedy_bundles(network, radius)
            assert bundle_signature(fast) == bundle_signature(slow)

    def test_candidate_families_identical(self):
        for node_count, radius, seed in [(30, 10.0, 7), (80, 25.0, 8)]:
            network = uniform_deployment(node_count, seed)
            fast = candidate_member_sets(network.locations, radius)
            slow = candidate_member_sets_reference(network.locations,
                                                   radius)
            assert fast == slow

    def test_maximal_pruning_identical(self):
        rng = random.Random(11)
        for _ in range(20):
            universe = rng.randint(1, 24)
            family = [
                frozenset(rng.sample(range(universe),
                                     rng.randint(1, universe)))
                for _ in range(rng.randint(1, 30))]
            assert (maximal_candidates(family)
                    == maximal_candidates_reference(family))

    @settings(deadline=None, max_examples=60)
    @given(st.data())
    def test_cover_selection_identical(self, data):
        universe = data.draw(st.integers(min_value=1, max_value=20))
        family = data.draw(st.lists(
            st.frozensets(st.integers(min_value=0, max_value=universe - 1),
                          min_size=1),
            min_size=1, max_size=25))
        # Guarantee coverability with singletons.
        family = family + [frozenset({e}) for e in range(universe)]
        assert (greedy_set_cover(family, universe)
                == greedy_set_cover_reference(family, universe))


class TestEllipseIdentity:
    @settings(deadline=None, max_examples=150)
    @given(st.floats(-50, 50), st.floats(-50, 50),
           st.floats(0.0, 30.0),
           st.floats(-80, 80), st.floats(-80, 80),
           st.floats(-80, 80), st.floats(-80, 80))
    def test_anchor_search_identical(self, cx, cy, radius, f1x, f1y,
                                     f2x, f2y):
        center = Point(cx, cy)
        focus1 = Point(f1x, f1y)
        focus2 = Point(f2x, f2y)
        fast_point, fast_sum = min_focal_sum_on_circle(
            center, radius, focus1, focus2)
        ref_point, ref_sum = min_focal_sum_on_circle_reference(
            center, radius, focus1, focus2)
        assert fast_point.x == ref_point.x
        assert fast_point.y == ref_point.y
        assert fast_sum == ref_sum
