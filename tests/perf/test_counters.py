"""Tests for the repro.perf counter/timer registry."""

import json

from repro.perf import (PERF, PerfRegistry, perf_add, perf_reset,
                        perf_snapshot, perf_timer)


class TestRegistry:
    def test_counter_accumulates(self):
        registry = PerfRegistry()
        registry.add("ops")
        registry.add("ops", 4)
        assert registry.counter("ops") == 5

    def test_timer_records_calls_and_time(self):
        registry = PerfRegistry()
        with registry.timer("work"):
            pass
        with registry.timer("work"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["timers"]["work"]["calls"] == 2
        assert snapshot["timers"]["work"]["total_s"] >= 0.0

    def test_disabled_registry_is_a_noop(self):
        registry = PerfRegistry(enabled=False)
        registry.add("ops", 3)
        with registry.timer("work"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["timers"] == {}

    def test_reset_clears_everything(self):
        registry = PerfRegistry()
        registry.add("ops", 2)
        with registry.timer("work"):
            pass
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"timers": {}, "counters": {}}

    def test_write_json(self, tmp_path):
        registry = PerfRegistry()
        registry.add("ops", 7)
        out = tmp_path / "perf.json"
        registry.write_json(out)
        data = json.loads(out.read_text())
        assert data["counters"]["ops"] == 7


class TestMergeSnapshot:
    def test_counters_and_timers_sum(self):
        parent = PerfRegistry()
        parent.add("ops", 2)
        parent.record_seconds("work", 1.0)
        worker = PerfRegistry()
        worker.add("ops", 3)
        worker.add("extra", 1)
        worker.record_seconds("work", 0.5)
        worker.record_seconds("other", 0.25)

        parent.merge_snapshot(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"] == {"ops": 5, "extra": 1}
        assert snapshot["timers"]["work"] == {"total_s": 1.5, "calls": 2}
        assert snapshot["timers"]["other"] == {"total_s": 0.25,
                                               "calls": 1}

    def test_merge_into_disabled_registry_is_noop(self):
        parent = PerfRegistry(enabled=False)
        worker = PerfRegistry()
        worker.add("ops", 3)
        parent.merge_snapshot(worker.snapshot())
        assert parent.snapshot() == {"timers": {}, "counters": {}}

    def test_merge_empty_snapshot_changes_nothing(self):
        parent = PerfRegistry()
        parent.add("ops", 1)
        before = parent.snapshot()
        parent.merge_snapshot(PerfRegistry().snapshot())
        assert parent.snapshot() == before


class TestGlobalHelpers:
    def test_global_roundtrip(self):
        perf_reset()
        perf_add("global.ops", 2)
        with perf_timer("global.work"):
            pass
        snapshot = perf_snapshot()
        assert snapshot["counters"]["global.ops"] == 2
        assert snapshot["timers"]["global.work"]["calls"] == 1
        perf_reset()
        assert PERF.snapshot() == {"timers": {}, "counters": {}}


class TestHistograms:
    def test_observe_buckets_and_stats(self):
        registry = PerfRegistry()
        registry.observe("lat", 0.0007, boundaries=(0.001, 0.01))
        registry.observe("lat", 0.005, boundaries=(0.001, 0.01))
        registry.observe("lat", 2.0, boundaries=(0.001, 0.01))
        entry = registry.snapshot()["histograms"]["lat"]
        assert entry["counts"] == [1, 1, 1]
        assert entry["count"] == 3
        assert entry["min"] == 0.0007
        assert entry["max"] == 2.0

    def test_nan_dropped_and_disabled_noop(self):
        registry = PerfRegistry()
        registry.observe("lat", float("nan"))
        assert "histograms" not in registry.snapshot()
        disabled = PerfRegistry(enabled=False)
        disabled.observe("lat", 0.5)
        assert "histograms" not in disabled.snapshot()

    def test_merge_across_jobs_workers_equals_serial(self):
        # The --jobs hand-off: each worker observes into its own
        # registry, the parent folds the snapshots, and the result
        # must match one serial registry seeing every value.
        workers = [PerfRegistry() for _ in range(3)]
        serial = PerfRegistry()
        values = [0.0007, 0.003, 0.02, 0.4, 7.0, 120.0]
        for index, value in enumerate(values):
            workers[index % 3].observe("lat", value)
            serial.observe("lat", value)
        parent = PerfRegistry()
        for worker in workers:
            parent.merge_snapshot(worker.snapshot())
        assert parent.snapshot()["histograms"] == \
            serial.snapshot()["histograms"]

    def test_merge_rejects_boundary_mismatch(self):
        left = PerfRegistry()
        right = PerfRegistry()
        left.observe("lat", 0.5, boundaries=(0.1, 1.0))
        right.observe("lat", 0.5, boundaries=(0.1, 2.0))
        try:
            left.merge_snapshot(right.snapshot())
        except ValueError as error:
            assert "boundary" in str(error)
        else:
            raise AssertionError("boundary mismatch not rejected")

    def test_reset_clears_histograms(self):
        registry = PerfRegistry()
        registry.observe("lat", 0.5)
        registry.reset()
        assert "histograms" not in registry.snapshot()
