"""Tests for the repro.perf counter/timer registry."""

import json

from repro.perf import (PERF, PerfRegistry, perf_add, perf_reset,
                        perf_snapshot, perf_timer)


class TestRegistry:
    def test_counter_accumulates(self):
        registry = PerfRegistry()
        registry.add("ops")
        registry.add("ops", 4)
        assert registry.counter("ops") == 5

    def test_timer_records_calls_and_time(self):
        registry = PerfRegistry()
        with registry.timer("work"):
            pass
        with registry.timer("work"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["timers"]["work"]["calls"] == 2
        assert snapshot["timers"]["work"]["total_s"] >= 0.0

    def test_disabled_registry_is_a_noop(self):
        registry = PerfRegistry(enabled=False)
        registry.add("ops", 3)
        with registry.timer("work"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["timers"] == {}

    def test_reset_clears_everything(self):
        registry = PerfRegistry()
        registry.add("ops", 2)
        with registry.timer("work"):
            pass
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"timers": {}, "counters": {}}

    def test_write_json(self, tmp_path):
        registry = PerfRegistry()
        registry.add("ops", 7)
        out = tmp_path / "perf.json"
        registry.write_json(out)
        data = json.loads(out.read_text())
        assert data["counters"]["ops"] == 7


class TestGlobalHelpers:
    def test_global_roundtrip(self):
        perf_reset()
        perf_add("global.ops", 2)
        with perf_timer("global.work"):
            pass
        snapshot = perf_snapshot()
        assert snapshot["counters"]["global.ops"] == 2
        assert snapshot["timers"]["global.work"]["calls"] == 1
        perf_reset()
        assert PERF.snapshot() == {"timers": {}, "counters": {}}
