"""Tests for the repro.perf counter/timer registry."""

import json

from repro.perf import (PERF, PerfRegistry, perf_add, perf_reset,
                        perf_snapshot, perf_timer)


class TestRegistry:
    def test_counter_accumulates(self):
        registry = PerfRegistry()
        registry.add("ops")
        registry.add("ops", 4)
        assert registry.counter("ops") == 5

    def test_timer_records_calls_and_time(self):
        registry = PerfRegistry()
        with registry.timer("work"):
            pass
        with registry.timer("work"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["timers"]["work"]["calls"] == 2
        assert snapshot["timers"]["work"]["total_s"] >= 0.0

    def test_disabled_registry_is_a_noop(self):
        registry = PerfRegistry(enabled=False)
        registry.add("ops", 3)
        with registry.timer("work"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["timers"] == {}

    def test_reset_clears_everything(self):
        registry = PerfRegistry()
        registry.add("ops", 2)
        with registry.timer("work"):
            pass
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"timers": {}, "counters": {}}

    def test_write_json(self, tmp_path):
        registry = PerfRegistry()
        registry.add("ops", 7)
        out = tmp_path / "perf.json"
        registry.write_json(out)
        data = json.loads(out.read_text())
        assert data["counters"]["ops"] == 7


class TestMergeSnapshot:
    def test_counters_and_timers_sum(self):
        parent = PerfRegistry()
        parent.add("ops", 2)
        parent.record_seconds("work", 1.0)
        worker = PerfRegistry()
        worker.add("ops", 3)
        worker.add("extra", 1)
        worker.record_seconds("work", 0.5)
        worker.record_seconds("other", 0.25)

        parent.merge_snapshot(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"] == {"ops": 5, "extra": 1}
        assert snapshot["timers"]["work"] == {"total_s": 1.5, "calls": 2}
        assert snapshot["timers"]["other"] == {"total_s": 0.25,
                                               "calls": 1}

    def test_merge_into_disabled_registry_is_noop(self):
        parent = PerfRegistry(enabled=False)
        worker = PerfRegistry()
        worker.add("ops", 3)
        parent.merge_snapshot(worker.snapshot())
        assert parent.snapshot() == {"timers": {}, "counters": {}}

    def test_merge_empty_snapshot_changes_nothing(self):
        parent = PerfRegistry()
        parent.add("ops", 1)
        before = parent.snapshot()
        parent.merge_snapshot(PerfRegistry().snapshot())
        assert parent.snapshot() == before


class TestGlobalHelpers:
    def test_global_roundtrip(self):
        perf_reset()
        perf_add("global.ops", 2)
        with perf_timer("global.work"):
            pass
        snapshot = perf_snapshot()
        assert snapshot["counters"]["global.ops"] == 2
        assert snapshot["timers"]["global.work"]["calls"] == 1
        perf_reset()
        assert PERF.snapshot() == {"timers": {}, "counters": {}}
