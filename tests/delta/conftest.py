"""Shared helpers for the incremental-replanning tests."""

from __future__ import annotations

from typing import Tuple

import pytest

from repro.charging import CostParameters, FriisChargingModel
from repro.delta import PlanState, initial_state
from repro.network import SensorNetwork, uniform_deployment
from repro.planners import make_planner


@pytest.fixture
def cost() -> CostParameters:
    return CostParameters(model=FriisChargingModel())


def planned_state(n: int = 40, seed: int = 7, radius: float = 20.0,
                  field_side_m: float = 100.0,
                  cost: CostParameters = None
                  ) -> Tuple[SensorNetwork, PlanState, CostParameters]:
    """Plan a small uniform deployment and retain it as a PlanState."""
    if cost is None:
        cost = CostParameters(model=FriisChargingModel())
    network = uniform_deployment(n, seed=seed, field_side_m=field_side_m)
    planner = make_planner("BC", radius)
    plan = planner.plan(network, cost)
    state = initial_state(network, plan, radius, planner.name,
                          planner.tsp_strategy, planner.seed)
    return network, state, cost
