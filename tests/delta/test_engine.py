"""Dirty-region repair: identity, validity, and the energy bound."""

from __future__ import annotations

import random

import pytest

from repro.charging import CostParameters, FriisChargingModel
from repro.delta import (SensorDied, SensorJoined, SensorMoved,
                         apply_delta_set, dirty_sensor_set, full_replan,
                         plan_to_dict, repair_plan, validate_repair)
from repro.delta.events import DeltaSet
from repro.errors import DeltaError
from repro.tour import plan_total_energy

from .conftest import planned_state


def drift_deltas(state, seed: int, count: int = 1,
                 drift_m: float = 5.0):
    """Small seeded teleports of alive sensors (the common churn)."""
    rng = random.Random(seed)
    alive = state.alive_indices()
    deltas = []
    for _ in range(count):
        index = rng.choice(alive)
        point = state.locations[index]
        deltas.append(SensorMoved(
            index=index,
            x=min(state.field_side_m,
                  max(0.0, point.x + rng.uniform(-drift_m, drift_m))),
            y=min(state.field_side_m,
                  max(0.0, point.y + rng.uniform(-drift_m, drift_m)))))
    return deltas


class TestEmptyDelta:
    def test_returns_identical_state_object(self, cost):
        _, state, _ = planned_state(cost=cost)
        new_state, report = repair_plan(state, [], cost)
        assert new_state is state
        assert report.strategy == "noop"
        assert report.delta_count == 0

    def test_plan_serialization_byte_identical(self, cost):
        # The service's empty-delta guarantee reduces to this.
        _, state, _ = planned_state(cost=cost)
        new_state, _ = repair_plan(state, [], cost)
        assert plan_to_dict(new_state.plan) == plan_to_dict(state.plan)


class TestApplyDeltaSet:
    def test_move_contributes_both_positions(self, cost):
        _, state, _ = planned_state(n=20, cost=cost)
        old = state.locations[3]
        locations, alive, changed, died = apply_delta_set(
            state, DeltaSet((SensorMoved(index=3, x=1.0, y=2.0),)))
        assert (old.x, old.y) in changed
        assert (1.0, 2.0) in changed
        assert locations[3].x == 1.0 and locations[3].y == 2.0
        assert died == set()
        assert all(alive)

    def test_death_keeps_slot(self, cost):
        _, state, _ = planned_state(n=20, cost=cost)
        locations, alive, _, died = apply_delta_set(
            state, DeltaSet((SensorDied(index=5),)))
        assert died == {5}
        assert not alive[5]
        assert len(locations) == len(state.locations)

    def test_join_appends(self, cost):
        _, state, _ = planned_state(n=20, cost=cost)
        locations, alive, _, _ = apply_delta_set(
            state, DeltaSet((SensorJoined(x=50.0, y=50.0),)))
        assert len(locations) == len(state.locations) + 1
        assert alive[-1]

    def test_move_of_dead_sensor_rejected(self, cost):
        _, state, _ = planned_state(n=20, cost=cost)
        batch = DeltaSet((SensorDied(index=2),
                          SensorMoved(index=2, x=1.0, y=1.0)))
        with pytest.raises(DeltaError, match="dead"):
            apply_delta_set(state, batch)

    def test_out_of_range_index_rejected(self, cost):
        _, state, _ = planned_state(n=20, cost=cost)
        with pytest.raises(DeltaError, match="out of range"):
            apply_delta_set(state, DeltaSet((SensorDied(index=99),)))

    def test_non_finite_position_rejected(self, cost):
        _, state, _ = planned_state(n=20, cost=cost)
        with pytest.raises(DeltaError, match="non-finite"):
            apply_delta_set(
                state,
                DeltaSet((SensorJoined(x=float("nan"), y=0.0),)))


class TestDirtyRegion:
    def test_reach_is_the_generation_radius(self, cost):
        # Disks are sensor-anchored (Definition 3): sensor j's disk
        # changes iff a change site is within r of j — not 2r.
        _, state, _ = planned_state(n=30, cost=cost)
        site = state.locations[0]
        dirty = dirty_sensor_set(
            state.locations, list(state.alive), [(site.x, site.y)],
            state.radius)
        for index, point in enumerate(state.locations):
            inside = point.distance_to(site) <= state.radius
            assert (index in dirty) == inside

    def test_dead_sensors_never_dirty(self, cost):
        _, state, _ = planned_state(n=30, cost=cost)
        alive = list(state.alive)
        alive[0] = False
        site = state.locations[0]
        dirty = dirty_sensor_set(state.locations, alive,
                                 [(site.x, site.y)], state.radius)
        assert 0 not in dirty


class TestRepairValidityAndBound:
    def test_single_move_repairs_validly(self, cost):
        _, state, _ = planned_state(n=60, seed=3, radius=10.0, cost=cost)
        deltas = drift_deltas(state, seed=1)
        new_state, report = repair_plan(state, deltas, cost, shadow=True,
                                        max_ratio=1.2)
        validate_repair(new_state.plan, new_state.locations,
                        new_state.alive, state.radius)
        assert report.strategy in ("repair", "full")
        assert report.energy_ratio is not None

    def test_death_removes_sensor_from_plan(self, cost):
        _, state, _ = planned_state(n=40, cost=cost)
        victim = state.plan.stops[0]
        index = min(victim.sensors)
        new_state, _ = repair_plan(state, [SensorDied(index=index)],
                                   cost)
        assert index not in new_state.plan.assigned_sensors
        validate_repair(new_state.plan, new_state.locations,
                        new_state.alive, state.radius)

    def test_join_enters_the_plan(self, cost):
        _, state, _ = planned_state(n=40, cost=cost)
        new_state, _ = repair_plan(state,
                                   [SensorJoined(x=50.0, y=50.0)], cost)
        joined = len(state.locations)
        assert joined in new_state.plan.assigned_sensors
        validate_repair(new_state.plan, new_state.locations,
                        new_state.alive, state.radius)

    @pytest.mark.parametrize("n,radius", [(60, 10.0), (120, 10.0),
                                          (120, 20.0), (200, 15.0)])
    def test_energy_bound_sweep(self, n, radius, cost):
        # Broad sweep: validity everywhere, a loose energy bound (the
        # strict 1.05 CI gate runs on the robust smoke config).
        _, state, _ = planned_state(n=n, seed=n + int(radius),
                                    radius=radius, cost=cost)
        for round_index in range(3):
            deltas = drift_deltas(state, seed=round_index,
                                  count=1 + round_index)
            state, report = repair_plan(state, deltas, cost)
            validate_repair(state.plan, state.locations, state.alive,
                            state.radius)
            full = full_replan(state.locations, state.alive, state, cost)
            full_energy = plan_total_energy(full, state.locations, cost)
            energy = plan_total_energy(state.plan, state.locations, cost)
            assert energy <= full_energy * 1.2 + 1e-9

    def test_mixed_churn_round_stays_valid(self, cost):
        _, state, _ = planned_state(n=80, seed=5, radius=15.0, cost=cost)
        rng = random.Random(9)
        for round_index in range(4):
            alive = state.alive_indices()
            deltas = drift_deltas(state, seed=round_index, count=2)
            deltas.append(SensorDied(index=rng.choice(alive)))
            deltas.append(SensorJoined(
                x=rng.uniform(0.0, state.field_side_m),
                y=rng.uniform(0.0, state.field_side_m)))
            state, report = repair_plan(state, deltas, cost)
            validate_repair(state.plan, state.locations, state.alive,
                            state.radius)
            assert report.alive_count == state.alive_count

    def test_repair_is_deterministic(self, cost):
        _, state, _ = planned_state(n=60, seed=3, radius=10.0, cost=cost)
        deltas = [d.to_dict() for d in drift_deltas(state, seed=2,
                                                    count=3)]
        first, first_report = repair_plan(state, deltas, cost)
        second, second_report = repair_plan(state, deltas, cost)
        assert plan_to_dict(first.plan) == plan_to_dict(second.plan)
        assert first_report == second_report


class TestFallbacksAndErrors:
    def test_huge_dirty_region_falls_back_to_full(self, cost):
        # Moving most sensors makes the region majority-alive: the
        # valve must choose a deterministic full replan.
        _, state, _ = planned_state(n=30, seed=2, radius=30.0, cost=cost)
        rng = random.Random(0)
        deltas = [SensorMoved(index=i,
                              x=rng.uniform(0.0, state.field_side_m),
                              y=rng.uniform(0.0, state.field_side_m))
                  for i in range(len(state.locations))]
        new_state, report = repair_plan(state, deltas, cost)
        assert report.strategy == "full"
        assert report.energy_ratio == 1.0
        validate_repair(new_state.plan, new_state.locations,
                        new_state.alive, state.radius)

    def test_killing_everyone_rejected(self, cost):
        _, state, _ = planned_state(n=10, cost=cost)
        deltas = [SensorDied(index=i) for i in range(10)]
        with pytest.raises(DeltaError, match="no alive sensors"):
            repair_plan(state, deltas, cost)

    def test_invalid_ratio_bound_rejected(self, cost):
        _, state, _ = planned_state(n=10, cost=cost)
        with pytest.raises(DeltaError, match="ratio bound"):
            repair_plan(state, [], cost, max_ratio=0.5)

    def test_shadow_report_fields_stay_out_of_payload_dict(self, cost):
        _, state, _ = planned_state(n=60, seed=3, radius=10.0, cost=cost)
        deltas = drift_deltas(state, seed=1)
        _, shadowed = repair_plan(state, deltas, cost, shadow=True,
                                  max_ratio=10.0)
        _, plain = repair_plan(state, deltas, cost)
        assert shadowed.as_payload_dict() == plain.as_payload_dict()
        assert "energy_ratio" not in plain.as_payload_dict()
