"""The /v1/plan/delta wire format and its validators."""

from __future__ import annotations

import pytest

from repro.delta import (DELTA_ERROR_STATUS, DELTA_REQUEST_SCHEMA,
                         canonical_delta_request,
                         canonical_delta_request_problems,
                         delta_payload_problems, delta_request_problems)
from repro.delta.protocol import require_valid_delta_request
from repro.errors import DeltaError


def wire_body(**overrides):
    body = {
        "schema": DELTA_REQUEST_SCHEMA,
        "session": "a" * 64,
        "deltas": [{"type": "sensor_moved", "v": 1, "index": 0,
                    "x": 1.0, "y": 2.0}],
    }
    body.update(overrides)
    return body


class TestRequestProblems:
    def test_valid_body_is_clean(self):
        assert delta_request_problems(wire_body()) == []

    def test_empty_delta_list_is_valid(self):
        assert delta_request_problems(wire_body(deltas=[])) == []

    def test_schema_defaults_when_absent(self):
        body = wire_body()
        del body["schema"]
        assert delta_request_problems(body) == []

    def test_wrong_schema_short_circuits(self):
        problems = delta_request_problems(wire_body(schema="nope"))
        assert len(problems) == 1
        assert "unsupported request schema" in problems[0]

    def test_non_object_rejected(self):
        assert delta_request_problems([]) \
            == ["request body must be a JSON object"]

    def test_unknown_keys_reported(self):
        problems = delta_request_problems(wire_body(surprise=1))
        assert any("unknown keys" in p for p in problems)

    def test_missing_session_reported(self):
        body = wire_body()
        del body["session"]
        problems = delta_request_problems(body)
        assert any("session" in p for p in problems)

    def test_missing_deltas_reported(self):
        body = wire_body()
        del body["deltas"]
        problems = delta_request_problems(body)
        assert any("'deltas'" in p for p in problems)

    def test_kernel_pin_must_be_string(self):
        problems = delta_request_problems(wire_body(kernel_sha256=7))
        assert any("kernel_sha256" in p for p in problems)

    def test_require_valid_raises_joined_problems(self):
        with pytest.raises(DeltaError, match="session"):
            require_valid_delta_request(wire_body(session=""))


class TestCanonicalForm:
    def test_planner_joins_and_numbers_normalize(self):
        body = wire_body(deltas=[{"type": "sensor_moved", "v": 1,
                                  "index": 0, "x": 1, "y": 2}])
        canonical = canonical_delta_request(body, "BC")
        assert canonical["planner"] == "BC"
        record = canonical["deltas"][0]
        assert record["x"] == 1.0 and isinstance(record["x"], float)

    def test_kernel_pin_stays_out_of_canonical_form(self):
        pinned = canonical_delta_request(
            wire_body(kernel_sha256="f" * 64), "BC")
        bare = canonical_delta_request(wire_body(), "BC")
        assert pinned == bare
        assert "kernel_sha256" not in pinned

    def test_canonical_problems_validate_embedded_form(self):
        canonical = canonical_delta_request(wire_body(), "BC")
        assert canonical_delta_request_problems(canonical) == []
        broken = dict(canonical)
        del broken["planner"]
        assert any("planner" in p
                   for p in canonical_delta_request_problems(broken))


class TestErrorStatusMap:
    def test_typed_codes_cover_the_delta_failures(self):
        assert DELTA_ERROR_STATUS["unknown-session"] == 404
        assert DELTA_ERROR_STATUS["stale-kernel"] == 409
        assert DELTA_ERROR_STATUS["invalid-request"] == 400
        assert DELTA_ERROR_STATUS["unsupported-schema"] == 400


class TestPayloadProblems:
    def _payload(self):
        return {
            "request": canonical_delta_request(wire_body(), "BC"),
            "request_sha256": "b" * 64,
            "plan": {"label": "BC", "depot": None, "stops": [],
                     "tour_length_m": 0.0},
            "metrics": {},
            "alive_count": 25,
            "session": "a" * 64 + ".c" * 1,
            "repair": {"strategy": "repair", "delta_count": 1,
                       "dirty_sensors": 2, "evicted_stops": 1,
                       "inserted_stops": 1, "alive_count": 25},
        }

    def test_valid_payload_is_clean(self):
        assert delta_payload_problems(self._payload()) == []

    def test_missing_repair_report_reported(self):
        payload = self._payload()
        del payload["repair"]
        problems = delta_payload_problems(payload)
        assert any("repair" in p for p in problems)

    def test_unknown_strategy_reported(self):
        payload = self._payload()
        payload["repair"]["strategy"] = "magic"
        problems = delta_payload_problems(payload)
        assert any("strategy" in p for p in problems)

    def test_missing_successor_handle_reported(self):
        payload = self._payload()
        payload["session"] = ""
        problems = delta_payload_problems(payload)
        assert any("successor" in p for p in problems)
