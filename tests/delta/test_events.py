"""The typed delta vocabulary and the unified event registry."""

from __future__ import annotations

import pytest

from repro.delta import (DELTA_RECORD_TYPES, MAX_DELTAS, DeltaSet,
                         SensorDied, SensorJoined, SensorMoved,
                         delta_problems, delta_record_from_dict)
from repro.errors import DeltaError
from repro.sim import EVENT_RECORD_TYPES, event_record_from_dict
from repro.sim.trace import RECORD_TYPES
from repro.errors import SimulationError


class TestRecordRoundTrips:
    @pytest.mark.parametrize("record", [
        SensorMoved(index=3, x=10.5, y=-2.0),
        SensorDied(index=0),
        SensorJoined(x=0.0, y=99.25),
    ])
    def test_to_dict_from_dict_identity(self, record):
        raw = record.to_dict()
        assert raw["v"] == 1
        assert raw["type"] in DELTA_RECORD_TYPES
        assert delta_record_from_dict(raw) == record

    def test_unknown_type_raises(self):
        with pytest.raises(DeltaError, match="unknown delta record"):
            delta_record_from_dict({"type": "sensor_teleported", "v": 1})

    def test_malformed_body_raises(self):
        with pytest.raises(DeltaError, match="malformed"):
            delta_record_from_dict({"type": "sensor_moved", "v": 1,
                                    "index": 0, "x": "east", "y": 1.0})

    def test_bool_coordinates_rejected(self):
        with pytest.raises(DeltaError, match="malformed"):
            delta_record_from_dict({"type": "sensor_joined", "v": 1,
                                    "x": True, "y": 0.0})


class TestDeltaSet:
    def test_empty_set_is_noop(self):
        assert DeltaSet().is_empty
        assert len(DeltaSet()) == 0

    def test_round_trip_preserves_order(self):
        records = (SensorDied(index=1), SensorJoined(x=1.0, y=2.0),
                   SensorMoved(index=0, x=3.0, y=4.0))
        batch = DeltaSet(records)
        assert DeltaSet.from_dicts(batch.to_dicts()) == batch
        assert tuple(batch) == records

    def test_rejects_non_records(self):
        with pytest.raises(DeltaError, match="not a delta record"):
            DeltaSet(({"type": "sensor_died", "index": 1},))

    def test_rejects_oversized_batch(self):
        records = tuple(SensorDied(index=i)
                        for i in range(MAX_DELTAS + 1))
        with pytest.raises(DeltaError, match="limit"):
            DeltaSet(records)

    def test_changed_indices_numbers_joins_sequentially(self):
        batch = DeltaSet((SensorMoved(index=2, x=0.0, y=0.0),
                          SensorJoined(x=1.0, y=1.0),
                          SensorJoined(x=2.0, y=2.0),
                          SensorDied(index=0)))
        assert batch.changed_indices(10) == [2, 10, 11, 0]


class TestDeltaProblems:
    def test_empty_list_is_valid(self):
        assert delta_problems([]) == []

    def test_non_list_rejected(self):
        assert delta_problems({"type": "sensor_died"}) \
            == ["deltas must be a JSON list of delta records"]

    def test_each_bad_record_reported_with_position(self):
        problems = delta_problems([
            {"type": "sensor_died", "v": 1, "index": 0},
            "not-a-dict",
            {"type": "nope", "v": 1},
        ])
        assert len(problems) == 2
        assert "deltas[1]" in problems[0]
        assert "deltas[2]" in problems[1]

    def test_over_limit_short_circuits(self):
        raw = [{"type": "sensor_died", "v": 1, "index": i}
               for i in range(MAX_DELTAS + 1)]
        problems = delta_problems(raw)
        assert len(problems) == 1
        assert "limit" in problems[0]


class TestUnifiedRegistry:
    def test_registry_is_union_of_both_families(self):
        assert set(EVENT_RECORD_TYPES) \
            == set(RECORD_TYPES) | set(DELTA_RECORD_TYPES)

    def test_dispatches_delta_records(self):
        record = event_record_from_dict(
            {"type": "sensor_moved", "v": 1, "index": 2,
             "x": 5.0, "y": 6.0})
        assert record == SensorMoved(index=2, x=5.0, y=6.0)

    def test_dispatches_trace_records(self):
        sample = next(iter(RECORD_TYPES))
        assert sample in EVENT_RECORD_TYPES

    def test_unknown_type_raises_simulation_error(self):
        with pytest.raises(SimulationError, match="unknown event"):
            event_record_from_dict({"type": "nope", "v": 1})

    def test_non_dict_raises(self):
        with pytest.raises(SimulationError):
            event_record_from_dict("sensor_moved")


class TestObsValidation:
    def test_obs_accepts_delta_event_types(self):
        from repro.obs.validate import KNOWN_EVENT_TYPES
        for kind in DELTA_RECORD_TYPES:
            assert kind in KNOWN_EVENT_TYPES

    def test_obs_knows_repair_span(self):
        from repro.obs.validate import KNOWN_SPAN_NAMES
        assert "delta.repair" in KNOWN_SPAN_NAMES
