"""Session handles, plan round-trips, and the bounded store."""

from __future__ import annotations

import pytest

from repro.delta import (DELTA_KERNEL_STAGES, SensorMoved, SessionStore,
                         advance_session, delta_kernel_sha256,
                         handle_root, plan_from_dict, plan_to_dict,
                         repair_plan, session_from_plan_payload,
                         state_digest)
from repro.delta.session import PlanSession
from repro.errors import DeltaError
from repro.service.executor import execute_request
from repro.service.request import canonical_request

from .conftest import planned_state


def established_session():
    """Establish a session the way the worker does: request → payload."""
    body = {
        "schema": "bundle-charging/request/v1",
        "deployment": {"kind": "uniform", "n": 25, "seed": 11,
                       "field_side_m": 300.0},
        "planner": "BC",
        "radius_m": 20.0,
    }
    request = canonical_request(body)
    payload, _ = execute_request(request, None)
    return request, payload, session_from_plan_payload(request, payload)


class TestHandles:
    def test_root_handle_has_no_chain_segment(self):
        _, payload, session = established_session()
        assert session.handle == session.root
        assert session.root == payload["request_sha256"]
        assert handle_root(session.handle) == session.root

    def test_chained_handle_keeps_root(self):
        assert handle_root("abc.def") == "abc"
        assert handle_root("abc.def.ghi") == "abc"

    def test_state_digest_is_content_addressed(self, cost):
        _, state, _ = planned_state(n=20, cost=cost)
        assert state_digest("root", state) == state_digest("root", state)
        assert state_digest("root", state) != state_digest("other", state)


class TestPlanRoundTrip:
    def test_to_dict_from_dict_identity(self, cost):
        _, state, _ = planned_state(n=30, cost=cost)
        raw = plan_to_dict(state.plan)
        assert plan_to_dict(plan_from_dict(raw)) == raw

    def test_malformed_plan_rejected(self):
        with pytest.raises(DeltaError, match="malformed plan"):
            plan_from_dict({"label": "x", "stops": "nope"})


class TestSessionLifecycle:
    def test_establishment_is_pure_reconstruction(self):
        request, payload, session = established_session()
        assert session.plan_dict == payload["plan"]
        assert session.state.alive == (True,) * 25
        assert session.state.radius == request["radius_m"]
        assert plan_to_dict(session.state.plan) == payload["plan"]

    def test_advance_mints_chained_handle(self, cost):
        _, payload, session = established_session()
        from repro.service.executor import build_cost
        cost = build_cost(session.request["charging"])
        deltas = [{"type": "sensor_moved", "v": 1, "index": 0,
                   "x": 10.0, "y": 10.0}]
        new_state, _ = repair_plan(session.state, deltas, cost)
        repaired_payload = dict(payload,
                                plan=plan_to_dict(new_state.plan))
        successor = advance_session(session, deltas, repaired_payload)
        assert successor.root == session.root
        assert successor.handle.startswith(session.root + ".")
        assert handle_root(successor.handle) == session.root

    def test_advance_on_empty_delta_returns_same_session(self):
        _, payload, session = established_session()
        assert advance_session(session, [], payload) is session

    def test_advance_is_deterministic(self, cost):
        _, payload, session = established_session()
        from repro.service.executor import build_cost
        cost = build_cost(session.request["charging"])
        deltas = [{"type": "sensor_moved", "v": 1, "index": 0,
                   "x": 10.0, "y": 10.0}]
        new_state, _ = repair_plan(session.state, deltas, cost)
        repaired = dict(payload, plan=plan_to_dict(new_state.plan))
        first = advance_session(session, deltas, repaired)
        second = advance_session(session, deltas, repaired)
        assert first.handle == second.handle


class TestKernelFingerprint:
    def test_stable_within_a_build(self):
        assert delta_kernel_sha256() == delta_kernel_sha256()

    def test_covers_every_repair_stage(self):
        from repro.cache.keys import KERNEL_VERSIONS
        for stage in ("delta_candidates", "delta_cover",
                      "delta_request"):
            assert stage in DELTA_KERNEL_STAGES
            assert stage in KERNEL_VERSIONS


class TestSessionStore:
    @staticmethod
    def _dummy(handle: str) -> PlanSession:
        _, state, _ = planned_state(n=5, cost=None)
        return PlanSession(request={}, root=handle_root(handle),
                           handle=handle, state=state,
                           plan_dict={})

    def test_lru_eviction(self):
        store = SessionStore(max_entries=2)
        store.put(self._dummy("a"))
        store.put(self._dummy("b"))
        assert store.get("a") is not None  # refresh a
        store.put(self._dummy("c"))  # evicts b
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.get("c") is not None
        assert store.evictions == 1
        assert len(store) == 2

    def test_put_is_idempotent_per_handle(self):
        store = SessionStore(max_entries=4)
        store.put(self._dummy("a"))
        store.put(self._dummy("a"))
        assert len(store) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(DeltaError, match="at least one"):
            SessionStore(max_entries=0)
