"""Tests for fleet tour splitting."""

import pytest

from repro.errors import PlanError
from repro.fleet import fleet_speedup, split_plan
from repro.geometry import Point
from repro.planners import BundleChargingPlanner
from repro.tour import ChargingPlan


@pytest.fixture
def base_plan(medium_network, paper_cost):
    return BundleChargingPlanner(30.0).plan(medium_network, paper_cost)


class TestSplitPlan:
    def test_single_charger_is_whole_plan(self, base_plan, paper_cost):
        fleet = split_plan(base_plan, 1, paper_cost)
        assert fleet.charger_count == 1
        assert len(fleet.assignments[0].plan) == len(base_plan)

    def test_every_stop_assigned_exactly_once(self, base_plan,
                                              paper_cost):
        fleet = split_plan(base_plan, 3, paper_cost)
        assigned = []
        for assignment in fleet.assignments:
            assigned.extend(stop.position
                            for stop in assignment.plan.stops)
        original = [stop.position for stop in base_plan.stops]
        assert assigned == original  # order preserved, nothing lost

    def test_makespan_never_increases_with_more_chargers(
            self, base_plan, paper_cost):
        makespans = [split_plan(base_plan, k, paper_cost).makespan_s
                     for k in (1, 2, 4, 8)]
        for previous, current in zip(makespans, makespans[1:]):
            assert current <= previous + 1e-6

    def test_total_energy_never_decreases_with_more_chargers(
            self, base_plan, paper_cost):
        # More chargers = more depot return legs.
        energies = [split_plan(base_plan, k, paper_cost).total_energy_j
                    for k in (1, 2, 4)]
        for previous, current in zip(energies, energies[1:]):
            assert current >= previous - 1e-6

    def test_makespan_is_max_assignment_time(self, base_plan,
                                             paper_cost):
        fleet = split_plan(base_plan, 3, paper_cost)
        assert fleet.makespan_s == pytest.approx(
            max(a.mission_time_s for a in fleet.assignments))

    def test_speedup_between_1_and_k(self, base_plan, paper_cost):
        speedup = fleet_speedup(base_plan, 4, paper_cost)
        assert 1.0 <= speedup <= 4.0 + 1e-6

    def test_needs_depot(self, paper_cost):
        plan = ChargingPlan(stops=(), depot=None)
        with pytest.raises(PlanError):
            split_plan(plan, 2, paper_cost)

    def test_invalid_charger_count(self, base_plan, paper_cost):
        with pytest.raises(PlanError):
            split_plan(base_plan, 0, paper_cost)

    def test_empty_plan(self, paper_cost):
        plan = ChargingPlan(stops=(), depot=Point(0, 0))
        fleet = split_plan(plan, 3, paper_cost)
        assert fleet.makespan_s == 0.0
        assert fleet.total_energy_j == 0.0

    def test_more_chargers_than_stops(self, paper_cost, small_network):
        plan = BundleChargingPlanner(30.0).plan(small_network,
                                                paper_cost)
        fleet = split_plan(plan, len(plan) + 5, paper_cost)
        # Extra chargers idle with empty plans.
        empty = [a for a in fleet.assignments if len(a.plan) == 0]
        assert empty
        assert fleet.makespan_s > 0.0
