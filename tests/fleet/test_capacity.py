"""Tests for battery-capacity scheduling."""

import pytest

from repro.errors import PlanError
from repro.fleet import (minimum_feasible_capacity,
                         schedule_with_capacity)
from repro.geometry import Point
from repro.planners import BundleChargingPlanner
from repro.tour import ChargingPlan


@pytest.fixture
def base_plan(medium_network, paper_cost):
    return BundleChargingPlanner(30.0).plan(medium_network, paper_cost)


class TestCapacitySchedule:
    def test_huge_capacity_single_pass(self, base_plan, paper_cost):
        schedule = schedule_with_capacity(base_plan, 1e12, paper_cost)
        assert schedule.pass_count == 1
        assert schedule.overhead_j == pytest.approx(0.0, abs=1e-6)

    def test_tight_capacity_many_passes(self, base_plan, paper_cost):
        floor = minimum_feasible_capacity(base_plan, paper_cost)
        schedule = schedule_with_capacity(base_plan, floor * 1.2,
                                          paper_cost)
        assert schedule.pass_count > 1
        assert schedule.overhead_j > 0.0

    def test_every_pass_within_budget(self, base_plan, paper_cost):
        floor = minimum_feasible_capacity(base_plan, paper_cost)
        budget = floor * 1.5
        schedule = schedule_with_capacity(base_plan, budget, paper_cost)
        for charging_pass in schedule.passes:
            assert charging_pass.energy_j <= budget + 1e-6

    def test_all_stops_served_in_order(self, base_plan, paper_cost):
        floor = minimum_feasible_capacity(base_plan, paper_cost)
        schedule = schedule_with_capacity(base_plan, floor * 1.3,
                                          paper_cost)
        served = []
        for charging_pass in schedule.passes:
            served.extend(stop.position
                          for stop in charging_pass.stops)
        assert served == [stop.position for stop in base_plan.stops]

    def test_pass_count_monotone_in_capacity(self, base_plan,
                                             paper_cost):
        floor = minimum_feasible_capacity(base_plan, paper_cost)
        counts = [
            schedule_with_capacity(base_plan, floor * factor,
                                   paper_cost).pass_count
            for factor in (1.1, 2.0, 5.0, 100.0)
        ]
        for previous, current in zip(counts, counts[1:]):
            assert current <= previous

    def test_infeasible_capacity_raises(self, base_plan, paper_cost):
        floor = minimum_feasible_capacity(base_plan, paper_cost)
        with pytest.raises(PlanError):
            schedule_with_capacity(base_plan, floor * 0.5, paper_cost)

    def test_invalid_capacity_rejected(self, base_plan, paper_cost):
        with pytest.raises(PlanError):
            schedule_with_capacity(base_plan, 0.0, paper_cost)

    def test_needs_depot(self, paper_cost):
        plan = ChargingPlan(stops=(), depot=None)
        with pytest.raises(PlanError):
            schedule_with_capacity(plan, 100.0, paper_cost)

    def test_empty_plan_zero_capacity_floor(self, paper_cost):
        plan = ChargingPlan(stops=(), depot=Point(0, 0))
        assert minimum_feasible_capacity(plan, paper_cost) == 0.0
