"""Tests for interference-aware concurrent scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.fleet import (concurrent_schedule, conflict_graph,
                         greedy_coloring)
from repro.geometry import Point
from repro.tour import ChargingPlan, Stop

coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
point_lists = st.lists(st.builds(Point, coords, coords), min_size=1,
                       max_size=30)


class TestConflictGraph:
    def test_pairwise_conflicts(self):
        positions = [Point(0, 0), Point(5, 0), Point(50, 0)]
        adjacency = conflict_graph(positions, 10.0)
        assert adjacency[0] == {1}
        assert adjacency[1] == {0}
        assert adjacency[2] == set()

    def test_zero_distance_no_conflicts_unless_coincident(self):
        positions = [Point(0, 0), Point(1, 0), Point(0, 0)]
        adjacency = conflict_graph(positions, 0.0)
        assert adjacency[0] == {2}
        assert adjacency[1] == set()

    def test_negative_distance_rejected(self):
        with pytest.raises(PlanError):
            conflict_graph([Point(0, 0)], -1.0)


class TestColoring:
    def test_proper_coloring_on_triangle(self):
        adjacency = [{1, 2}, {0, 2}, {0, 1}]
        colors = greedy_coloring(adjacency)
        assert len(set(colors)) == 3

    def test_bipartite_uses_two_colors(self):
        # Path graph: 0-1-2-3.
        adjacency = [{1}, {0, 2}, {1, 3}, {2}]
        colors = greedy_coloring(adjacency)
        assert max(colors) <= 1

    @settings(max_examples=30, deadline=None)
    @given(point_lists, st.floats(min_value=1.0, max_value=60.0))
    def test_coloring_always_proper(self, points, distance):
        adjacency = conflict_graph(points, distance)
        colors = greedy_coloring(adjacency)
        for vertex, neighbors in enumerate(adjacency):
            for neighbor in neighbors:
                assert colors[vertex] != colors[neighbor]

    @settings(max_examples=30, deadline=None)
    @given(point_lists, st.floats(min_value=1.0, max_value=60.0))
    def test_color_count_bounded_by_degree(self, points, distance):
        adjacency = conflict_graph(points, distance)
        colors = greedy_coloring(adjacency)
        max_degree = max((len(a) for a in adjacency), default=0)
        assert max(colors) <= max_degree


class TestConcurrentSchedule:
    def _plan(self, positions, dwells):
        stops = tuple(
            Stop(position, frozenset({i}), dwell)
            for i, (position, dwell) in enumerate(zip(positions,
                                                      dwells)))
        return ChargingPlan(stops=stops, depot=Point(0, 0))

    def test_independent_stops_one_round(self):
        plan = self._plan([Point(0, 10), Point(50, 10), Point(100, 10)],
                          [10.0, 20.0, 30.0])
        schedule = concurrent_schedule(plan, 5.0)
        assert schedule.rounds_used == 1
        assert schedule.concurrent_dwell_s == 30.0
        assert schedule.speedup == pytest.approx(60.0 / 30.0)

    def test_conflicting_stops_serialize(self):
        plan = self._plan([Point(0, 10), Point(1, 10)], [10.0, 20.0])
        schedule = concurrent_schedule(plan, 5.0)
        assert schedule.rounds_used == 2
        assert schedule.concurrent_dwell_s == 30.0
        assert schedule.speedup == 1.0

    def test_every_stop_scheduled_once(self):
        positions = [Point(float(i * 3), 10.0) for i in range(12)]
        plan = self._plan(positions, [5.0] * 12)
        schedule = concurrent_schedule(plan, 4.0)
        scheduled = sorted(i for group in schedule.rounds
                           for i in group)
        assert scheduled == list(range(12))

    def test_conflict_free_within_rounds(self):
        positions = [Point(float(i * 2 % 20), float(i)) for i in
                     range(15)]
        plan = self._plan(positions, [1.0] * 15)
        schedule = concurrent_schedule(plan, 6.0)
        for group in schedule.rounds:
            for a in group:
                for b in group:
                    if a != b:
                        assert positions[a].distance_to(
                            positions[b]) > 6.0

    def test_concurrency_cap_respected(self):
        positions = [Point(float(i * 100), 10.0) for i in range(9)]
        plan = self._plan(positions, [5.0] * 9)
        schedule = concurrent_schedule(plan, 1.0, max_concurrent=4)
        assert all(len(group) <= 4 for group in schedule.rounds)
        assert schedule.rounds_used >= 3

    def test_empty_plan(self):
        plan = ChargingPlan(stops=(), depot=Point(0, 0))
        schedule = concurrent_schedule(plan, 10.0)
        assert schedule.rounds_used == 0
        assert schedule.speedup == 1.0

    def test_negative_cap_rejected(self):
        plan = ChargingPlan(stops=(), depot=Point(0, 0))
        with pytest.raises(PlanError):
            concurrent_schedule(plan, 10.0, max_concurrent=-1)

    def test_speedup_grows_with_separation(self, paper_cost):
        from repro.network import uniform_deployment
        from repro.planners import BundleChargingPlanner
        network = uniform_deployment(count=40, seed=4)
        plan = BundleChargingPlanner(30.0).plan(network, paper_cost)
        tight = concurrent_schedule(plan, 500.0)
        loose = concurrent_schedule(plan, 50.0)
        assert loose.speedup >= tight.speedup
