"""Smoke tests: the shipped examples must run end-to-end.

Only the faster examples run here to keep the suite responsive; the
heavier ones (habitat_monitoring, custom_charging_model,
lifetime_study) are exercised indirectly by the unit tests of the
modules they drive and can be run manually.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")

FAST_EXAMPLES = [
    ("quickstart.py", "OK: the plan fully charges the network."),
    ("office_testbed.py", "sensors reached their requirement"),
    ("fleet_mission.py", "Fleet scaling"),
    ("robustness_analysis.py", "Concurrent charging"),
]


@pytest.mark.parametrize("script,expected", FAST_EXAMPLES)
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=300)
    assert result.returncode == 0, result.stderr
    assert expected in result.stdout


def test_all_examples_present():
    scripts = sorted(name for name in os.listdir(EXAMPLES_DIR)
                     if name.endswith(".py"))
    assert scripts == [
        "custom_charging_model.py",
        "fleet_mission.py",
        "habitat_monitoring.py",
        "lifetime_study.py",
        "office_testbed.py",
        "quickstart.py",
        "robustness_analysis.py",
    ]
