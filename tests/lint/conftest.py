"""Shared helpers for the linter's fixture-driven tests."""

from __future__ import annotations

import textwrap
from typing import Dict, Optional, Sequence

import pytest

from repro.lint import LintResult, lint_paths


@pytest.fixture
def lint_fixture(tmp_path):
    """Write a small fixture project and lint it.

    Usage::

        result = lint_fixture({"src/repro/x.py": "..."}, select=["DET001"])
    """

    def run(files: Dict[str, str],
            select: Optional[Sequence[str]] = None,
            paths: Optional[Sequence[str]] = None) -> LintResult:
        for rel, content in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(content))
        return lint_paths(paths or ["."], root=str(tmp_path),
                          select=select)

    return run
