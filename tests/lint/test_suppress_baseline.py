"""Suppression directives and the baseline round-trip."""

from __future__ import annotations

import json
import textwrap

from repro.lint import (Finding, fingerprint, lint_paths, load_baseline,
                        run_lint, write_baseline)

_VIOLATION = """\
    import random

    def jitter():
        return random.random()
    """


class TestSuppressions:
    def test_same_line_disable(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                import random

                def jitter():
                    return random.random()  # repro-lint: disable=DET001
                """,
        }, select=["DET001"])
        assert result.clean
        assert result.suppressed == 1

    def test_disable_next_line(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                import random

                def jitter():
                    # repro-lint: disable-next-line=DET001
                    return random.random()
                """,
        }, select=["DET001"])
        assert result.clean
        assert result.suppressed == 1

    def test_disable_file(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                # repro-lint: disable-file=DET001
                import random

                def jitter():
                    return random.random()

                def wobble():
                    return random.uniform(0, 1)
                """,
        }, select=["DET001"])
        assert result.clean
        assert result.suppressed == 2

    def test_multiple_rules_and_wildcard(self, lint_fixture):
        result = lint_fixture({
            "src/repro/geometry/bad.py": """\
                # repro-lint: disable-file=DET001,DET004
                import random

                def jitter(r):
                    return random.random() if r == 1.0 else 0.0
                """,
            "src/repro/geometry/bad2.py": """\
                # repro-lint: disable-file=all
                import random

                def jitter(r):
                    return random.random() if r == 1.0 else 0.0
                """,
        }, select=["DET001", "DET004"])
        assert result.clean
        assert result.suppressed == 4

    def test_wrong_rule_id_does_not_suppress(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                import random

                def jitter():
                    return random.random()  # repro-lint: disable=DET002
                """,
        }, select=["DET001"])
        assert [f.rule for f in result.findings] == ["DET001"]
        assert result.suppressed == 0

    def test_parse_errors_cannot_be_suppressed(self, lint_fixture):
        result = lint_fixture({
            "src/repro/broken.py":
                "# repro-lint: disable-file=all\ndef oops(:\n",
        })
        assert [f.rule for f in result.findings] == ["E999"]


class TestBaseline:
    def _write_fixture(self, tmp_path):
        target = tmp_path / "src" / "repro" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(_VIOLATION))
        return target

    def test_round_trip_absorbs_known_findings(self, tmp_path):
        self._write_fixture(tmp_path)
        baseline_path = str(tmp_path / "lint-baseline.json")

        first = run_lint(["src"], root=str(tmp_path),
                         write_baseline_to=baseline_path)
        assert first.baselined == 1

        second = run_lint(["src"], root=str(tmp_path),
                          baseline_path=baseline_path)
        assert second.clean
        assert second.baselined == 1

    def test_new_findings_still_reported(self, tmp_path):
        target = self._write_fixture(tmp_path)
        baseline_path = str(tmp_path / "lint-baseline.json")
        run_lint(["src"], root=str(tmp_path),
                 write_baseline_to=baseline_path)

        target.write_text(target.read_text()
                          + "\n\ndef extra():\n"
                            "    return random.uniform(0, 1)\n")
        result = run_lint(["src"], root=str(tmp_path),
                          baseline_path=baseline_path)
        assert len(result.findings) == 1
        assert "uniform" in result.findings[0].message

    def test_fingerprint_survives_line_drift(self, tmp_path):
        target = self._write_fixture(tmp_path)
        baseline_path = str(tmp_path / "lint-baseline.json")
        run_lint(["src"], root=str(tmp_path),
                 write_baseline_to=baseline_path)

        # Push the violation down by adding lines above it.
        target.write_text("# a comment\n# another\n"
                          + target.read_text())
        result = run_lint(["src"], root=str(tmp_path),
                          baseline_path=baseline_path)
        assert result.clean
        assert result.baselined == 1

    def test_duplicate_lines_consume_counts(self, tmp_path):
        target = tmp_path / "src" / "repro" / "bad.py"
        target.parent.mkdir(parents=True)
        body = ("import random\n\n"
                "def one():\n    return random.random()\n\n"
                "def two():\n    return random.random()\n")
        target.write_text(body)
        baseline_path = str(tmp_path / "lint-baseline.json")
        run_lint(["src"], root=str(tmp_path),
                 write_baseline_to=baseline_path)
        payload = json.loads((tmp_path / "lint-baseline.json").read_text())
        assert sum(entry["count"]
                   for entry in payload["entries"].values()) == 2

        # A third identical violation exceeds the baselined count.
        target.write_text(body
                          + "\ndef three():\n    return random.random()\n")
        result = run_lint(["src"], root=str(tmp_path),
                          baseline_path=baseline_path)
        assert len(result.findings) == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = load_baseline(str(tmp_path / "nope.json"))
        assert baseline.entries == {}

    def test_fingerprint_is_stable(self):
        finding = Finding(path="src/repro/x.py", line=10, col=4,
                          rule="DET001", message="whatever")
        a = fingerprint(finding, "  return random.random()")
        b = fingerprint(finding, "return random.random()")
        assert a == b  # indentation-insensitive
        other = Finding(path="src/repro/x.py", line=10, col=4,
                        rule="DET002", message="whatever")
        assert fingerprint(other, "return random.random()") != a

    def test_empty_repo_baseline_matches_committed_file(self, tmp_path):
        path = str(tmp_path / "b.json")
        write_baseline(path, [])
        payload = json.loads(open(path).read())
        assert payload == {"version": 1, "entries": {}}


_SCHED_UNLOCKED = """\
    import threading

    class Sched:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0
            self._worker = threading.Thread(target=self._loop)

        def _loop(self):
            with self._lock:
                self._count += 1

        def bump(self):
            self._count += 1{suffix}
    """

_IMPURE_STAGE = """\
    import time

    def _compute():
        return time.time()

    def run():
        return stage_memo("tsp", lambda: {{}}, _compute)

    def stage_memo(stage, params_fn, compute):
        return compute()
    """

_KEYS = 'KERNEL_VERSIONS = {\n    "tsp": "v1",\n}\n'


class TestProjectScopeSuppression:
    """Project-scope findings anchor at one site; only a directive on
    that anchor line suppresses them."""

    def test_disable_on_write_site_suppresses(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/sched.py": _SCHED_UNLOCKED.format(
                suffix="  # repro-lint: disable=CONC001"),
        }, select=["CONC001"])
        assert result.clean
        assert result.suppressed == 1

    def test_disable_on_lock_site_does_not_suppress(self, lint_fixture):
        # The finding anchors at the unlocked write in bump(), not at
        # the guarded write in _loop(); a directive on the lock site
        # must not swallow it.
        source = _SCHED_UNLOCKED.format(suffix="").replace(
            "self._count += 1\n\n    def bump",
            "self._count += 1  # repro-lint: disable=CONC001\n\n"
            "    def bump")
        result = lint_fixture({"src/repro/service/sched.py": source},
                              select=["CONC001"])
        assert [f.rule for f in result.findings] == ["CONC001"]
        assert result.suppressed == 0

    def test_purity_finding_suppressed_at_violation_site(
            self, lint_fixture):
        # PURE001 anchors at the clock call inside the compute closure,
        # not at the stage_memo registration site.
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": _IMPURE_STAGE.replace(
                "return time.time()",
                "return time.time()  # repro-lint: disable=PURE001"),
        }, select=["PURE001"])
        assert result.clean
        assert result.suppressed == 1


class TestProjectScopeBaseline:
    """Baselines for cross-module findings fingerprint the anchor line
    text, so edits to *other* files in the project cannot disturb
    them."""

    def _fixture(self, tmp_path):
        keys = tmp_path / "src" / "repro" / "cache" / "keys.py"
        keys.parent.mkdir(parents=True, exist_ok=True)
        keys.write_text(_KEYS)
        pipeline = tmp_path / "src" / "repro" / "pipeline.py"
        pipeline.write_text(textwrap.dedent(_IMPURE_STAGE))
        return keys, pipeline

    def test_baseline_survives_drift_in_other_file(self, tmp_path):
        keys, _pipeline = self._fixture(tmp_path)
        baseline_path = str(tmp_path / "lint-baseline.json")
        first = run_lint(["src"], root=str(tmp_path),
                         select=["PURE001"],
                         write_baseline_to=baseline_path)
        assert first.baselined == 1

        # Drift the *registration* file (keys.py) — comments above the
        # dict shift every line.  The finding anchors in pipeline.py,
        # whose lines are untouched, so it stays baselined.
        keys.write_text("# comment\n# another comment\n"
                        + keys.read_text())
        result = run_lint(["src"], root=str(tmp_path),
                          select=["PURE001"],
                          baseline_path=baseline_path)
        assert result.clean
        assert result.baselined == 1

    def test_baseline_survives_drift_in_anchor_file(self, tmp_path):
        _keys, pipeline = self._fixture(tmp_path)
        baseline_path = str(tmp_path / "lint-baseline.json")
        run_lint(["src"], root=str(tmp_path), select=["PURE001"],
                 write_baseline_to=baseline_path)

        pipeline.write_text("# pushed down\n" + pipeline.read_text())
        result = run_lint(["src"], root=str(tmp_path),
                          select=["PURE001"],
                          baseline_path=baseline_path)
        assert result.clean
        assert result.baselined == 1

    def test_new_violation_not_absorbed_by_project_baseline(
            self, tmp_path):
        _keys, pipeline = self._fixture(tmp_path)
        baseline_path = str(tmp_path / "lint-baseline.json")
        run_lint(["src"], root=str(tmp_path), select=["PURE001"],
                 write_baseline_to=baseline_path)

        pipeline.write_text(pipeline.read_text().replace(
            "def _compute():\n    return time.time()",
            "def _compute():\n    return time.time() + "
            "time.monotonic()"))
        result = run_lint(["src"], root=str(tmp_path),
                          select=["PURE001"],
                          baseline_path=baseline_path)
        # The edited line no longer matches the fingerprint, and it now
        # carries two clock reads.
        assert len(result.findings) == 2
