"""Fixture tests for the concurrency rule family (CONC001–CONC005).

Each rule gets a seeded-bug fixture it must fire on and a fixed
variant it must stay silent on — the contract the repo-wide clean test
leans on.  Fixtures live under ``src/repro/service/`` (or another
``_CONC_PACKAGES`` member) because the rules scope themselves to the
thread-shared surface.
"""

from __future__ import annotations

_SCHED_UNLOCKED = """\
    import threading

    class Sched:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0
            self._worker = threading.Thread(target=self._loop)

        def _loop(self):
            with self._lock:
                self._count += 1

        def bump(self):
            self._count += 1
    """

_SCHED_LOCKED = """\
    import threading

    class Sched:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0
            self._worker = threading.Thread(target=self._loop)

        def _loop(self):
            with self._lock:
                self._count += 1

        def bump(self):
            with self._lock:
                self._count += 1
    """


class TestConc001InconsistentLocking:
    def test_fires_on_unlocked_write(self, lint_fixture):
        result = lint_fixture({"src/repro/service/sched.py":
                               _SCHED_UNLOCKED}, select=["CONC001"])
        assert [f.rule for f in result.findings] == ["CONC001"]
        finding = result.findings[0]
        assert "self._count" in finding.message
        assert "self._lock" in finding.message
        # Anchored at the write site, not the class or lock.
        assert finding.line == 14

    def test_silent_when_every_write_is_guarded(self, lint_fixture):
        result = lint_fixture({"src/repro/service/sched.py":
                               _SCHED_LOCKED}, select=["CONC001"])
        assert result.clean

    def test_init_writes_are_exempt(self, lint_fixture):
        # Construction happens-before publication: the unlocked writes
        # in __init__ must not poison the guard set.
        result = lint_fixture({"src/repro/service/sched.py":
                               _SCHED_LOCKED}, select=["CONC001"])
        assert result.clean

    def test_thread_uninvolved_class_out_of_scope(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/plain.py": """\
                import threading

                class Plain:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def locked(self):
                        with self._lock:
                            self._count += 1

                    def unlocked(self):
                        self._count += 1
                """,
        }, select=["CONC001"])
        # No threads touch Plain, so the inconsistency is not a race.
        assert result.clean


class TestConc002LockOrder:
    def test_fires_on_opposite_nesting(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/locks.py": """\
                import threading

                LOCK_A = threading.Lock()
                LOCK_B = threading.Lock()

                def one():
                    with LOCK_A:
                        with LOCK_B:
                            pass

                def two():
                    with LOCK_B:
                        with LOCK_A:
                            pass
                """,
        }, select=["CONC002"])
        assert {f.rule for f in result.findings} == {"CONC002"}
        assert len(result.findings) >= 1

    def test_silent_on_consistent_order(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/locks.py": """\
                import threading

                LOCK_A = threading.Lock()
                LOCK_B = threading.Lock()

                def one():
                    with LOCK_A:
                        with LOCK_B:
                            pass

                def two():
                    with LOCK_A:
                        with LOCK_B:
                            pass
                """,
        }, select=["CONC002"])
        assert result.clean


class TestConc003BareWait:
    def test_fires_on_wait_outside_while(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/waity.py": """\
                import threading

                class Waiter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._cond = threading.Condition(self._lock)
                        self._ready = False

                    def get(self):
                        with self._cond:
                            self._cond.wait()
                            return self._ready
                """,
        }, select=["CONC003"])
        assert [f.rule for f in result.findings] == ["CONC003"]

    def test_silent_inside_predicate_loop(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/waity.py": """\
                import threading

                class Waiter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._cond = threading.Condition(self._lock)
                        self._ready = False

                    def get(self):
                        with self._cond:
                            while not self._ready:
                                self._cond.wait()
                            return self._ready
                """,
        }, select=["CONC003"])
        assert result.clean


class TestConc004ForkSafety:
    def test_fires_on_module_lock_in_serving_closure(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/state.py": """\
                import threading

                _LOCK = threading.Lock()

                def guarded():
                    with _LOCK:
                        return 1
                """,
        }, select=["CONC004"])
        assert [f.rule for f in result.findings] == ["CONC004"]
        assert "_LOCK" in result.findings[0].message

    def test_silent_with_at_fork_reinit(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/state.py": """\
                import os
                import threading

                _LOCK = threading.Lock()

                def _reinit():
                    global _LOCK
                    _LOCK = threading.Lock()

                if hasattr(os, "register_at_fork"):
                    os.register_at_fork(after_in_child=_reinit)

                def guarded():
                    with _LOCK:
                        return 1
                """,
        }, select=["CONC004"])
        assert result.clean

    def test_silent_outside_serving_closure(self, lint_fixture):
        # Same lock, but nothing under repro.service imports it.
        result = lint_fixture({
            "src/repro/experiments/state.py": """\
                import threading

                _LOCK = threading.Lock()
                """,
        }, select=["CONC004"])
        assert result.clean

    def test_fires_on_module_level_pool_primitives(self, lint_fixture):
        # Seeded bug shaped like the worker pool done wrong: the
        # dispatcher's routing lock, reaper thread, and access-log
        # handle hoisted to module level.  A forked child inherits the
        # lock in whatever state the parent held it, the thread
        # silently does not exist, and the handle double-writes.
        result = lint_fixture({
            "src/repro/service/badpool.py": """\
                import threading

                _ROUTE_LOCK = threading.Lock()
                _REAPER = threading.Thread(target=print, daemon=True)
                _ACCESS = open("/tmp/access.log", "a")

                def route(shard):
                    with _ROUTE_LOCK:
                        _ACCESS.write(shard)
                        return shard
                """,
        }, select=["CONC004"])
        assert [f.rule for f in result.findings] == ["CONC004"] * 3
        messages = "\n".join(f.message for f in result.findings)
        assert "_ROUTE_LOCK" in messages
        assert "_REAPER" in messages
        assert "_ACCESS" in messages
        assert "register_at_fork" in messages

    def test_silent_when_primitives_are_instance_owned(
            self, lint_fixture):
        # The shipped pool idiom: every lock and handle hangs off the
        # dispatcher instance, created after fork decisions are made —
        # nothing at import time, nothing for CONC004 to flag.
        result = lint_fixture({
            "src/repro/service/goodpool.py": """\
                import threading

                class Dispatcher:
                    def __init__(self, path):
                        self._route_lock = threading.Lock()
                        self._routed = {}
                        self._access = open(path, "a")

                    def route(self, shard):
                        with self._route_lock:
                            count = self._routed.get(shard, 0)
                            self._routed[shard] = count + 1
                            return shard
                """,
        }, select=["CONC004"])
        assert result.clean

    def test_shipped_pool_module_is_fork_safe(self):
        # Not a fixture: lint the real serving closure of this repo
        # and assert the worker pool as shipped carries no CONC004
        # debt (the repo-clean test covers all rules; this pins the
        # fork-safety property to the module that forks).
        import os

        from repro.lint import lint_paths
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        result = lint_paths(["src/repro/service"], root=root,
                            select=["CONC004"])
        assert result.clean, "\n".join(
            finding.render() for finding in result.findings)


class TestConc005UnownedSharedState:
    def test_fires_on_lockless_singleton(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/registry.py": """\
                import threading

                class Registry:
                    def __init__(self):
                        self._items = {}

                    def put(self, key, value):
                        self._items[key] = value

                REG = Registry()

                def _serve():
                    REG.put("a", 1)

                def start():
                    thread = threading.Thread(target=_serve)
                    thread.start()
                    return thread
                """,
        }, select=["CONC005"])
        assert [f.rule for f in result.findings] == ["CONC005"]
        assert "Registry" in result.findings[0].message

    def test_silent_with_owning_lock(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/registry.py": """\
                import threading

                class Registry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def put(self, key, value):
                        with self._lock:
                            self._items[key] = value

                REG = Registry()

                def _serve():
                    REG.put("a", 1)

                def start():
                    thread = threading.Thread(target=_serve)
                    thread.start()
                    return thread
                """,
        }, select=["CONC005"])
        assert result.clean

    def test_fires_on_global_container_mutation(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/gauges.py": """\
                import threading

                GAUGES = {}

                def _serve():
                    GAUGES["requests"] = GAUGES.get("requests", 0) + 1

                def start():
                    thread = threading.Thread(target=_serve)
                    thread.start()
                    return thread
                """,
        }, select=["CONC005"])
        assert [f.rule for f in result.findings] == ["CONC005"]
        assert "GAUGES" in result.findings[0].message

    def test_silent_when_mutation_holds_module_lock(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/gauges.py": """\
                import threading

                _LOCK = threading.Lock()
                GAUGES = {}

                def _serve():
                    with _LOCK:
                        GAUGES["requests"] = GAUGES.get("requests", 0) + 1

                def start():
                    thread = threading.Thread(target=_serve)
                    thread.start()
                    return thread
                """,
        }, select=["CONC005"])
        assert result.clean
