"""Every shipped rule fires on a minimal fixture — and only there.

One test per rule proving (a) the violating snippet is reported and
(b) the compliant twin of the same snippet is clean, so rules cannot
silently rot into matching nothing (or everything).
"""

from __future__ import annotations


def rules_of(result):
    return [finding.rule for finding in result.findings]


class TestDET001UnseededRandomness:
    def test_global_random_call_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                import random

                def jitter():
                    return random.random()
                """,
        }, select=["DET001"])
        assert rules_of(result) == ["DET001"]

    def test_unseeded_random_constructor_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                import random

                RNG = random.Random()
                """,
        }, select=["DET001"])
        assert rules_of(result) == ["DET001"]

    def test_from_import_alias_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                from random import shuffle as mix

                def scramble(items):
                    mix(items)
                """,
        }, select=["DET001"])
        assert rules_of(result) == ["DET001"]

    def test_numpy_global_state_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                import numpy as np

                def noise(n):
                    return np.random.normal(size=n)
                """,
        }, select=["DET001"])
        assert rules_of(result) == ["DET001"]

    def test_unseeded_default_rng_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                import numpy as np

                GEN = np.random.default_rng()
                """,
        }, select=["DET001"])
        assert rules_of(result) == ["DET001"]

    def test_seeded_usage_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/good.py": """\
                import random

                import numpy as np

                RNG = random.Random(1234)
                GEN = np.random.default_rng(1234)

                def draw(rng: random.Random) -> float:
                    return rng.random()
                """,
        }, select=["DET001"])
        assert result.clean

    def test_rng_module_is_exempt(self, lint_fixture):
        result = lint_fixture({
            "src/repro/network/rng.py": """\
                import random

                def make_rng(seed):
                    return random.Random(seed)
                """,
        }, select=["DET001"])
        assert result.clean


class TestDET002WallClock:
    def test_time_call_in_kernel_module_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/geometry/clocky.py": """\
                import time

                def stamp():
                    return time.time()
                """,
        }, select=["DET002"])
        assert rules_of(result) == ["DET002"]

    def test_bare_perf_counter_import_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/sim/clocky.py": """\
                from time import perf_counter

                def elapsed():
                    return perf_counter()
                """,
        }, select=["DET002"])
        assert rules_of(result) == ["DET002"]

    def test_datetime_now_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bundling/clocky.py": """\
                from datetime import datetime

                def today():
                    return datetime.now()
                """,
        }, select=["DET002"])
        assert rules_of(result) == ["DET002"]

    def test_perf_and_obs_modules_are_exempt(self, lint_fixture):
        result = lint_fixture({
            "src/repro/perf/bench2.py": """\
                import time

                def measure():
                    return time.perf_counter()
                """,
            "src/repro/obs/clock.py": """\
                import time

                def wall():
                    return time.time()
                """,
        }, select=["DET002"])
        assert result.clean


class TestDET003UnorderedIteration:
    def test_for_over_set_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                def collect(universe):
                    chosen = set(universe)
                    out = []
                    for item in chosen:
                        out.append(item)
                    return out
                """,
        }, select=["DET003"])
        assert rules_of(result) == ["DET003"]

    def test_comprehension_over_set_literal_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                def labels():
                    return [str(x) for x in {3, 1, 2}]
                """,
        }, select=["DET003"])
        assert rules_of(result) == ["DET003"]

    def test_list_materialization_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/bad.py": """\
                def snapshot(items):
                    seen = {i for i in items}
                    return list(seen)
                """,
        }, select=["DET003"])
        assert rules_of(result) == ["DET003"]

    def test_sorted_iteration_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/good.py": """\
                def collect(universe):
                    chosen = set(universe)
                    out = []
                    for item in sorted(chosen):
                        out.append(item)
                    return sorted({x + 1 for x in chosen})
                """,
        }, select=["DET003"])
        assert result.clean

    def test_order_insensitive_sinks_are_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/good.py": """\
                def stats(items):
                    values = set(items)
                    return len(values), sum(values), max(values)
                """,
        }, select=["DET003"])
        assert result.clean

    def test_tests_are_exempt(self, lint_fixture):
        result = lint_fixture({
            "tests/test_bad.py": """\
                def test_roundtrip():
                    for item in {1, 2, 3}:
                        assert item
                """,
        }, select=["DET003"])
        assert result.clean


class TestDET004FloatEquality:
    def test_float_literal_comparison_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/geometry/eq.py": """\
                def on_unit_circle(r):
                    return r == 1.0
                """,
        }, select=["DET004"])
        assert rules_of(result) == ["DET004"]

    def test_float_method_comparison_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/charging/eq.py": """\
                def same_distance(a, b, p):
                    return a.distance_to(p) == b.distance_to(p)
                """,
        }, select=["DET004"])
        assert rules_of(result) == ["DET004"]

    def test_zero_guard_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/geometry/eq.py": """\
                def safe_div(num, denom):
                    if denom == 0.0:
                        return 0.0
                    return num / denom
                """,
        }, select=["DET004"])
        assert result.clean

    def test_outside_scoped_packages_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/experiments/eq.py": """\
                def check(r):
                    return r == 1.0
                """,
        }, select=["DET004"])
        assert result.clean


_KERNELS = """\
    from contextlib import contextmanager

    from ..bundling import fastmod as _fastmod


    @contextmanager
    def reference_kernels():
        saved = _fastmod._USE_REFERENCE
        _fastmod._USE_REFERENCE = True
        try:
            yield
        finally:
            _fastmod._USE_REFERENCE = saved
    """

_KERNELS_SOA = """\
    from contextlib import contextmanager

    from ..bundling import fastmod as _fastmod
    from ..geometry import soa as _soa


    @contextmanager
    def reference_kernels():
        saved = (_fastmod._USE_REFERENCE, _soa._USE_REFERENCE)
        _fastmod._USE_REFERENCE = True
        _soa._USE_REFERENCE = True
        try:
            yield
        finally:
            _fastmod._USE_REFERENCE = saved[0]
            _soa._USE_REFERENCE = saved[1]
    """


class TestPAR001KernelParity:
    def test_reference_without_fast_sibling_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/perf/kernels.py": _KERNELS,
            "src/repro/bundling/fastmod.py": """\
                _USE_REFERENCE = False

                def cover_reference(items):
                    return sorted(items)
                """,
        }, select=["PAR001"])
        assert "PAR001" in rules_of(result)
        assert any("no fast sibling" in f.message
                   for f in result.findings)

    def test_unregistered_reference_module_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/perf/kernels.py": _KERNELS,
            "src/repro/bundling/fastmod.py": """\
                _USE_REFERENCE = False

                def cover(items):
                    if _USE_REFERENCE:
                        return cover_reference(items)
                    return sorted(items)

                def cover_reference(items):
                    return sorted(items)
                """,
            "src/repro/tour/rogue.py": """\
                def shortcut(tour):
                    return shortcut_reference(tour)

                def shortcut_reference(tour):
                    return tour
                """,
        }, select=["PAR001"])
        assert any("not gated" in f.message for f in result.findings)

    def test_registered_but_unused_backend_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/perf/kernels.py": _KERNELS,
            "src/repro/bundling/fastmod.py": """\
                _USE_REFERENCE = False
                """,
            "src/repro/tour/other.py": """\
                _USE_REFERENCE = False

                def walk(t):
                    if _USE_REFERENCE:
                        return walk_reference(t)
                    return t

                def walk_reference(t):
                    return t
                """,
        }, select=["PAR001"])
        assert any("no '*_reference' kernel references" in f.message
                   for f in result.findings)

    def test_paired_and_registered_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/perf/kernels.py": _KERNELS,
            "src/repro/bundling/fastmod.py": """\
                _USE_REFERENCE = False

                def cover(items):
                    if _USE_REFERENCE:
                        return cover_reference(items)
                    return sorted(items)

                def cover_reference(items):
                    return sorted(items)
                """,
        }, select=["PAR001"])
        assert result.clean

    def test_soa_sibling_from_registered_backend_is_clean(
            self, lint_fixture):
        """``rows_reference`` pairs with ``flat_rows`` imported from the
        registered SoA backend (here via the parent package re-export,
        like ``repro.tsp.distance`` imports ``flat_distance_rows``)."""
        result = lint_fixture({
            "src/repro/perf/kernels.py": _KERNELS_SOA,
            "src/repro/bundling/fastmod.py": """\
                _USE_REFERENCE = False

                def cover(items):
                    if _USE_REFERENCE:
                        return cover_reference(items)
                    return sorted(items)

                def cover_reference(items):
                    return sorted(items)
                """,
            "src/repro/geometry/soa.py": """\
                _USE_REFERENCE = False

                def flat_rows(xs):
                    return list(xs)
                """,
            "src/repro/tour/dist.py": """\
                from ..geometry import flat_rows, soa

                class Matrix:
                    def __init__(self, points):
                        if soa._USE_REFERENCE:
                            self.rows = rows_reference(points)
                        else:
                            self.rows = flat_rows(points)

                def rows_reference(points):
                    return [list(p) for p in points]
                """,
        }, select=["PAR001"])
        assert result.clean

    def test_soa_sibling_from_unregistered_module_fires(
            self, lint_fixture):
        """A ``flat_*`` import only satisfies the parity contract when
        it comes from a backend ``reference_kernels()`` can switch."""
        result = lint_fixture({
            "src/repro/perf/kernels.py": _KERNELS_SOA,
            "src/repro/bundling/fastmod.py": """\
                _USE_REFERENCE = False

                def cover(items):
                    if _USE_REFERENCE:
                        return cover_reference(items)
                    return sorted(items)

                def cover_reference(items):
                    return sorted(items)
                """,
            "src/repro/geometry/soa.py": """\
                _USE_REFERENCE = False

                def flat_rows(xs):
                    return list(xs)
                """,
            "src/repro/tour/helpers.py": """\
                def flat_rows(xs):
                    return list(xs)
                """,
            "src/repro/tour/dist.py": """\
                from ..geometry import soa
                from .helpers import flat_rows

                class Matrix:
                    def __init__(self, points):
                        if soa._USE_REFERENCE:
                            self.rows = rows_reference(points)
                        else:
                            self.rows = flat_rows(points)

                def rows_reference(points):
                    return [list(p) for p in points]
                """,
        }, select=["PAR001"])
        assert any("no fast sibling" in f.message
                   for f in result.findings)


class TestOBS001ObsImportFallback:
    def test_unguarded_module_level_import_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/tour/mod.py": """\
                from ..obs.tracer import obs_span

                def walk():
                    with obs_span("walk"):
                        pass
                """,
        }, select=["OBS001"])
        assert rules_of(result) == ["OBS001"]

    def test_fallback_pattern_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/tour/mod.py": """\
                try:
                    from ..obs.tracer import obs_span
                except ImportError:
                    from contextlib import nullcontext as _nullcontext

                    def obs_span(name, **attrs):
                        return _nullcontext()
                """,
        }, select=["OBS001"])
        assert result.clean

    def test_lazy_function_level_import_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/tour/mod.py": """\
                def report():
                    from ..obs.manifest import build_manifest
                    return build_manifest
                """,
        }, select=["OBS001"])
        assert result.clean

    def test_obs_package_itself_is_exempt(self, lint_fixture):
        result = lint_fixture({
            "src/repro/obs/report2.py": """\
                from .tracer import TRACER
                from repro.obs.jsonl import read_jsonl
                """,
        }, select=["OBS001"])
        assert result.clean


class TestOBS001CacheImportFallback:
    """OBS001 also guards ``repro.cache`` — the other optional subsystem."""

    def test_unguarded_cache_import_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/mod.py": """\
                from ..cache import stage_memo

                def compute():
                    return stage_memo("s", dict, dict)
                """,
        }, select=["OBS001"])
        assert rules_of(result) == ["OBS001"]
        assert "cache" in result.findings[0].message

    def test_guarded_cache_import_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/mod.py": """\
                try:
                    from ..cache import stage_memo
                except ImportError:
                    def stage_memo(stage, params, compute):
                        return compute()
                """,
        }, select=["OBS001"])
        assert result.clean

    def test_lazy_cache_import_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/mod.py": """\
                def build():
                    from ..cache import StageCache
                    return StageCache()
                """,
        }, select=["OBS001"])
        assert result.clean

    def test_cache_package_itself_is_exempt(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/extras.py": """\
                from .stage import StageCache
                from repro.cache.keys import stage_key
                """,
        }, select=["OBS001"])
        assert result.clean


class TestParseErrors:
    def test_syntax_error_is_reported_not_crashed(self, lint_fixture):
        result = lint_fixture({
            "src/repro/broken.py": "def oops(:\n",
        })
        assert rules_of(result) == ["E999"]


class TestOBS002ClockIndirection:
    def test_direct_monotonic_in_service_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/bad.py": """\
                import time

                def stamp():
                    return time.monotonic()
                """,
        }, select=["OBS002"])
        assert rules_of(result) == ["OBS002"]
        assert "repro.clock" in result.findings[0].message

    def test_bare_from_import_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/loadgen/bad.py": """\
                from time import time

                def stamp():
                    return time()
                """,
        }, select=["OBS002"])
        assert rules_of(result) == ["OBS002"]

    def test_aliased_module_fires(self, lint_fixture):
        result = lint_fixture({
            "src/repro/obs/bad.py": """\
                import time as _t

                def stamp():
                    return _t.perf_counter()
                """,
        }, select=["OBS002"])
        assert rules_of(result) == ["OBS002"]

    def test_repro_clock_usage_is_clean(self, lint_fixture):
        result = lint_fixture({
            "src/repro/service/good.py": """\
                from ..clock import monotonic, wall

                def stamp():
                    return monotonic(), wall()
                """,
        }, select=["OBS002"])
        assert result.clean

    def test_sleep_and_formatting_are_allowed(self, lint_fixture):
        result = lint_fixture({
            "src/repro/loadgen/good.py": """\
                import time

                def pace():
                    time.sleep(0.01)
                    return time.strftime("%Y", time.gmtime(0.0))
                """,
        }, select=["OBS002"])
        assert result.clean

    def test_rule_scoped_to_serving_packages(self, lint_fixture):
        # Kernel modules have their own determinism rules; OBS002
        # must not fire outside repro.service/obs/loadgen.
        result = lint_fixture({
            "src/repro/perf/sampler.py": """\
                import time

                def stamp():
                    return time.monotonic()
                """,
        }, select=["OBS002"])
        assert result.clean
