"""Fixture tests for the cache-purity rule family (PURE001–PURE002).

The rules root themselves at ``stage_memo``/``get_or_compute`` call
sites whose stage names appear in ``repro.cache.keys.KERNEL_VERSIONS``
and scan the call-graph closure of the compute callables, so every
fixture ships a minimal ``keys.py`` next to the offending pipeline
module.
"""

from __future__ import annotations

_KEYS = """\
    KERNEL_VERSIONS = {
        "tsp": "v1",
    }
    """


class TestPure001ClockAndRng:
    def test_fires_on_direct_clock_read(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                import time

                def _compute():
                    return time.time()

                def run():
                    return stage_memo("tsp", lambda: {}, _compute)

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE001"])
        assert [f.rule for f in result.findings] == ["PURE001"]
        assert "time.time" in result.findings[0].message

    def test_fires_transitively_through_call_graph(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                import time

                def _clock():
                    return time.time()

                def _compute():
                    return _clock()

                def run():
                    return stage_memo("tsp", lambda: {}, _compute)

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE001"])
        assert [f.rule for f in result.findings] == ["PURE001"]
        # The violation is in the helper, two hops from the root, and
        # the message attributes it to the registering stage.
        assert "_clock" in result.findings[0].message
        assert "'tsp'" in result.findings[0].message

    def test_fires_on_global_rng(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                import random

                def _compute():
                    return random.random()

                def run():
                    return stage_memo("tsp", lambda: {}, _compute)

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE001"])
        assert [f.rule for f in result.findings] == ["PURE001"]

    def test_fires_inside_inline_lambda_compute(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                import time

                def run():
                    return stage_memo("tsp", lambda: {},
                                      lambda: time.time())

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE001"])
        assert [f.rule for f in result.findings] == ["PURE001"]

    def test_silent_when_value_threaded_through_params(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                def _compute_for(now):
                    def _compute():
                        return now
                    return _compute

                def run(now):
                    return stage_memo("tsp", lambda: {"now": now},
                                      _compute_for(now))

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE001"])
        assert result.clean

    def test_silent_outside_any_stage(self, lint_fixture):
        # time.time in a function never registered as a compute root.
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                import time

                def unrelated():
                    return time.time()
                """,
        }, select=["PURE001"])
        assert result.clean

    def test_silent_without_kernel_versions(self, lint_fixture):
        # CI lints subtrees: with keys.py outside the file set the
        # stage rules must go silent rather than guess.
        result = lint_fixture({
            "src/repro/pipeline.py": """\
                import time

                def _compute():
                    return time.time()

                def run():
                    return stage_memo("tsp", lambda: {}, _compute)

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE001"])
        assert result.clean


class TestDeltaStageDiscovery:
    """Stages registered after the dict literal are auto-covered.

    ``repro.delta`` adds its ``delta_*`` stages to KERNEL_VERSIONS via
    ``KERNEL_VERSIONS["stage"] = ...`` / ``.update({...})`` rather than
    editing the literal; the purity rules must still see them.
    """

    def test_fires_on_subscript_registered_stage(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": """\
                KERNEL_VERSIONS = {
                    "tsp": "v1",
                }
                KERNEL_VERSIONS["delta_cover"] = "greedy-repair-v1"
                """,
            "src/repro/pipeline.py": """\
                import time

                def _compute():
                    return time.time()

                def run():
                    return stage_memo("delta_cover", lambda: {},
                                      _compute)

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE001"])
        assert [f.rule for f in result.findings] == ["PURE001"]
        assert "'delta_cover'" in result.findings[0].message

    def test_fires_on_update_registered_stage(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": """\
                KERNEL_VERSIONS = {
                    "tsp": "v1",
                }
                KERNEL_VERSIONS.update({
                    "delta_candidates": "dirty-region-v1",
                    "delta_request": "repair-v1",
                })
                """,
            "src/repro/pipeline.py": """\
                import random

                def _compute():
                    return random.random()

                def run():
                    return stage_memo("delta_candidates", lambda: {},
                                      _compute)

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE001"])
        assert [f.rule for f in result.findings] == ["PURE001"]
        assert "'delta_candidates'" in result.findings[0].message

    def test_seeded_rng_threaded_through_params_is_clean(
            self, lint_fixture):
        # The delta engine's discipline: derive the RNG outside the
        # stage, thread the seed through params.
        result = lint_fixture({
            "src/repro/cache/keys.py": """\
                KERNEL_VERSIONS = {}
                KERNEL_VERSIONS.update({"delta_cover": "v1"})
                """,
            "src/repro/pipeline.py": """\
                def _compute_for(seed):
                    def _compute():
                        return seed * 3
                    return _compute

                def run(seed):
                    return stage_memo("delta_cover",
                                      lambda: {"seed": seed},
                                      _compute_for(seed))

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE001", "PURE002"])
        assert result.clean

    def test_real_keys_module_exposes_delta_stages(self):
        # Guard against the registration idiom in the real module
        # drifting away from what _stage_names can parse.
        from repro.cache.keys import KERNEL_VERSIONS
        for stage in ("delta_candidates", "delta_cover",
                      "delta_request"):
            assert stage in KERNEL_VERSIONS


class TestPure002AmbientReads:
    def test_fires_on_os_environ(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                import os

                def _compute():
                    return os.environ.get("MODE", "fast")

                def run():
                    return stage_memo("tsp", lambda: {}, _compute)

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE002"])
        assert [f.rule for f in result.findings] == ["PURE002"]
        assert "os.environ" in result.findings[0].message

    def test_fires_on_rebound_module_global(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                _MODE = "fast"

                def set_mode(mode):
                    global _MODE
                    _MODE = mode

                def _compute():
                    return _MODE

                def run():
                    return stage_memo("tsp", lambda: {}, _compute)

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE002"])
        assert [f.rule for f in result.findings] == ["PURE002"]
        assert "_MODE" in result.findings[0].message

    def test_silent_on_constant_module_global(self, lint_fixture):
        # A module global nobody rebinds is configuration, not state.
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                _SCALE = 2.0

                def _compute():
                    return _SCALE

                def run():
                    return stage_memo("tsp", lambda: {}, _compute)

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE002"])
        assert result.clean

    def test_silent_when_passed_through_params(self, lint_fixture):
        result = lint_fixture({
            "src/repro/cache/keys.py": _KEYS,
            "src/repro/pipeline.py": """\
                def _compute_for(mode):
                    def _compute():
                        return mode
                    return _compute

                def run(mode):
                    return stage_memo("tsp", lambda: {"mode": mode},
                                      _compute_for(mode))

                def stage_memo(stage, params_fn, compute):
                    return compute()
                """,
        }, select=["PURE002"])
        assert result.clean
