"""Acceptance: the repository itself passes its own linter.

This is the test CI leans on — every determinism/invariant rule holds
over ``src/`` and ``tests/`` with an *empty* baseline, i.e. nothing is
grandfathered.
"""

from __future__ import annotations

import json
import os

from repro.lint import lint_paths, load_baseline

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def test_repo_is_lint_clean():
    result = lint_paths(["src", "tests"], root=REPO_ROOT)
    assert result.findings == [], "\n".join(
        finding.render() for finding in result.findings)
    assert result.files_checked > 200


def test_committed_baseline_is_empty():
    path = os.path.join(REPO_ROOT, "lint-baseline.json")
    assert os.path.exists(path), "lint-baseline.json must be committed"
    baseline = load_baseline(path)
    assert baseline.entries == {}, (
        "the baseline should stay empty: fix findings at the source "
        "instead of grandfathering them")
    payload = json.load(open(path))
    assert payload["version"] == 1


def test_every_shipped_rule_is_registered():
    from repro.lint import all_rules
    ids = [rule.id for rule in all_rules()]
    assert ids == sorted(ids)
    for expected in ("DET001", "DET002", "DET003", "DET004",
                     "PAR001", "OBS001",
                     "CONC001", "CONC002", "CONC003", "CONC004",
                     "CONC005", "PURE001", "PURE002"):
        assert expected in ids
    for rule in all_rules():
        assert rule.title, f"{rule.id} has no title"
        assert rule.rationale, f"{rule.id} has no rationale"
