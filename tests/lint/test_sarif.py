"""The SARIF 2.1.0 reporter and the ``--stats``/``--jobs`` CLI flags."""

from __future__ import annotations

import json
import textwrap

from repro.lint import LINT_STATS_SCHEMA_ID
from repro.lint.cli import main as lint_main
from repro.lint.report import SARIF_SCHEMA_URI

_VIOLATION = """\
    import random

    def jitter():
        return random.random()
    """


def _write(tmp_path, rel, content=_VIOLATION):
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(content))


class TestSarifReport:
    def _run(self, tmp_path, capsys, extra=()):
        _write(tmp_path, "src/repro/bad.py")
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--format", "sarif",
                          "--select", "DET001", *extra])
        return code, json.loads(capsys.readouterr().out)

    def test_top_level_shape(self, tmp_path, capsys):
        code, payload = self._run(tmp_path, capsys)
        assert code == 1
        assert payload["version"] == "2.1.0"
        assert payload["$schema"] == SARIF_SCHEMA_URI
        assert len(payload["runs"]) == 1

    def test_result_location_is_one_based(self, tmp_path, capsys):
        _code, payload = self._run(tmp_path, capsys)
        (result,) = payload["runs"][0]["results"]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "warning"
        region = (result["locations"][0]["physicalLocation"]["region"])
        assert region["startLine"] == 4
        # Finding cols are 0-based; SARIF columns are 1-based.
        assert region["startColumn"] >= 1
        artifact = (result["locations"][0]["physicalLocation"]
                    ["artifactLocation"]["uri"])
        assert artifact == "src/repro/bad.py"

    def test_rule_table_covers_registry_and_e999(self, tmp_path, capsys):
        _code, payload = self._run(tmp_path, capsys)
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "bundle-charging-lint"
        ids = [rule["id"] for rule in driver["rules"]]
        for expected in ("E999", "DET001", "CONC001", "PURE001"):
            assert expected in ids
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]

    def test_rule_index_points_into_rule_table(self, tmp_path, capsys):
        _code, payload = self._run(tmp_path, capsys)
        run = payload["runs"][0]
        (result,) = run["results"]
        meta = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert meta["id"] == result["ruleId"]

    def test_parse_error_is_error_level(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/broken.py", "def oops(:\n")
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--format", "sarif"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        (result,) = payload["runs"][0]["results"]
        assert result["ruleId"] == "E999"
        assert result["level"] == "error"

    def test_clean_run_has_empty_results(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/ok.py", "X = 1\n")
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--format", "sarif"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []


class TestStatsFlag:
    def test_stats_to_file(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/bad.py")
        stats_path = tmp_path / "stats.json"
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--select", "DET001",
                          "--stats", str(stats_path)])
        assert code == 1
        stats = json.loads(stats_path.read_text())
        assert stats["schema"] == LINT_STATS_SCHEMA_ID
        assert stats["rules"]["DET001"]["findings"] == 1

    def test_stats_to_stderr(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/ok.py", "X = 1\n")
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--stats"])
        assert code == 0
        err = capsys.readouterr().err
        stats = json.loads(err)
        assert stats["schema"] == LINT_STATS_SCHEMA_ID

    def test_stats_validates_through_obs(self, tmp_path, capsys):
        from repro.obs.validate import validate_lint_stats
        _write(tmp_path, "src/repro/ok.py", "X = 1\n")
        stats_path = tmp_path / "stats.json"
        lint_main(["src", "--root", str(tmp_path), "--no-baseline",
                   "--stats", str(stats_path)])
        capsys.readouterr()
        assert validate_lint_stats(
            json.loads(stats_path.read_text())) == []


class TestJobsFlag:
    def test_jobs_must_be_positive(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/ok.py", "X = 1\n")
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--jobs", "0"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_exit_code_matches_serial(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/bad.py")
        _write(tmp_path, "src/repro/bad2.py")
        serial = lint_main(["src", "--root", str(tmp_path),
                            "--no-baseline", "--select", "DET001"])
        out_serial = capsys.readouterr().out
        parallel = lint_main(["src", "--root", str(tmp_path),
                              "--no-baseline", "--select", "DET001",
                              "--jobs", "2"])
        out_parallel = capsys.readouterr().out
        assert serial == parallel == 1
        assert out_serial == out_parallel
