"""Unit tests for the semantic model (``repro.lint.project``) and the
call graph (``repro.lint.callgraph``) that project-scope rules share."""

from __future__ import annotations

import ast
import textwrap
from typing import Dict

from repro.lint.core import FileContext, ProjectContext


def _project(files: Dict[str, str]) -> ProjectContext:
    contexts = []
    for rel, source in files.items():
        source = textwrap.dedent(source)
        contexts.append(FileContext(rel_path=rel, source=source,
                                    tree=ast.parse(source)))
    return ProjectContext(files=contexts)


class TestImportResolution:
    def test_package_init_relative_import(self):
        # ``from .active import helper`` inside a package __init__
        # resolves against the package itself, not its parent.
        project = _project({
            "src/repro/cache/__init__.py":
                "from .active import helper\n",
            "src/repro/cache/active.py":
                "def helper():\n    return 1\n",
        })
        analysis = project.analysis()
        syms = analysis.modules["repro.cache"]
        assert syms.from_names["helper"] == ("repro.cache.active",
                                             "helper")

    def test_module_relative_import(self):
        # The same level-1 import inside a plain module resolves
        # against the containing package.
        project = _project({
            "src/repro/cache/stage.py":
                "from .keys import stage_key\n",
            "src/repro/cache/keys.py":
                "def stage_key(stage, params):\n    return stage\n",
        })
        analysis = project.analysis()
        syms = analysis.modules["repro.cache.stage"]
        assert syms.from_names["stage_key"] == ("repro.cache.keys",
                                                "stage_key")

    def test_import_graph_edges(self):
        project = _project({
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": "x = 1\n",
        })
        analysis = project.analysis()
        assert "repro.b" in analysis.import_graph.get("repro.a", set())

    def test_import_closure(self):
        project = _project({
            "src/repro/service/__init__.py":
                "from repro.cache import helper\n",
            "src/repro/cache/__init__.py":
                "from .active import helper\n",
            "src/repro/cache/active.py":
                "def helper():\n    return 1\n",
            "src/repro/unrelated.py": "y = 2\n",
        })
        analysis = project.analysis()
        closure = analysis.import_closure({"repro.service"})
        assert "repro.cache.active" in closure
        assert "repro.unrelated" not in closure


class TestCallGraph:
    def test_edge_through_package_reexport(self):
        # Caller imports a name from the package; the graph must chase
        # the __init__ re-export to the defining module.
        project = _project({
            "src/repro/cache/__init__.py":
                "from .active import helper\n",
            "src/repro/cache/active.py":
                "def helper():\n    return 1\n",
            "src/repro/runner.py": """\
                from repro.cache import helper

                def go():
                    return helper()
                """,
        })
        graph, _resolver = project.call_graph()
        reach = graph.reachable({"repro.runner:go"})
        assert "repro.cache.active:helper" in reach

    def test_method_call_on_module_singleton(self):
        project = _project({
            "src/repro/service/reg.py": """\
                class Registry:
                    def put(self, key):
                        return key

                REG = Registry()

                def serve():
                    return REG.put("a")
                """,
        })
        graph, _resolver = project.call_graph()
        reach = graph.reachable({"repro.service.reg:serve"})
        assert "repro.service.reg:Registry.put" in reach

    def test_thread_roots_include_thread_targets(self):
        project = _project({
            "src/repro/service/bg.py": """\
                import threading

                def _loop():
                    return 1

                def start():
                    thread = threading.Thread(target=_loop)
                    thread.start()
                    return thread
                """,
        })
        _graph, resolver = project.call_graph()
        assert "repro.service.bg:_loop" in resolver.thread_roots()

    def test_shortest_path_finds_registering_root(self):
        project = _project({
            "src/repro/pipe.py": """\
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 1
                """,
        })
        graph, _resolver = project.call_graph()
        path = graph.shortest_path({"repro.pipe:a"}, "repro.pipe:c")
        assert path[0] == "repro.pipe:a"
        assert path[-1] == "repro.pipe:c"

    def test_non_src_files_have_no_module_identity(self):
        project = _project({
            "tests/test_x.py": "def helper():\n    return 1\n",
        })
        analysis = project.analysis()
        assert analysis.modules == {} or \
            "tests.test_x" not in analysis.modules


class TestSharedModelCaching:
    def test_analysis_is_resolved_once(self):
        project = _project({
            "src/repro/a.py": "x = 1\n",
        })
        assert project.analysis() is project.analysis()
        assert project.call_graph() is project.call_graph()
