"""The mypy gate for the typed packages (geometry + charging).

Skipped when mypy is not installed (it is an optional ``dev`` extra);
CI installs it and runs both this test and the standalone
``python -m mypy`` step from .github/workflows/ci.yml.
"""

from __future__ import annotations

import os

import pytest

mypy_api = pytest.importorskip(
    "mypy.api", reason="mypy not installed (pip install -e .[dev])")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def test_geometry_and_charging_are_typed_clean():
    stdout, stderr, status = mypy_api.run([
        os.path.join(REPO_ROOT, "src", "repro", "geometry"),
        os.path.join(REPO_ROOT, "src", "repro", "charging"),
        "--config-file", os.path.join(REPO_ROOT, "pyproject.toml"),
    ])
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
