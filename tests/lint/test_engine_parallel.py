"""Engine throughput features: ``jobs`` fan-out, content-hash caching,
and the ``bundle-charging/lint-stats/v1`` timing document."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import (LINT_STATS_SCHEMA_ID, lint_paths,
                        lint_stats_problems)
from repro.lint.engine import _RESULT_CACHE

_CLEAN = """\
    def add(a, b):
        return a + b
    """

_DIRTY = """\
    import random

    def jitter():
        return random.random()
    """


@pytest.fixture
def fixture_tree(tmp_path):
    for index in range(6):
        target = tmp_path / "src" / "repro" / f"mod{index}.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(
            _DIRTY if index % 2 else _CLEAN))
    return tmp_path


class TestJobsParity:
    def test_parallel_findings_match_serial(self, fixture_tree):
        _RESULT_CACHE.clear()
        serial = lint_paths(["src"], root=str(fixture_tree))
        _RESULT_CACHE.clear()
        parallel = lint_paths(["src"], root=str(fixture_tree), jobs=2)
        assert parallel.findings == serial.findings
        assert parallel.suppressed == serial.suppressed
        assert parallel.files_checked == serial.files_checked
        assert len(serial.findings) == 3  # one DET001 per dirty module

    def test_jobs_recorded_in_stats(self, fixture_tree):
        _RESULT_CACHE.clear()
        result = lint_paths(["src"], root=str(fixture_tree), jobs=2)
        assert result.stats["jobs"] == 2


class TestContentHashCache:
    def test_second_run_is_fully_cached(self, fixture_tree):
        _RESULT_CACHE.clear()
        cold = lint_paths(["src"], root=str(fixture_tree))
        assert cold.stats["files"]["cached"] == 0
        warm = lint_paths(["src"], root=str(fixture_tree))
        assert warm.stats["files"]["cached"] == warm.files_checked
        assert warm.findings == cold.findings

    def test_changed_file_invalidates_only_itself(self, fixture_tree):
        _RESULT_CACHE.clear()
        lint_paths(["src"], root=str(fixture_tree))
        target = fixture_tree / "src" / "repro" / "mod0.py"
        target.write_text("def changed():\n    return 2\n")
        warm = lint_paths(["src"], root=str(fixture_tree))
        assert warm.stats["files"]["cached"] == warm.files_checked - 1

    def test_cache_keyed_by_selected_rules(self, fixture_tree):
        _RESULT_CACHE.clear()
        all_rules = lint_paths(["src"], root=str(fixture_tree))
        det_only = lint_paths(["src"], root=str(fixture_tree),
                              select=["DET004"])
        # Different rule set -> different cache key -> no false reuse.
        assert det_only.stats["files"]["cached"] == 0
        assert det_only.clean
        assert not all_rules.clean


class TestStatsDocument:
    def test_stats_validate_clean(self, fixture_tree):
        result = lint_paths(["src"], root=str(fixture_tree))
        assert result.stats["schema"] == LINT_STATS_SCHEMA_ID
        assert lint_stats_problems(result.stats) == []

    def test_stats_validate_through_obs(self, fixture_tree):
        from repro.obs.validate import validate_lint_stats
        result = lint_paths(["src"], root=str(fixture_tree))
        assert validate_lint_stats(result.stats) == []

    def test_per_rule_entries_cover_findings(self, fixture_tree):
        _RESULT_CACHE.clear()
        result = lint_paths(["src"], root=str(fixture_tree))
        rules = result.stats["rules"]
        assert rules["DET001"]["findings"] == 3
        assert rules["DET001"]["seconds"] >= 0.0

    def test_phase_timings_are_complete(self, fixture_tree):
        result = lint_paths(["src"], root=str(fixture_tree))
        phases = result.stats["phases"]
        for key in ("scan_s", "parse_s", "file_rules_s",
                    "semantic_model_s", "project_rules_s", "filter_s",
                    "total_s"):
            assert phases[key] >= 0.0
        assert phases["total_s"] >= phases["filter_s"]

    def test_problems_reported_on_malformed_documents(self):
        assert lint_stats_problems(None)
        assert lint_stats_problems({"schema": "nope"})
        broken = {"schema": LINT_STATS_SCHEMA_ID, "jobs": 0,
                  "files": {"checked": -1},
                  "phases": {}, "rules": {"X": {"seconds": -1}}}
        problems = lint_stats_problems(broken)
        assert any("jobs" in p for p in problems)
        assert any("checked" in p for p in problems)
        assert any("total_s" in p for p in problems)
        assert any("X" in p for p in problems)

    def test_parse_errors_counted(self, tmp_path):
        target = tmp_path / "src" / "repro" / "broken.py"
        target.parent.mkdir(parents=True)
        target.write_text("def oops(:\n")
        result = lint_paths(["src"], root=str(tmp_path))
        assert result.stats["files"]["parse_errors"] == 1
        assert [f.rule for f in result.findings] == ["E999"]
