"""Reporters: text rendering, JSON schema, CLI exit codes."""

from __future__ import annotations

import json
import textwrap

from repro.cli import main as cli_main
from repro.lint import JSON_SCHEMA_ID
from repro.lint.cli import main as lint_main

_VIOLATION = """\
    import random

    def jitter():
        return random.random()
    """


def _write(tmp_path, rel, content=_VIOLATION):
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(content))


class TestJsonReport:
    def test_schema_shape(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/bad.py")
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--format", "json",
                          "--select", "DET001"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == JSON_SCHEMA_ID
        assert set(payload) == {"schema", "summary", "findings"}
        assert set(payload["summary"]) == {
            "files_checked", "findings", "suppressed", "baselined",
            "clean"}
        assert payload["summary"]["clean"] is False
        assert payload["summary"]["findings"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        assert finding["rule"] == "DET001"
        assert finding["path"] == "src/repro/bad.py"
        assert finding["line"] == 4

    def test_clean_run_shape(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/ok.py", "X = 1\n")
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["clean"] is True
        assert payload["findings"] == []


class TestTextReport:
    def test_findings_and_summary(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/bad.py")
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--select", "DET001"])
        assert code == 1
        out = capsys.readouterr().out
        assert "src/repro/bad.py:4:" in out
        assert "DET001" in out
        assert "1 finding" in out

    def test_list_rules_catalogue(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004",
                        "PAR001", "OBS001"):
            assert rule_id in out


class TestCliDispatch:
    def test_bundle_charging_lint_subcommand(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/bad.py")
        code = cli_main(["lint", "src", "--root", str(tmp_path),
                         "--no-baseline", "--select", "DET001"])
        assert code == 1
        assert "DET001" in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/ok.py", "X = 1\n")
        code = lint_main(["src", "--root", str(tmp_path),
                          "--no-baseline", "--select", "NOPE999"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        code = lint_main(["does-not-exist", "--root", str(tmp_path),
                          "--no-baseline"])
        assert code == 2

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/bad.py")
        baseline = str(tmp_path / "lint-baseline.json")
        assert lint_main(["src", "--root", str(tmp_path),
                          "--baseline", baseline,
                          "--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main(["src", "--root", str(tmp_path),
                          "--baseline", baseline]) == 0
        assert "1 baselined" in capsys.readouterr().out
