"""Tests for the lifetime simulator."""

import pytest

from repro.errors import SimulationError
from repro.lifetime import ConstantDrain, LifetimeSimulator
from repro.network import uniform_deployment
from repro.planners import make_planner

DAY_S = 86_400.0


def _simulator(paper_cost, count=20, rate_w=5e-6, trigger_count=3,
               threshold=0.5, seed=5, planner_name="BC", radius=30.0):
    network = uniform_deployment(count=count, seed=seed,
                                 field_side_m=500.0)
    return LifetimeSimulator(
        network=network,
        planner=make_planner(planner_name, radius),
        cost=paper_cost,
        consumption=ConstantDrain(rate_w=rate_w),
        battery_capacity_j=2.0,
        trigger_threshold_j=threshold,
        trigger_count=trigger_count,
    )


class TestLifetimeSimulator:
    def test_no_drain_no_rounds(self, paper_cost):
        simulator = _simulator(paper_cost, rate_w=0.0)
        result = simulator.run(horizon_s=2 * DAY_S)
        assert result.round_count == 0
        assert result.availability == 1.0
        assert result.charger_energy_j == 0.0

    def test_rounds_triggered_by_drain(self, paper_cost):
        simulator = _simulator(paper_cost)
        result = simulator.run(horizon_s=20 * DAY_S)
        assert result.round_count >= 1
        assert result.charger_energy_j > 0.0

    def test_batteries_recover_after_rounds(self, paper_cost):
        simulator = _simulator(paper_cost)
        result = simulator.run(horizon_s=20 * DAY_S)
        # After the horizon, batteries should be well above zero thanks
        # to recharging.
        assert min(result.final_batteries_j) > 0.0

    def test_faster_drain_more_rounds(self, paper_cost):
        slow = _simulator(paper_cost, rate_w=3e-6).run(20 * DAY_S)
        fast = _simulator(paper_cost, rate_w=9e-6).run(20 * DAY_S)
        assert fast.round_count > slow.round_count

    def test_energy_per_day_positive(self, paper_cost):
        result = _simulator(paper_cost).run(20 * DAY_S)
        assert result.energy_per_day_j > 0.0
        assert result.charger_energy_j == pytest.approx(
            sum(r.charger_energy_j for r in result.rounds))

    def test_availability_drops_when_charging_cannot_keep_up(
            self, paper_cost):
        # Drain so aggressive the battery empties long before the
        # trigger threshold can be honoured mission-to-mission.
        simulator = _simulator(paper_cost, rate_w=5e-4,
                               trigger_count=10, threshold=0.1)
        result = simulator.run(horizon_s=5 * DAY_S, max_rounds=500)
        assert result.downtime_sensor_s > 0.0
        assert result.availability < 1.0

    def test_round_records_consistent(self, paper_cost):
        result = _simulator(paper_cost).run(20 * DAY_S)
        for record in result.rounds:
            assert record.mission_time_s > 0.0
            assert record.stops >= 1
            assert 0.0 <= record.trigger_time_s <= 20 * DAY_S

    def test_min_battery_tracked(self, paper_cost):
        result = _simulator(paper_cost).run(20 * DAY_S)
        assert 0.0 <= result.min_battery_j <= 2.0

    def test_invalid_configuration_rejected(self, paper_cost):
        network = uniform_deployment(count=5, seed=1)
        drain = ConstantDrain(rate_w=1e-6)
        planner = make_planner("BC", 30.0)
        with pytest.raises(SimulationError):
            LifetimeSimulator(network, planner, paper_cost, drain,
                              battery_capacity_j=0.0,
                              trigger_threshold_j=0.0)
        with pytest.raises(SimulationError):
            LifetimeSimulator(network, planner, paper_cost, drain,
                              battery_capacity_j=2.0,
                              trigger_threshold_j=5.0)
        with pytest.raises(SimulationError):
            LifetimeSimulator(network, planner, paper_cost, drain,
                              battery_capacity_j=2.0,
                              trigger_threshold_j=0.5,
                              trigger_count=0)

    def test_invalid_horizon_rejected(self, paper_cost):
        with pytest.raises(SimulationError):
            _simulator(paper_cost).run(horizon_s=0.0)

    def test_max_rounds_guard(self, paper_cost):
        # Threshold equal to capacity-epsilon triggers immediately and
        # forever -> the guard must fire.
        simulator = _simulator(paper_cost, rate_w=1e-3,
                               threshold=1.999, trigger_count=1)
        with pytest.raises(SimulationError):
            simulator.run(horizon_s=30 * DAY_S, max_rounds=3)
