"""Tests for sensor consumption models."""

import pytest

from repro.errors import ModelError
from repro.lifetime import ConstantDrain, EventDrain


class TestConstantDrain:
    def test_homogeneous(self):
        model = ConstantDrain(rate_w=2.0)
        assert model.energy_spent(0, 0.0, 10.0) == pytest.approx(20.0)
        assert model.energy_spent(5, 100.0, 10.0) == pytest.approx(20.0)

    def test_heterogeneous_within_spread(self):
        model = ConstantDrain(rate_w=1.0, spread=0.5, sensor_count=50,
                              seed=1)
        rates = [model.rate_for(i) for i in range(50)]
        assert all(0.5 <= r <= 1.5 for r in rates)
        assert len(set(rates)) > 1

    def test_heterogeneity_deterministic(self):
        a = ConstantDrain(1.0, spread=0.3, sensor_count=10, seed=7)
        b = ConstantDrain(1.0, spread=0.3, sensor_count=10, seed=7)
        assert [a.rate_for(i) for i in range(10)] == \
            [b.rate_for(i) for i in range(10)]

    def test_max_rate_bound(self):
        model = ConstantDrain(1.0, spread=0.3, sensor_count=10)
        assert model.max_rate_w() == pytest.approx(1.3)
        assert all(model.rate_for(i) <= model.max_rate_w()
                   for i in range(10))

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            ConstantDrain(-1.0)
        with pytest.raises(ModelError):
            ConstantDrain(1.0, spread=1.0)
        with pytest.raises(ModelError):
            ConstantDrain(1.0, spread=0.2)  # missing sensor_count

    def test_unknown_sensor_rejected(self):
        model = ConstantDrain(1.0, spread=0.2, sensor_count=3)
        with pytest.raises(ModelError):
            model.rate_for(10)

    def test_negative_duration_rejected(self):
        with pytest.raises(ModelError):
            ConstantDrain(1.0).energy_spent(0, 0.0, -1.0)


class TestEventDrain:
    def test_deterministic_per_window(self):
        model = EventDrain(events_per_hour=10.0, energy_per_event_j=0.1,
                           seed=3)
        a = model.energy_spent(2, 100.0, 3600.0)
        b = model.energy_spent(2, 100.0, 3600.0)
        assert a == b

    def test_sensors_get_different_streams(self):
        model = EventDrain(events_per_hour=50.0, energy_per_event_j=0.1,
                           seed=3)
        values = {model.energy_spent(i, 0.0, 3600.0)
                  for i in range(20)}
        assert len(values) > 1

    def test_mean_roughly_matches_rate(self):
        model = EventDrain(events_per_hour=10.0, energy_per_event_j=1.0,
                           seed=5)
        total = sum(model.energy_spent(i, 0.0, 3600.0)
                    for i in range(200))
        assert 8.0 * 200 * 0.5 < total < 10.0 * 200 * 2.0

    def test_base_rate_added(self):
        model = EventDrain(events_per_hour=0.0, energy_per_event_j=1.0,
                           base_rate_w=0.5)
        assert model.energy_spent(0, 0.0, 10.0) == pytest.approx(5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            EventDrain(-1.0, 1.0)
        with pytest.raises(ModelError):
            EventDrain(1.0, -1.0)
        with pytest.raises(ModelError):
            EventDrain(1.0, 1.0, base_rate_w=-0.1)
