"""Churn-aware lifetime simulation: determinism and legacy identity."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.lifetime import ChurnModel, ConstantDrain, LifetimeSimulator
from repro.network import uniform_deployment
from repro.planners import make_planner

DAY_S = 86_400.0


def _simulator(paper_cost, churn=None, count=40, rate_w=5e-6,
               seed=5, radius=30.0):
    network = uniform_deployment(count=count, seed=seed,
                                 field_side_m=500.0)
    return LifetimeSimulator(
        network=network,
        planner=make_planner("BC", radius),
        cost=paper_cost,
        consumption=ConstantDrain(rate_w=rate_w),
        battery_capacity_j=2.0,
        trigger_threshold_j=0.5,
        trigger_count=3,
        churn=churn,
    )


def _fingerprint(result):
    return (result.round_count, result.charger_energy_j,
            result.downtime_sensor_s, result.min_battery_j,
            tuple(result.final_batteries_j),
            result.churn_moves, result.churn_deaths,
            result.churn_joins, result.repaired_rounds)


class TestChurnModel:
    def test_round_streams_are_pure_in_seed_and_round(self):
        churn = ChurnModel(move_rate=0.2, seed=9)
        a = churn.round_rng(3).random()
        b = ChurnModel(move_rate=0.2, seed=9).round_rng(3).random()
        assert a == b
        assert churn.round_rng(3).random() != churn.round_rng(4).random()

    def test_deltas_for_round_deterministic(self):
        locations = [(float(i), float(i)) for i in range(20)]
        alive = [True] * 20
        churn = ChurnModel(move_rate=0.3, death_rate=0.1,
                           join_rate=0.5, seed=2)
        first = churn.deltas_for_round(1, locations, alive, 100.0)
        second = ChurnModel(move_rate=0.3, death_rate=0.1,
                            join_rate=0.5, seed=2).deltas_for_round(
            1, locations, alive, 100.0)
        assert first == second

    def test_deaths_trump_moves(self):
        # With certain death, nothing moves.
        churn = ChurnModel(move_rate=1.0, death_rate=1.0, seed=0)
        deltas = churn.deltas_for_round(
            0, [(1.0, 1.0)], [True], 100.0)
        assert [d["type"] for d in deltas] == ["sensor_died"]

    def test_moves_stay_in_field(self):
        churn = ChurnModel(move_rate=1.0, drift_m=50.0, seed=1)
        locations = [(0.0, 0.0), (100.0, 100.0)]
        deltas = churn.deltas_for_round(0, locations, [True, True],
                                        100.0)
        for record in deltas:
            assert 0.0 <= record["x"] <= 100.0
            assert 0.0 <= record["y"] <= 100.0

    def test_integer_join_rate_joins_exactly(self):
        churn = ChurnModel(join_rate=2.0, seed=0)
        deltas = churn.deltas_for_round(0, [(1.0, 1.0)], [True], 100.0)
        assert [d["type"] for d in deltas] \
            == ["sensor_joined", "sensor_joined"]

    def test_failure_injection_is_one_shot(self):
        churn = ChurnModel(failure_time_s=100.0, nodes_to_kill=2,
                           seed=4)
        alive = [True] * 10
        assert churn.failure_deltas(50.0, alive) == []
        first = churn.failure_deltas(150.0, alive)
        assert len(first) == 2
        assert first == sorted(first, key=lambda d: d["index"])
        assert churn.failure_deltas(200.0, alive) == []

    def test_invalid_rates_rejected(self):
        with pytest.raises(SimulationError):
            ChurnModel(move_rate=1.5)
        with pytest.raises(SimulationError):
            ChurnModel(death_rate=-0.1)
        with pytest.raises(SimulationError):
            ChurnModel(nodes_to_kill=3)  # needs failure_time_s


class TestChurnSimulation:
    def test_legacy_path_unchanged_without_churn(self, paper_cost):
        # churn=None must stay byte-identical to the pre-churn code.
        first = _simulator(paper_cost).run(20 * DAY_S)
        second = _simulator(paper_cost).run(20 * DAY_S)
        assert _fingerprint(first) == _fingerprint(second)
        assert first.churn_moves == 0
        assert first.repaired_rounds == 0

    def test_churn_run_is_deterministic(self, paper_cost):
        churn = ChurnModel(move_rate=0.1, death_rate=0.03,
                           join_rate=0.2, drift_m=10.0, seed=3)
        first = _simulator(paper_cost, churn=churn).run(20 * DAY_S)
        rebuilt = ChurnModel(move_rate=0.1, death_rate=0.03,
                             join_rate=0.2, drift_m=10.0, seed=3)
        second = _simulator(paper_cost, churn=rebuilt).run(20 * DAY_S)
        assert _fingerprint(first) == _fingerprint(second)

    def test_churn_counts_accumulate(self, paper_cost):
        churn = ChurnModel(move_rate=0.3, death_rate=0.05,
                           join_rate=0.5, seed=1)
        result = _simulator(paper_cost, churn=churn).run(20 * DAY_S)
        assert result.round_count >= 1
        assert result.churn_moves > 0
        assert result.churn_joins > 0
        # Later rounds repair rather than replan.
        if result.round_count > 1:
            assert result.repaired_rounds >= 1

    def test_failure_injection_kills_nodes(self, paper_cost):
        churn = ChurnModel(failure_time_s=5 * DAY_S, nodes_to_kill=4,
                           seed=7)
        simulator = _simulator(paper_cost, churn=churn)
        result = simulator.run(20 * DAY_S)
        assert result.churn_deaths >= 4
        assert sum(1 for flag in simulator.alive if flag) \
            <= len(simulator.alive) - 4

    def test_joined_sensors_grow_the_network(self, paper_cost):
        churn = ChurnModel(join_rate=1.0, seed=2)
        simulator = _simulator(paper_cost, churn=churn)
        result = simulator.run(20 * DAY_S)
        if result.round_count:
            assert len(simulator.alive) > 40
            assert len(result.final_batteries_j) == len(simulator.alive)

    def test_churn_needs_radius_planner(self, paper_cost):
        network = uniform_deployment(count=10, seed=1,
                                     field_side_m=500.0)
        planner = make_planner("BC", 30.0)

        class NoRadius:
            name = "norad"

            def plan(self, network, cost):  # pragma: no cover
                return planner.plan(network, cost)

        with pytest.raises(SimulationError, match="radius"):
            LifetimeSimulator(
                network=network, planner=NoRadius(), cost=paper_cost,
                consumption=ConstantDrain(rate_w=1e-6),
                battery_capacity_j=2.0, trigger_threshold_j=0.5,
                churn=ChurnModel(move_rate=0.1))
