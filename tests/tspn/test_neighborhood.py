"""Tests for TSPN neighborhoods."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Disk, Point, Segment
from repro.tspn import (DiskNeighborhood, neighborhoods_from_points,
                        tour_visits_all)


class TestDiskNeighborhood:
    def test_contains(self):
        nb = DiskNeighborhood(Disk(Point(0, 0), 2.0))
        assert nb.contains(Point(1, 1))
        assert not nb.contains(Point(3, 0))

    def test_closest_point_inside_is_identity(self):
        nb = DiskNeighborhood(Disk(Point(0, 0), 2.0))
        assert nb.closest_point(Point(1, 0)) == Point(1, 0)

    def test_closest_point_outside_projects_to_boundary(self):
        nb = DiskNeighborhood(Disk(Point(0, 0), 2.0))
        projected = nb.closest_point(Point(10, 0))
        assert projected.is_close(Point(2, 0))

    def test_closest_point_from_center(self):
        nb = DiskNeighborhood(Disk(Point(0, 0), 2.0))
        # Degenerate direction: any boundary point is acceptable.
        point = nb.closest_point(Point(0, 0))
        assert point == Point(0, 0)  # center is inside -> identity

    def test_entry_on_crossing_segment(self):
        nb = DiskNeighborhood(Disk(Point(0, 0), 1.0))
        segment = Segment(Point(-5, 0), Point(5, 0))
        entry = nb.entry_on_segment(segment)
        assert nb.contains(entry)
        assert entry.is_close(Point(-1, 0))

    def test_entry_on_missing_segment(self):
        nb = DiskNeighborhood(Disk(Point(0, 5), 1.0))
        segment = Segment(Point(-5, 0), Point(5, 0))
        entry = nb.entry_on_segment(segment)
        assert nb.contains(entry)
        assert entry.is_close(Point(0, 4))


class TestHelpers:
    def test_from_points(self):
        nbs = neighborhoods_from_points([Point(0, 0), Point(5, 5)], 2.0)
        assert len(nbs) == 2
        assert nbs[1].label == 1
        assert nbs[1].radius == 2.0

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            neighborhoods_from_points([Point(0, 0)], -1.0)

    def test_tour_visits_all_true(self):
        nbs = neighborhoods_from_points(
            [Point(0, 0), Point(10, 0)], 1.0)
        waypoints = [Point(0, 0), Point(10, 0)]
        assert tour_visits_all(waypoints, nbs)

    def test_tour_visits_all_detects_miss(self):
        nbs = neighborhoods_from_points(
            [Point(0, 0), Point(50, 50)], 1.0)
        waypoints = [Point(0, 0), Point(10, 0)]
        assert not tour_visits_all(waypoints, nbs)

    def test_leg_crossing_counts_as_visit(self):
        nbs = neighborhoods_from_points([Point(5, 0)], 1.0)
        waypoints = [Point(0, 0), Point(10, 0)]  # leg passes through
        assert tour_visits_all(waypoints, nbs)

    def test_empty_cases(self):
        assert tour_visits_all([], [])
        assert not tour_visits_all(
            [], neighborhoods_from_points([Point(0, 0)], 1.0))
