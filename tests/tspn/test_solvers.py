"""Tests for the TSPN solver."""

import random

import pytest

from repro.geometry import Point
from repro.tspn import (center_tour_length, neighborhoods_from_points,
                        solve_tspn, tour_visits_all)


def random_points(n, seed=0, side=500.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side))
            for _ in range(n)]


class TestSolveTspn:
    def test_trivial_sizes(self):
        assert solve_tspn([]).order == []
        one = solve_tspn(neighborhoods_from_points([Point(1, 1)], 5.0))
        assert one.order == [0]

    def test_all_neighborhoods_visited(self):
        for radius in (1.0, 20.0, 60.0):
            nbs = neighborhoods_from_points(random_points(30, seed=1),
                                            radius)
            solution = solve_tspn(nbs)
            assert sorted(solution.order) == list(range(30))
            assert tour_visits_all(solution.points, nbs)

    def test_refinement_never_lengthens(self):
        nbs = neighborhoods_from_points(random_points(25, seed=2), 30.0)
        refined = solve_tspn(nbs, refinement_rounds=4)
        unrefined = solve_tspn(nbs, refinement_rounds=0)
        assert refined.length() <= unrefined.length() + 1e-9

    def test_refinement_strictly_helps_with_big_disks(self):
        nbs = neighborhoods_from_points(random_points(25, seed=3), 60.0)
        refined = solve_tspn(nbs, refinement_rounds=4)
        unrefined = solve_tspn(nbs, refinement_rounds=0)
        assert refined.length() < unrefined.length() * 0.95

    def test_zero_radius_equals_center_tsp(self):
        pts = random_points(20, seed=4)
        nbs = neighborhoods_from_points(pts, 0.0)
        solution = solve_tspn(nbs)
        assert solution.length() == pytest.approx(
            center_tour_length(nbs), rel=1e-9)

    def test_points_stay_in_their_disks(self):
        nbs = neighborhoods_from_points(random_points(20, seed=5), 25.0)
        solution = solve_tspn(nbs)
        for position, index in enumerate(solution.order):
            assert nbs[index].disk.contains(solution.points[position],
                                            eps=1e-6)

    def test_depot_respected(self):
        depot = Point(0, 0)
        nbs = neighborhoods_from_points(random_points(15, seed=6), 20.0)
        solution = solve_tspn(nbs, depot=depot)
        assert sorted(solution.order) == list(range(15))
        # Visit points still inside disks with depot routing.
        for position, index in enumerate(solution.order):
            assert nbs[index].disk.contains(solution.points[position],
                                            eps=1e-6)

    def test_deterministic(self):
        nbs = neighborhoods_from_points(random_points(15, seed=7), 15.0)
        a = solve_tspn(nbs)
        b = solve_tspn(nbs)
        assert a.order == b.order
        assert a.points == b.points

    def test_overlapping_disks_shrink_tour_a_lot(self):
        # Radius comparable to field: almost everything overlaps and
        # refinement collapses a large share of the center tour
        # (coordinate descent converges gradually, hence extra rounds).
        nbs = neighborhoods_from_points(random_points(20, seed=8,
                                                      side=100.0), 50.0)
        solution = solve_tspn(nbs, refinement_rounds=12)
        assert solution.length() < 0.75 * center_tour_length(nbs)
