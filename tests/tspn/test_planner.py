"""Tests for the TSPN charging planner."""

import pytest

from repro.errors import PlanError
from repro.sim import validate_plan
from repro.tour import evaluate_plan
from repro.tspn import TspnChargingPlanner


class TestTspnPlanner:
    def test_all_sensors_assigned(self, medium_network, paper_cost):
        plan = TspnChargingPlanner(30.0).plan(medium_network,
                                              paper_cost)
        plan.validate_complete(len(medium_network))

    def test_stops_within_range(self, medium_network, paper_cost):
        radius = 30.0
        plan = TspnChargingPlanner(radius).plan(medium_network,
                                                paper_cost)
        locations = medium_network.locations
        for stop in plan:
            for index in stop.sensors:
                assert stop.position.distance_to(locations[index]) \
                    <= radius * (1 + 1e-6) + 1e-6

    def test_shorter_tour_than_sc(self, paper_cost):
        from repro.network import uniform_deployment
        from repro.planners import SingleChargingPlanner
        network = uniform_deployment(count=80, seed=19)
        sc = SingleChargingPlanner().plan(network, paper_cost)
        tspn = TspnChargingPlanner(30.0).plan(network, paper_cost)
        sc_m = evaluate_plan(sc, network.locations, paper_cost)
        tspn_m = evaluate_plan(tspn, network.locations, paper_cost)
        assert tspn_m.energy.tour_length_m < sc_m.energy.tour_length_m

    def test_simulated_mission_charges_all(self, medium_network,
                                           paper_cost):
        plan = TspnChargingPlanner(25.0).plan(medium_network,
                                              paper_cost)
        result = validate_plan(plan, medium_network, paper_cost,
                               strict=True)
        assert result.satisfied

    def test_zero_radius_equals_per_sensor_stops(self, medium_network,
                                                 paper_cost):
        plan = TspnChargingPlanner(0.0).plan(medium_network, paper_cost)
        assert len(plan) == len(medium_network)

    def test_negative_radius_rejected(self):
        with pytest.raises(PlanError):
            TspnChargingPlanner(-1.0)

    def test_label(self, medium_network, paper_cost):
        plan = TspnChargingPlanner(20.0).plan(medium_network,
                                              paper_cost)
        assert plan.label == "TSPN"
