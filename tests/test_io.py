"""Tests for JSON persistence."""

import json
import os

import pytest

from repro.io import (SerializationError, load_json, network_from_dict,
                      network_to_dict, plan_from_dict, plan_to_dict,
                      save_json)
from repro.network import uniform_deployment
from repro.planners import BundleChargingPlanner


@pytest.fixture
def network():
    return uniform_deployment(count=15, seed=8, field_side_m=400.0)


@pytest.fixture
def plan(network, paper_cost):
    return BundleChargingPlanner(40.0).plan(network, paper_cost)


class TestNetworkRoundTrip:
    def test_dict_round_trip(self, network):
        restored = network_from_dict(network_to_dict(network))
        assert len(restored) == len(network)
        assert restored.field_side_m == network.field_side_m
        assert restored.base_station == network.base_station
        for original, copy in zip(network, restored):
            assert original.location == copy.location
            assert original.required_j == copy.required_j

    def test_file_round_trip(self, network, tmp_path):
        path = os.path.join(tmp_path, "network.json")
        save_json(network, path)
        restored = load_json(path)
        assert restored.locations == network.locations

    def test_schema_rejected(self):
        with pytest.raises(SerializationError):
            network_from_dict({"schema": "something/else"})

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            network_from_dict({
                "schema": "bundle-charging/network/v1",
                "sensors": [{"index": 0}],  # missing fields
                "field_side_m": 100.0,
                "base_station": [0, 0],
            })


class TestPlanRoundTrip:
    def test_dict_round_trip(self, plan):
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.label == plan.label
        assert restored.depot == plan.depot
        assert len(restored) == len(plan)
        for original, copy in zip(plan.stops, restored.stops):
            assert original.position == copy.position
            assert original.sensors == copy.sensors
            assert original.dwell_s == pytest.approx(copy.dwell_s)

    def test_round_trip_preserves_energy(self, plan, network,
                                         paper_cost):
        from repro.tour import plan_total_energy
        restored = plan_from_dict(plan_to_dict(plan))
        assert plan_total_energy(restored, network.locations,
                                 paper_cost) == pytest.approx(
            plan_total_energy(plan, network.locations, paper_cost))

    def test_file_round_trip(self, plan, tmp_path):
        path = os.path.join(tmp_path, "plan.json")
        save_json(plan, path)
        restored = load_json(path)
        assert len(restored) == len(plan)

    def test_depotless_plan(self, network, paper_cost):
        planner = BundleChargingPlanner(40.0, use_depot=False)
        plan = planner.plan(network, paper_cost)
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.depot is None


class TestFileLevel:
    def test_json_is_stable_text(self, network, tmp_path):
        path_a = os.path.join(tmp_path, "a.json")
        path_b = os.path.join(tmp_path, "b.json")
        save_json(network, path_a)
        save_json(network, path_b)
        with open(path_a) as fa, open(path_b) as fb:
            assert fa.read() == fb.read()

    def test_unknown_schema_file(self, tmp_path):
        path = os.path.join(tmp_path, "junk.json")
        with open(path, "w") as handle:
            json.dump({"schema": "junk/v9"}, handle)
        with pytest.raises(SerializationError):
            load_json(path)

    def test_non_object_root(self, tmp_path):
        path = os.path.join(tmp_path, "list.json")
        with open(path, "w") as handle:
            json.dump([1, 2, 3], handle)
        with pytest.raises(SerializationError):
            load_json(path)

    def test_unsupported_type(self, tmp_path):
        with pytest.raises(SerializationError):
            save_json(object(), os.path.join(tmp_path, "x.json"))
