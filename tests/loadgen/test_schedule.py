"""Arrival-schedule generators: shapes, determinism, edge cases."""

import pytest

from repro.loadgen.schedule import SCHEDULE_KINDS, arrival_offsets


class TestConstant:
    def test_even_spacing(self):
        offsets = arrival_offsets("constant", 10.0, 1.0)
        assert len(offsets) == 10
        assert offsets[0] == 0.0
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(gap == pytest.approx(0.1) for gap in gaps)

    def test_deterministic(self):
        assert arrival_offsets("constant", 7.0, 3.0) == \
            arrival_offsets("constant", 7.0, 3.0)

    def test_all_within_duration(self):
        offsets = arrival_offsets("constant", 33.0, 2.5)
        assert all(0.0 <= offset < 2.5 for offset in offsets)


class TestStep:
    def test_rate_doubles_after_step(self):
        offsets = arrival_offsets("step", 10.0, 2.0, rate_end=20.0,
                                  step_at_s=1.0)
        before = [o for o in offsets if o < 1.0]
        after = [o for o in offsets if o >= 1.0]
        assert len(before) == 10
        assert len(after) == 20

    def test_default_step_at_midpoint(self):
        offsets = arrival_offsets("step", 10.0, 2.0, rate_end=30.0)
        assert len([o for o in offsets if o < 1.0]) == 10
        assert len([o for o in offsets if o >= 1.0]) == 30

    def test_step_outside_run_rejected(self):
        with pytest.raises(ValueError):
            arrival_offsets("step", 10.0, 2.0, rate_end=20.0,
                            step_at_s=2.5)


class TestRamp:
    def test_total_count_is_average_rate(self):
        offsets = arrival_offsets("ramp", 10.0, 4.0, rate_end=30.0)
        assert len(offsets) == 80  # (10+30)/2 * 4

    def test_monotone_and_densifying(self):
        offsets = arrival_offsets("ramp", 5.0, 10.0, rate_end=50.0)
        assert offsets == sorted(offsets)
        first_gap = offsets[1] - offsets[0]
        last_gap = offsets[-1] - offsets[-2]
        assert last_gap < first_gap

    def test_flat_ramp_equals_constant(self):
        ramp = arrival_offsets("ramp", 10.0, 2.0, rate_end=10.0)
        constant = arrival_offsets("constant", 10.0, 2.0)
        assert ramp == pytest.approx(constant)

    def test_offsets_within_duration(self):
        offsets = arrival_offsets("ramp", 10.0, 4.0, rate_end=30.0)
        assert all(0.0 <= offset <= 4.0 + 1e-9 for offset in offsets)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            arrival_offsets("burst", 10.0, 1.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            arrival_offsets("constant", 0.0, 1.0)
        with pytest.raises(ValueError):
            arrival_offsets("constant", 10.0, -1.0)

    def test_step_and_ramp_need_rate_end(self):
        for kind in ("step", "ramp"):
            with pytest.raises(ValueError):
                arrival_offsets(kind, 10.0, 1.0)

    def test_kinds_catalogue(self):
        assert SCHEDULE_KINDS == ("constant", "step", "ramp")
