"""Coordinated-omission-safe latency recorder and exact quantiles."""

import pytest

from repro.loadgen.recorder import LatencyRecorder, exact_quantile


class TestExactQuantile:
    def test_empty_is_none(self):
        assert exact_quantile([], 0.5) is None

    def test_single_value(self):
        assert exact_quantile([3.0], 0.0) == 3.0
        assert exact_quantile([3.0], 1.0) == 3.0

    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(values, 0.0) == 1.0
        assert exact_quantile(values, 1.0) == 4.0
        assert exact_quantile(values, 0.5) == pytest.approx(2.5)


class TestLatencyRecorder:
    def test_latency_measured_from_scheduled_not_sent(self):
        # Coordinated-omission safety: a request scheduled at t=0 but
        # only sent at t=5 (sender backlog) must report the full wait.
        recorder = LatencyRecorder()
        recorder.record(scheduled=0.0, sent=5.0, finished=5.2,
                        status=200)
        summary = recorder.summary()
        assert summary["latency_s"]["p50"] == pytest.approx(5.2)
        assert summary["send_lag_s"]["max"] == pytest.approx(5.0)

    def test_summary_counts_and_statuses(self):
        recorder = LatencyRecorder()
        recorder.record(0.0, 0.0, 0.010, status=200, outcome="hit")
        recorder.record(0.1, 0.1, 0.130, status=200, outcome="miss")
        recorder.record(0.2, 0.2, 0.250, status=400, failed=True)
        summary = recorder.summary()
        assert summary["count"] == 3
        assert summary["errors"] == 1
        assert summary["statuses"] == {"200": 2, "400": 1}
        assert summary["outcomes"] == {"hit": 1, "miss": 1}

    def test_worker_shards_counted(self):
        recorder = LatencyRecorder()
        recorder.record(0.0, 0.0, 0.01, status=200, worker="1")
        recorder.record(0.1, 0.1, 0.11, status=200, worker="0")
        recorder.record(0.2, 0.2, 0.21, status=200, worker="1")
        recorder.record(0.3, 0.3, 0.31, status=200)  # single server
        summary = recorder.summary()
        assert summary["workers"] == {"0": 1, "1": 2}
        assert summary["count"] == 4

    def test_single_server_workers_histogram_empty(self):
        recorder = LatencyRecorder()
        recorder.record(0.0, 0.0, 0.01, status=200)
        assert recorder.summary()["workers"] == {}

    def test_percentiles_ordered(self):
        recorder = LatencyRecorder()
        for index in range(100):
            start = index * 0.01
            recorder.record(start, start, start + 0.001 * (index + 1),
                            status=200)
        latency = recorder.summary()["latency_s"]
        assert latency["p50"] <= latency["p90"] <= latency["p95"] \
            <= latency["p99"] <= latency["max"]
        assert latency["mean"] == pytest.approx(0.0505)

    def test_empty_summary(self):
        summary = LatencyRecorder().summary()
        assert summary["count"] == 0
        assert summary["latency_s"]["p50"] is None
