"""Loadgen report assembly, validation, and rendering."""

import json

import pytest

from repro.loadgen.recorder import LatencyRecorder
from repro.loadgen.report import (LOADGEN_SCHEMA, build_report,
                                  render_table, report_problems,
                                  write_report)


def _sample_report():
    recorder = LatencyRecorder()
    for index in range(20):
        start = index * 0.05
        recorder.record(start, start, start + 0.002 + 0.0001 * index,
                        status=200, outcome="hit")
    return build_report(
        config={"url": "http://127.0.0.1:8080", "schedule": "constant",
                "rate": 20.0, "duration_s": 1.0, "pool": 4,
                "zipf_s": 1.1, "seed": 0},
        offered={"kind": "constant", "rate": 20.0, "requests": 20},
        duration_s=1.0,
        summary=recorder.summary(),
    )


class TestBuildReport:
    def test_valid_report_has_no_problems(self):
        report = _sample_report()
        assert report["schema"] == LOADGEN_SCHEMA
        assert report_problems(report) == []

    def test_achieved_rate(self):
        report = _sample_report()
        assert report["achieved_rate"] == pytest.approx(20.0)

    def test_zero_duration_rate_is_zero(self):
        report = build_report({}, {"kind": "constant", "rate": 1.0,
                                   "requests": 0}, 0.0,
                              LatencyRecorder().summary())
        assert report["achieved_rate"] == 0.0


class TestProblems:
    def test_wrong_schema_rejected(self):
        assert report_problems({"schema": "nope"})
        assert report_problems([]) == \
            ["loadgen report must be a JSON object"]

    def test_missing_keys_reported(self):
        report = _sample_report()
        del report["offered"]
        del report["summary"]
        problems = report_problems(report)
        assert any("offered" in p for p in problems)
        assert any("summary" in p for p in problems)

    def test_missing_percentile_reported(self):
        report = _sample_report()
        del report["summary"]["latency_s"]["p99"]
        assert any("p99" in p for p in report_problems(report))

    def test_non_numeric_percentile_reported(self):
        report = _sample_report()
        report["summary"]["latency_s"]["p50"] = "fast"
        assert any("p50" in p for p in report_problems(report))

    def test_validator_registered_with_obs(self):
        pytest.importorskip("repro.obs")
        from repro.obs import validate_loadgen_report
        assert validate_loadgen_report(_sample_report()) == []


class TestRendering:
    def test_table_mentions_percentiles(self):
        table = render_table(_sample_report())
        for token in ("p50", "p99", "req/s", "ms"):
            assert token in table

    def test_write_report_round_trips(self, tmp_path):
        path = tmp_path / "report.json"
        report = _sample_report()
        write_report(report, str(path))
        assert json.loads(path.read_text()) == report
