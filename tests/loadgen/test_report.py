"""Loadgen report assembly, validation, and rendering."""

import json

import pytest

from repro.loadgen.recorder import LatencyRecorder
from repro.loadgen.report import (LOADGEN_SCHEMA, SATURATION_RATIO,
                                  build_report, render_table,
                                  report_problems, write_report)


def _sample_report():
    recorder = LatencyRecorder()
    for index in range(20):
        start = index * 0.05
        recorder.record(start, start, start + 0.002 + 0.0001 * index,
                        status=200, outcome="hit",
                        worker=str(index % 2))
    return build_report(
        config={"url": "http://127.0.0.1:8080", "schedule": "constant",
                "rate": 20.0, "duration_s": 1.0, "pool": 4,
                "zipf_s": 1.1, "seed": 0},
        offered={"kind": "constant", "rate": 20.0, "requests": 20},
        duration_s=1.0,
        summary=recorder.summary(),
    )


class TestBuildReport:
    def test_valid_report_has_no_problems(self):
        report = _sample_report()
        assert report["schema"] == LOADGEN_SCHEMA
        assert report_problems(report) == []

    def test_achieved_rate(self):
        report = _sample_report()
        assert report["achieved_rate"] == pytest.approx(20.0)

    def test_zero_duration_rate_is_zero(self):
        report = build_report({}, {"kind": "constant", "rate": 1.0,
                                   "requests": 0}, 0.0,
                              LatencyRecorder().summary())
        assert report["achieved_rate"] == 0.0


class TestSaturation:
    def test_keeping_up_is_not_saturated(self):
        saturation = _sample_report()["saturation"]
        assert saturation["offered_rate"] == pytest.approx(20.0)
        assert saturation["achieved_rate"] == pytest.approx(20.0)
        assert saturation["ratio"] == pytest.approx(1.0)
        assert saturation["saturated"] is False

    def test_stretched_run_is_flagged(self):
        # 20 arrivals scheduled over 1s but the run took 2.5s: the
        # achieved rate collapses to 8 req/s against 20 offered.
        recorder = LatencyRecorder()
        for index in range(20):
            start = index * 0.05
            recorder.record(start, start, start + 0.4, status=200)
        report = build_report(
            config={"duration_s": 1.0},
            offered={"kind": "constant", "rate": 20.0,
                     "requests": 20},
            duration_s=2.5, summary=recorder.summary())
        saturation = report["saturation"]
        assert saturation["ratio"] == pytest.approx(0.4)
        assert saturation["saturated"] is True
        assert saturation["ratio"] < SATURATION_RATIO

    def test_offered_rate_falls_back_to_schedule_rate(self):
        report = build_report(
            config={}, offered={"kind": "constant", "rate": 10.0,
                                "requests": 10},
            duration_s=1.0, summary=LatencyRecorder().summary())
        assert report["saturation"]["offered_rate"] == \
            pytest.approx(10.0)

    def test_no_offered_rate_omits_section(self):
        report = build_report(
            config={}, offered={"kind": "trace", "rate": None,
                                "requests": 0},
            duration_s=1.0, summary=LatencyRecorder().summary())
        assert "saturation" not in report
        assert report_problems(report) == []


class TestProblems:
    def test_wrong_schema_rejected(self):
        assert report_problems({"schema": "nope"})
        assert report_problems([]) == \
            ["loadgen report must be a JSON object"]

    def test_missing_keys_reported(self):
        report = _sample_report()
        del report["offered"]
        del report["summary"]
        problems = report_problems(report)
        assert any("offered" in p for p in problems)
        assert any("summary" in p for p in problems)

    def test_missing_percentile_reported(self):
        report = _sample_report()
        del report["summary"]["latency_s"]["p99"]
        assert any("p99" in p for p in report_problems(report))

    def test_non_numeric_percentile_reported(self):
        report = _sample_report()
        report["summary"]["latency_s"]["p50"] = "fast"
        assert any("p50" in p for p in report_problems(report))

    def test_validator_registered_with_obs(self):
        pytest.importorskip("repro.obs")
        from repro.obs import validate_loadgen_report
        assert validate_loadgen_report(_sample_report()) == []

    def test_saturation_types_checked(self):
        report = _sample_report()
        report["saturation"]["ratio"] = "low"
        assert any("saturation.ratio" in p
                   for p in report_problems(report))
        report["saturation"] = {"saturated": "yes"}
        problems = report_problems(report)
        assert any("offered_rate" in p for p in problems)
        assert any("saturated" in p for p in problems)
        report["saturation"] = []
        assert any("saturation section" in p
                   for p in report_problems(report))

    def test_workers_histogram_types_checked(self):
        report = _sample_report()
        report["summary"]["workers"]["0"] = "many"
        assert any("summary.workers" in p
                   for p in report_problems(report))
        report["summary"]["workers"] = ["0", "1"]
        assert any("summary.workers must be an object" in p
                   for p in report_problems(report))


class TestRendering:
    def test_table_mentions_percentiles(self):
        table = render_table(_sample_report())
        for token in ("p50", "p99", "req/s", "ms"):
            assert token in table

    def test_table_shows_routing_histogram_and_saturation(self):
        table = render_table(_sample_report())
        assert "worker" in table
        assert "share" in table
        assert "50.0%" in table
        assert "saturation" in table
        assert "ok" in table

    def test_table_without_workers_skips_histogram(self):
        report = _sample_report()
        report["summary"]["workers"] = {}
        assert "share" not in render_table(report)

    def test_write_report_round_trips(self, tmp_path):
        path = tmp_path / "report.json"
        report = _sample_report()
        write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == report
        # The additive sections survive the disk round trip and still
        # validate — old-reader compatibility plus new-reader types.
        assert report_problems(loaded) == []
        assert loaded["summary"]["workers"] == {"0": 10, "1": 10}
        assert loaded["saturation"]["saturated"] is False
