"""The --churn mix: delta conversion, kind labels, report split."""

from __future__ import annotations

import pytest

from repro.delta import DELTA_REQUEST_SCHEMA
from repro.loadgen import (LatencyRecorder, build_report, churn_mix,
                           render_table, report_problems)


HANDLES = ["h0", "h1", None, "h3"]


class TestChurnMix:
    def test_zero_churn_converts_nothing(self):
        extra, assignment, kinds = churn_mix(
            [0, 1, 2, 3], HANDLES, 0.0, seed=1, node_count=25)
        assert extra == []
        assert assignment == [0, 1, 2, 3]
        assert kinds == ["plan"] * 4

    def test_full_churn_converts_every_established_rank(self):
        arrivals = [0, 1, 2, 3, 0, 1]
        extra, assignment, kinds = churn_mix(
            arrivals, HANDLES, 1.0, seed=1, node_count=25)
        # Rank 2 never established: its arrivals stay plan traffic.
        assert len(extra) == 5
        assert assignment[2] == 2
        converted = [i for i in assignment if i >= len(HANDLES)]
        assert len(converted) == 5
        assert kinds == ["plan"] * 4 + ["delta"] * 5

    def test_every_delta_body_is_unique_and_precomputed(self):
        arrivals = [0] * 10
        extra, _, _ = churn_mix(arrivals, HANDLES, 1.0, seed=3,
                                node_count=25)
        assert len({repr(body) for body in extra}) == len(extra)
        for body in extra:
            assert body["schema"] == DELTA_REQUEST_SCHEMA
            assert body["session"] == "h0"
            (record,) = body["deltas"]
            assert record["type"] == "sensor_moved"
            assert 0 <= record["index"] < 25
            assert 0.0 <= record["x"] <= 100.0

    def test_deterministic_in_seed(self):
        arrivals = [0, 1, 3] * 5
        first = churn_mix(arrivals, HANDLES, 0.5, seed=9, node_count=25)
        second = churn_mix(arrivals, HANDLES, 0.5, seed=9,
                           node_count=25)
        assert first == second
        third = churn_mix(arrivals, HANDLES, 0.5, seed=10,
                          node_count=25)
        assert first != third

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError, match="churn"):
            churn_mix([0], HANDLES, 1.5, seed=0, node_count=25)


class TestRecorderKinds:
    @staticmethod
    def _recorder():
        recorder = LatencyRecorder()
        recorder.record(0.0, 0.0, 0.010, 200, kind="plan")
        recorder.record(0.0, 0.0, 0.030, 200, kind="plan")
        recorder.record(0.0, 0.0, 0.002, 200, kind="delta")
        recorder.record(0.0, 0.0, 0.0, 503, failed=True, kind="delta")
        return recorder

    def test_summary_splits_by_kind(self):
        summary = self._recorder().summary()
        kinds = summary["kinds"]
        assert set(kinds) == {"plan", "delta"}
        assert kinds["plan"]["count"] == 2
        assert kinds["plan"]["errors"] == 0
        assert kinds["delta"]["count"] == 2
        assert kinds["delta"]["errors"] == 1
        assert kinds["delta"]["latency_s"]["p50"] \
            <= kinds["plan"]["latency_s"]["p50"]

    def test_unlabeled_runs_carry_no_kinds_section(self):
        recorder = LatencyRecorder()
        recorder.record(0.0, 0.0, 0.010, 200)
        assert "kinds" not in recorder.summary()


class TestReportKinds:
    @staticmethod
    def _report():
        recorder = TestRecorderKinds._recorder()
        config = {"url": "http://x", "duration_s": 1.0, "churn": 0.5}
        offered = {"kind": "constant", "rate": 4.0, "requests": 4}
        return build_report(config, offered, 1.0, recorder.summary())

    def test_kinds_section_validates(self):
        assert report_problems(self._report()) == []

    def test_malformed_kinds_reported(self):
        report = self._report()
        report["summary"]["kinds"]["plan"]["count"] = "two"
        problems = report_problems(report)
        assert any("kinds['plan'].count" in p for p in problems)
        report["summary"]["kinds"] = []
        problems = report_problems(report)
        assert any("summary.kinds must be an object" in p
                   for p in problems)

    def test_table_renders_kind_rows(self):
        table = render_table(self._report())
        assert "kind" in table
        assert "plan" in table and "delta" in table
