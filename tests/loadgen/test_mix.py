"""Zipf request-mix sampling: weights, determinism, pool construction."""

import pytest

from repro.loadgen.mix import build_pool, sample_indices, zipf_weights


class TestZipfWeights:
    def test_weights_normalize(self):
        weights = zipf_weights(8, 1.1)
        assert sum(weights) == pytest.approx(1.0)
        assert len(weights) == 8

    def test_weights_decrease_with_rank(self):
        weights = zipf_weights(6, 1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] > weights[-1]

    def test_s_zero_is_uniform(self):
        weights = zipf_weights(5, 0.0)
        assert all(w == pytest.approx(0.2) for w in weights)

    def test_bad_pool_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(3, -0.5)


class TestSampleIndices:
    def test_deterministic_for_seed(self):
        assert sample_indices(50, 8, 1.1, seed=7) == \
            sample_indices(50, 8, 1.1, seed=7)

    def test_different_seeds_differ(self):
        assert sample_indices(50, 8, 1.1, seed=1) != \
            sample_indices(50, 8, 1.1, seed=2)

    def test_indices_in_range(self):
        indices = sample_indices(200, 4, 1.1, seed=0)
        assert len(indices) == 200
        assert set(indices) <= {0, 1, 2, 3}

    def test_skew_favours_low_ranks(self):
        indices = sample_indices(2000, 8, 2.0, seed=0)
        rank0 = indices.count(0)
        rank7 = indices.count(7)
        assert rank0 > rank7


class TestBuildPool:
    def test_pool_bodies_are_distinct_and_deterministic(self):
        first = build_pool(4, 30, "BC")
        second = build_pool(4, 30, "BC")
        assert first == second
        seeds = [body["deployment"]["seed"] for body in first]
        assert seeds == [0, 1, 2, 3]

    def test_pool_carries_planner_and_size(self):
        pool = build_pool(2, 25, "TSPN", radius_m=15.0, base_seed=9)
        for body in pool:
            assert body["planner"] == "TSPN"
            assert body["deployment"]["n"] == 25
            assert body["radius_m"] == 15.0
        assert body["deployment"]["seed"] == 10
