"""Shared fixtures for the bundle-charging test suite."""

from __future__ import annotations

import pytest

from repro import CostParameters, uniform_deployment
from repro.charging import FriisChargingModel
from repro.geometry import Point


@pytest.fixture
def paper_cost() -> CostParameters:
    """The paper's Section VI-A cost configuration."""
    return CostParameters.paper_defaults()


@pytest.fixture
def cheap_move_cost() -> CostParameters:
    """A configuration where movement is nearly free.

    Useful for isolating charging-energy behaviour.
    """
    return CostParameters(model=FriisChargingModel(),
                          move_cost_j_per_m=1e-6)


@pytest.fixture
def small_network():
    """A deterministic 12-sensor network (fast for exact algorithms)."""
    return uniform_deployment(count=12, seed=1234, field_side_m=300.0)


@pytest.fixture
def medium_network():
    """A deterministic 40-sensor network at paper field scale."""
    return uniform_deployment(count=40, seed=99)


@pytest.fixture
def square_points():
    """Four unit-square corners — handy exact-geometry input."""
    return [Point(0.0, 0.0), Point(1.0, 0.0), Point(1.0, 1.0),
            Point(0.0, 1.0)]
