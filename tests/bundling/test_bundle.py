"""Tests for Bundle and BundleSet."""

import pytest

from repro.bundling import Bundle, BundleSet, make_bundle
from repro.errors import BundlingError, CoverageError
from repro.geometry import Point
from repro.network import uniform_deployment


class TestBundle:
    def test_make_bundle_sed_anchor(self):
        locations = [Point(0, 0), Point(4, 0), Point(2, 1)]
        bundle = make_bundle([0, 1, 2], locations)
        # SED of these three points is the (0,0)-(4,0) diameter disk.
        assert bundle.anchor.is_close(Point(2, 0))
        assert bundle.radius == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(BundlingError):
            make_bundle([], [Point(0, 0)])
        with pytest.raises(BundlingError):
            Bundle(frozenset(), Point(0, 0), 1.0)

    def test_worst_distance_default_anchor(self):
        locations = [Point(0, 0), Point(6, 0)]
        bundle = make_bundle([0, 1], locations)
        assert bundle.worst_distance(locations) == pytest.approx(3.0)

    def test_worst_distance_override_anchor(self):
        locations = [Point(0, 0), Point(6, 0)]
        bundle = make_bundle([0, 1], locations)
        assert bundle.worst_distance(locations, anchor=Point(0, 0)) == \
            pytest.approx(6.0)

    def test_with_anchor_recomputes_radius(self):
        locations = [Point(0, 0), Point(6, 0)]
        bundle = make_bundle([0, 1], locations)
        moved = bundle.with_anchor(Point(6, 0), locations)
        assert moved.radius == pytest.approx(6.0)
        assert moved.members == bundle.members

    def test_len(self):
        bundle = make_bundle([0, 1], [Point(0, 0), Point(1, 0)])
        assert len(bundle) == 2


class TestBundleSet:
    def _two_bundles(self):
        locations = [Point(0, 0), Point(1, 0), Point(10, 0)]
        b1 = make_bundle([0, 1], locations)
        b2 = make_bundle([2], locations)
        return locations, BundleSet([b1, b2], bundle_radius=2.0)

    def test_covered_sensors(self):
        _, bundle_set = self._two_bundles()
        assert bundle_set.covered_sensors() == frozenset({0, 1, 2})

    def test_assignment(self):
        _, bundle_set = self._two_bundles()
        assert bundle_set.assignment == (0, 0, 1)

    def test_anchors_order(self):
        _, bundle_set = self._two_bundles()
        assert len(bundle_set.anchors()) == 2

    def test_validate_cover_passes(self):
        network = uniform_deployment(count=3, seed=0)
        locations = network.locations
        bundles = [make_bundle([i], locations) for i in range(3)]
        BundleSet(bundles, 1.0).validate_cover(network)

    def test_validate_cover_fails(self):
        network = uniform_deployment(count=3, seed=0)
        locations = network.locations
        bundles = [make_bundle([0], locations)]
        with pytest.raises(CoverageError):
            BundleSet(bundles, 1.0).validate_cover(network)

    def test_validate_radius_fails_on_oversize(self):
        network = uniform_deployment(count=2, seed=0,
                                     field_side_m=1000.0)
        locations = network.locations
        bundle = make_bundle([0, 1], locations)
        bundle_set = BundleSet([bundle], bundle_radius=0.001)
        if bundle.radius > 0.001:
            with pytest.raises(BundlingError):
                bundle_set.validate_radius(network)

    def test_negative_radius_rejected(self):
        with pytest.raises(BundlingError):
            BundleSet([], bundle_radius=-1.0)
