"""Tests for candidate bundle enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bundling import (candidate_member_sets, maximal_candidates,
                            validate_candidates)
from repro.errors import BundlingError
from repro.geometry import Point, fits_in_radius

coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestEnumeration:
    def test_empty_input(self):
        assert candidate_member_sets([], 5.0) == []

    def test_negative_radius_rejected(self):
        with pytest.raises(BundlingError):
            candidate_member_sets([Point(0, 0)], -1.0)

    def test_singletons_always_present(self):
        pts = [Point(0, 0), Point(100, 100)]
        candidates = candidate_member_sets(pts, 1.0)
        union = set()
        for members in candidates:
            union |= members
        assert union == {0, 1}

    def test_pair_merged_when_close(self):
        pts = [Point(0, 0), Point(1, 0)]
        candidates = candidate_member_sets(pts, 1.0)
        assert frozenset({0, 1}) in candidates

    def test_pair_not_merged_when_far(self):
        pts = [Point(0, 0), Point(5, 0)]
        candidates = candidate_member_sets(pts, 1.0)
        assert frozenset({0, 1}) not in candidates

    def test_sorted_by_descending_cardinality(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.5, 0.5), Point(50, 50)]
        candidates = candidate_member_sets(pts, 2.0)
        sizes = [len(c) for c in candidates]
        assert sizes == sorted(sizes, reverse=True)

    def test_no_duplicates(self):
        pts = [Point(0, 0), Point(0.5, 0), Point(1, 0)]
        candidates = candidate_member_sets(pts, 2.0)
        assert len(candidates) == len(set(candidates))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(points, min_size=1, max_size=20),
           st.floats(min_value=0.5, max_value=30.0))
    def test_every_candidate_fits_radius(self, pts, radius):
        for members in candidate_member_sets(pts, radius):
            selected = [pts[i] for i in members]
            assert fits_in_radius(selected, radius * (1 + 1e-6))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(points, min_size=1, max_size=20),
           st.floats(min_value=0.5, max_value=30.0))
    def test_candidates_cover_universe(self, pts, radius):
        union = set()
        for members in candidate_member_sets(pts, radius):
            union |= members
        assert union == set(range(len(pts)))

    def test_three_point_cluster_found(self):
        # Three points pairwise 1 apart fit in a radius-0.6 disk
        # (circumradius of a unit equilateral triangle ~ 0.577), and the
        # candidate family must contain the full triple.
        import math
        pts = [Point(0, 0), Point(1, 0), Point(0.5, math.sqrt(3) / 2)]
        candidates = candidate_member_sets(pts, 0.6)
        assert frozenset({0, 1, 2}) in candidates


class TestFiltersAndPruning:
    def test_validate_candidates_drops_infeasible(self):
        pts = [Point(0, 0), Point(4, 0)]
        fake = [frozenset({0, 1})]
        assert validate_candidates(fake, pts, 1.0) == []
        assert validate_candidates(fake, pts, 2.0) == fake

    def test_maximal_prunes_subsets(self):
        candidates = [frozenset({0, 1, 2}), frozenset({0, 1}),
                      frozenset({3})]
        kept = maximal_candidates(candidates)
        assert frozenset({0, 1}) not in kept
        assert frozenset({0, 1, 2}) in kept
        assert frozenset({3}) in kept

    def test_maximal_keeps_equal_sets_once(self):
        candidates = [frozenset({0, 1}), frozenset({0, 1})]
        assert len(maximal_candidates(candidates)) == 1
