"""Tests for the exact bundle generator (branch-and-bound set cover)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bundling import (greedy_bundles, minimum_set_cover,
                            optimal_bundle_count, optimal_bundles)
from repro.errors import BundlingError, CoverageError
from repro.network import uniform_deployment


def _brute_force_cover_size(family, universe_size):
    """Smallest cover by brute force (tiny instances only)."""
    universe = set(range(universe_size))
    for size in range(0, len(family) + 1):
        for combo in itertools.combinations(family, size):
            covered = set()
            for members in combo:
                covered |= members
            if covered >= universe:
                return size
    return None


class TestMinimumSetCover:
    def test_empty(self):
        assert minimum_set_cover([], 0) == []

    def test_uncoverable(self):
        with pytest.raises(CoverageError):
            minimum_set_cover([frozenset({0})], 2)

    def test_greedy_suboptimal_instance(self):
        # Classic instance where greedy picks 3 sets but OPT = 2:
        # universe {0..5}; greedy takes the size-3 set first.
        family = [frozenset({0, 1, 2}),
                  frozenset({0, 2, 4}), frozenset({1, 3, 5}),
                  frozenset({3, 4}), frozenset({5})]
        exact = minimum_set_cover(family, 6)
        assert len(exact) == 2

    def test_budget_exceeded_raises(self):
        family = [frozenset({i, (i + 1) % 12}) for i in range(12)]
        with pytest.raises(BundlingError):
            minimum_set_cover(family, 12, node_budget=0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.frozensets(st.integers(0, 7), min_size=1),
                    min_size=1, max_size=10))
    def test_matches_brute_force(self, family):
        universe = set()
        for members in family:
            universe |= members
        size = max(universe) + 1 if universe else 0
        family = list(family) + [frozenset({e}) for e in range(size)]
        exact = minimum_set_cover(family, size)
        expected = _brute_force_cover_size(family, size)
        assert len(exact) == expected
        covered = set()
        for members in exact:
            covered |= members
        assert covered >= set(range(size))


class TestOptimalBundles:
    def test_never_worse_than_greedy(self):
        for seed in (1, 2, 3):
            network = uniform_deployment(count=15, seed=seed,
                                         field_side_m=300.0)
            exact = optimal_bundles(network, 60.0)
            greedy = greedy_bundles(network, 60.0)
            assert len(exact) <= len(greedy)

    def test_cover_and_radius_valid(self):
        network = uniform_deployment(count=12, seed=9,
                                     field_side_m=200.0)
        bundle_set = optimal_bundles(network, 50.0)
        bundle_set.validate_cover(network)
        bundle_set.validate_radius(network)

    def test_count_helper(self):
        network = uniform_deployment(count=10, seed=4,
                                     field_side_m=200.0)
        assert optimal_bundle_count(network, 50.0) == len(
            optimal_bundles(network, 50.0))

    def test_tiny_radius_optimal_is_n(self):
        network = uniform_deployment(count=8, seed=4)
        assert optimal_bundle_count(network, 1e-9) == 8
