"""Tests for the Section IV-C radius search."""

import pytest

from repro.bundling import (find_optimal_radius, refine_radius,
                            sweep_radii)
from repro.errors import BundlingError


def u_shaped(radius: float) -> float:
    """A clean convex objective with its optimum at r = 17."""
    return (radius - 17.0) ** 2 + 3.0


class TestSweep:
    def test_picks_minimum(self):
        result = sweep_radii(u_shaped, [5.0, 10.0, 15.0, 20.0, 25.0])
        assert result.best_radius == 15.0
        assert result.best_value == pytest.approx(u_shaped(15.0))

    def test_records_all_evaluations(self):
        radii = [5.0, 10.0, 15.0]
        result = sweep_radii(u_shaped, radii)
        assert [r for r, _ in result.evaluations] == radii

    def test_empty_rejected(self):
        with pytest.raises(BundlingError):
            sweep_radii(u_shaped, [])

    def test_single_radius(self):
        result = sweep_radii(u_shaped, [9.0])
        assert result.best_radius == 9.0


class TestRefine:
    def test_refinement_improves_u_shape(self):
        coarse = sweep_radii(u_shaped, [5.0, 15.0, 25.0])
        refined = refine_radius(u_shaped, coarse, rounds=6)
        assert refined.best_value <= coarse.best_value
        assert abs(refined.best_radius - 17.0) < abs(15.0 - 17.0)

    def test_refinement_never_worse(self):
        coarse = sweep_radii(u_shaped, [17.0, 40.0])
        refined = refine_radius(u_shaped, coarse, rounds=3)
        assert refined.best_value <= coarse.best_value

    def test_flat_objective_keeps_coarse(self):
        coarse = sweep_radii(lambda r: 1.0, [5.0, 10.0, 15.0])
        refined = refine_radius(lambda r: 1.0, coarse, rounds=2)
        assert refined.best_value == 1.0


class TestFindOptimal:
    def test_without_refinement(self):
        result = find_optimal_radius(u_shaped, [10.0, 20.0])
        assert result.best_radius == 20.0

    def test_with_refinement(self):
        result = find_optimal_radius(u_shaped, [10.0, 20.0],
                                     refine_rounds=5)
        assert abs(result.best_radius - 17.0) < 3.0

    def test_objective_call_budget(self):
        calls = []

        def counting(radius):
            calls.append(radius)
            return u_shaped(radius)

        find_optimal_radius(counting, [5.0, 10.0, 15.0],
                            refine_rounds=2)
        assert len(calls) <= 3 + 2 * 2  # sweep + 2 probes per round
