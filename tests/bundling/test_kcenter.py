"""Tests for k-center bundle generation."""

import pytest

from repro.bundling import (gonzalez_centers, greedy_bundles,
                            grid_bundles, kcenter_bundle_count,
                            kcenter_bundles)
from repro.errors import BundlingError
from repro.geometry import Point
from repro.network import Sensor, SensorNetwork, uniform_deployment


class TestGonzalez:
    def test_empty(self):
        assert gonzalez_centers([], 3) == ([], 0.0)

    def test_k_covers_all_points_as_centers(self):
        pts = [Point(float(i), 0.0) for i in range(5)]
        centers, radius = gonzalez_centers(pts, 5)
        assert sorted(centers) == list(range(5))
        assert radius == 0.0

    def test_radius_non_increasing_in_k(self):
        network = uniform_deployment(count=40, seed=2)
        pts = network.locations
        radii = [gonzalez_centers(pts, k)[1] for k in (1, 2, 4, 8, 16)]
        for previous, current in zip(radii, radii[1:]):
            assert current <= previous + 1e-9

    def test_invalid_k(self):
        with pytest.raises(BundlingError):
            gonzalez_centers([Point(0, 0)], 0)

    def test_duplicated_points_terminate(self):
        pts = [Point(1, 1)] * 6
        centers, radius = gonzalez_centers(pts, 4)
        assert radius == 0.0
        assert len(centers) >= 1

    def test_two_clusters_two_centers(self):
        pts = [Point(0, 0), Point(1, 0), Point(100, 0), Point(101, 0)]
        _, radius = gonzalez_centers(pts, 2, seed=0)
        assert radius <= 1.0 + 1e-9


class TestKcenterBundles:
    def test_cover_and_radius_valid(self, medium_network):
        bundle_set = kcenter_bundles(medium_network, 60.0)
        bundle_set.validate_cover(medium_network)
        bundle_set.validate_radius(medium_network)

    def test_tiny_radius_singletons(self, medium_network):
        bundle_set = kcenter_bundles(medium_network, 1e-9)
        assert len(bundle_set) == len(medium_network)

    def test_huge_radius_one_bundle(self, medium_network):
        bundle_set = kcenter_bundles(medium_network, 5000.0)
        assert len(bundle_set) == 1

    def test_count_monotone_in_radius(self, medium_network):
        counts = [kcenter_bundle_count(medium_network, r)
                  for r in (10.0, 40.0, 160.0, 640.0)]
        assert counts == sorted(counts, reverse=True)

    def test_never_better_than_greedy_rarely_worse_than_grid(self):
        # k-center sits between greedy (count-optimized) and grid
        # (geometry-blind) in practice; assert the weak envelope that
        # holds deterministically: valid cover with sane count.
        network = uniform_deployment(count=80, seed=6)
        for radius in (20.0, 40.0):
            kc = kcenter_bundle_count(network, radius)
            greedy = len(greedy_bundles(network, radius))
            grid = len(grid_bundles(network, radius))
            assert kc >= greedy  # greedy optimizes exactly this count
            assert kc <= grid * 2  # and k-center is never pathological

    def test_negative_radius_rejected(self, medium_network):
        with pytest.raises(BundlingError):
            kcenter_bundles(medium_network, -1.0)

    def test_empty_network(self):
        network = SensorNetwork([], 100.0)
        assert len(kcenter_bundles(network, 10.0)) == 0

    def test_deterministic_per_seed(self, medium_network):
        a = kcenter_bundles(medium_network, 50.0, seed=3)
        b = kcenter_bundles(medium_network, 50.0, seed=3)
        assert [x.members for x in a] == [y.members for y in b]

    def test_disjoint_membership(self, medium_network):
        bundle_set = kcenter_bundles(medium_network, 50.0)
        seen = set()
        for bundle in bundle_set:
            assert not (bundle.members & seen)
            seen |= bundle.members
        assert seen == set(range(len(medium_network)))
