"""Tests for the grid bundle baseline."""

import math

import pytest

from repro.bundling import greedy_bundles, grid_bundles, grid_cell_count
from repro.errors import BundlingError
from repro.geometry import Point
from repro.network import Sensor, SensorNetwork, uniform_deployment


def _network(points, side=100.0):
    return SensorNetwork(
        [Sensor(index=i, location=p) for i, p in enumerate(points)],
        side)


class TestGridBundles:
    def test_covers_every_sensor(self, medium_network):
        bundle_set = grid_bundles(medium_network, 30.0)
        bundle_set.validate_cover(medium_network)

    def test_cell_side_guarantees_radius(self, medium_network):
        # Every sensor must be within r of its cell-center anchor.
        bundle_set = grid_bundles(medium_network, 30.0)
        bundle_set.validate_radius(medium_network)

    def test_invalid_radius_rejected(self, medium_network):
        with pytest.raises(BundlingError):
            grid_bundles(medium_network, 0.0)

    def test_straddling_cluster_splits(self):
        # Two points 0.2 apart but straddling a cell border become two
        # grid bundles, while greedy merges them — the Fig. 11 gap.
        r = 1.0
        side = r * math.sqrt(2.0)
        pts = [Point(side - 0.1, 0.5), Point(side + 0.1, 0.5)]
        network = _network(pts)
        assert len(grid_bundles(network, r)) == 2
        assert len(greedy_bundles(network, r)) == 1

    def test_recentre_reduces_worst_distance(self):
        pts = [Point(0.1, 0.1), Point(0.2, 0.2)]
        network = _network(pts)
        plain = grid_bundles(network, 5.0, recentre=False)
        tight = grid_bundles(network, 5.0, recentre=True)
        assert tight.bundles[0].radius <= plain.bundles[0].radius

    def test_grid_never_beats_greedy(self, medium_network):
        for radius in (10.0, 30.0, 60.0):
            grid_count = len(grid_bundles(medium_network, radius))
            greedy_count = len(greedy_bundles(medium_network, radius))
            assert greedy_count <= grid_count

    def test_cell_count_helper(self, medium_network):
        assert grid_cell_count(medium_network, 30.0) == len(
            grid_bundles(medium_network, 30.0))

    def test_deterministic(self):
        network = uniform_deployment(count=30, seed=3)
        a = grid_bundles(network, 25.0)
        b = grid_bundles(network, 25.0)
        assert [x.members for x in a] == [y.members for y in b]
