"""Tests for the greedy bundle generator (Algorithm 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bundling import (coverage_gain_curve, greedy_bundles,
                            greedy_set_cover, singleton_bundles)
from repro.errors import CoverageError
from repro.geometry import Point
from repro.network import uniform_deployment


class TestGreedySetCover:
    def test_empty_universe(self):
        assert greedy_set_cover([], 0) == []

    def test_single_set_covers_all(self):
        chosen = greedy_set_cover([frozenset({0, 1, 2})], 3)
        assert chosen == [frozenset({0, 1, 2})]

    def test_prefers_larger_set(self):
        candidates = [frozenset({0}), frozenset({1}),
                      frozenset({0, 1, 2}), frozenset({2})]
        chosen = greedy_set_cover(candidates, 3)
        assert chosen[0] == frozenset({0, 1, 2})
        assert len(chosen) == 1

    def test_returned_sets_partition_universe(self):
        candidates = [frozenset({0, 1}), frozenset({1, 2}),
                      frozenset({2, 3})]
        chosen = greedy_set_cover(candidates, 4)
        combined = []
        for members in chosen:
            combined.extend(members)
        assert sorted(combined) == [0, 1, 2, 3]  # no duplicates

    def test_uncoverable_raises(self):
        with pytest.raises(CoverageError):
            greedy_set_cover([frozenset({0})], 2)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.frozensets(st.integers(0, 14), min_size=1),
                    min_size=1, max_size=30))
    def test_cover_and_ln_bound(self, family):
        universe = set()
        for members in family:
            universe |= members
        size = max(universe) + 1 if universe else 0
        # Pad with singletons so the universe is always coverable.
        family = list(family) + [frozenset({e}) for e in range(size)]
        chosen = greedy_set_cover(family, size)
        covered = set()
        for members in chosen:
            covered |= members
        assert covered == set(range(size))
        # Theorem 2 bound (weak form): greedy uses at most
        # (ln n + 1) * OPT sets; OPT >= 1, so just sanity-bound growth.
        if size > 0:
            assert len(chosen) <= size


class TestGreedyBundles:
    def test_covers_every_sensor(self, medium_network):
        bundle_set = greedy_bundles(medium_network, 50.0)
        bundle_set.validate_cover(medium_network)
        bundle_set.validate_radius(medium_network)

    def test_tiny_radius_gives_singletons(self, medium_network):
        bundle_set = greedy_bundles(medium_network, 1e-6)
        assert len(bundle_set) == len(medium_network)

    def test_huge_radius_gives_one_bundle(self, medium_network):
        bundle_set = greedy_bundles(medium_network, 2000.0)
        assert len(bundle_set) == 1

    def test_bundle_count_monotone_in_radius(self, medium_network):
        counts = [len(greedy_bundles(medium_network, r))
                  for r in (5.0, 20.0, 80.0, 320.0)]
        assert counts == sorted(counts, reverse=True)

    def test_disjoint_membership(self, medium_network):
        bundle_set = greedy_bundles(medium_network, 60.0)
        seen = set()
        for bundle in bundle_set:
            assert not (bundle.members & seen)
            seen |= bundle.members

    def test_pruning_does_not_change_count(self, medium_network):
        pruned = greedy_bundles(medium_network, 60.0,
                                prune_dominated=True)
        full = greedy_bundles(medium_network, 60.0,
                              prune_dominated=False)
        assert len(pruned) == len(full)

    def test_anchor_is_sed_center(self, medium_network):
        from repro.geometry import smallest_enclosing_disk
        bundle_set = greedy_bundles(medium_network, 60.0)
        locations = medium_network.locations
        for bundle in bundle_set:
            disk = smallest_enclosing_disk(
                [locations[i] for i in bundle.members])
            assert bundle.anchor.is_close(disk.center, tol=1e-6)

    def test_known_geometry(self):
        # Two tight clusters far apart -> exactly 2 bundles.
        from repro.network import Sensor, SensorNetwork
        pts = [Point(0, 0), Point(1, 0), Point(0, 1),
               Point(100, 100), Point(101, 100)]
        network = SensorNetwork(
            [Sensor(index=i, location=p) for i, p in enumerate(pts)],
            200.0)
        bundle_set = greedy_bundles(network, 2.0)
        assert len(bundle_set) == 2


class TestDiagnostics:
    def test_singleton_bundles(self, medium_network):
        bundle_set = singleton_bundles(medium_network)
        assert len(bundle_set) == len(medium_network)
        for bundle in bundle_set:
            assert bundle.radius == 0.0

    def test_gain_curve_non_increasing(self):
        network = uniform_deployment(count=60, seed=5,
                                     field_side_m=300.0)
        gains = coverage_gain_curve(network, 40.0)
        assert sum(gains) == 60
        assert all(gains[i] >= gains[i + 1]
                   for i in range(len(gains) - 1))

    def test_ln_n_plus_one_bound_against_singleton_opt(self):
        # When every pair is mergeable the optimum is ceil(n / max
        # bundle size); at minimum the greedy result must respect the
        # ln(n)+1 factor against the trivial lower bound
        # n / max_cardinality.
        network = uniform_deployment(count=50, seed=11,
                                     field_side_m=400.0)
        bundle_set = greedy_bundles(network, 60.0)
        max_size = max(len(b) for b in bundle_set)
        lower_bound = math.ceil(len(network) / max_size)
        assert len(bundle_set) <= (math.log(len(network)) + 1.0) \
            * max(lower_bound, 1) + 1
