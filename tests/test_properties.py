"""Whole-pipeline property tests.

Hypothesis drives random deployments, radii and planner choices through
the full plan->evaluate->simulate pipeline, asserting the library's
global invariants.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (CostParameters, evaluate_plan, make_planner,
                   uniform_deployment)
from repro.planners import PAPER_ALGORITHMS
from repro.sim import run_mission

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

network_params = st.tuples(
    st.integers(min_value=1, max_value=25),        # sensor count
    st.integers(min_value=0, max_value=10_000),    # seed
    st.floats(min_value=1.0, max_value=80.0),      # bundle radius
    st.sampled_from(PAPER_ALGORITHMS),
)


class TestPipelineInvariants:
    @SLOW
    @given(network_params)
    def test_every_plan_complete_and_consistent(self, params):
        count, seed, radius, algorithm = params
        network = uniform_deployment(count=count, seed=seed,
                                     field_side_m=500.0)
        cost = CostParameters.paper_defaults()
        plan = make_planner(algorithm, radius).plan(network, cost)
        # Completeness: every sensor has a responsible stop.
        plan.validate_complete(count)
        # Consistency: the evaluator's dwell check passes (no raise).
        metrics = evaluate_plan(plan, network.locations, cost)
        assert metrics.total_j >= 0.0
        assert metrics.sensor_count == count

    @SLOW
    @given(network_params)
    def test_simulated_mission_charges_everyone(self, params):
        count, seed, radius, algorithm = params
        network = uniform_deployment(count=count, seed=seed,
                                     field_side_m=500.0)
        cost = CostParameters.paper_defaults()
        plan = make_planner(algorithm, radius).plan(network, cost)
        run_mission(plan, network, cost)
        assert network.all_satisfied()

    @SLOW
    @given(network_params)
    def test_energy_ledger_agreement(self, params):
        count, seed, radius, algorithm = params
        network = uniform_deployment(count=count, seed=seed,
                                     field_side_m=500.0)
        cost = CostParameters.paper_defaults()
        plan = make_planner(algorithm, radius).plan(network, cost)
        metrics = evaluate_plan(plan, network.locations, cost)
        trace = run_mission(plan, network, cost)
        assert trace.total_energy_j == pytest.approx(metrics.total_j,
                                                     rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=30),
           st.integers(min_value=0, max_value=10_000))
    def test_bcopt_never_worse_than_bc(self, count, seed):
        network = uniform_deployment(count=count, seed=seed,
                                     field_side_m=500.0)
        cost = CostParameters.paper_defaults()
        bc = make_planner("BC", 30.0).plan(network, cost)
        opt = make_planner("BC-OPT", 30.0).plan(network, cost)
        bc_total = evaluate_plan(bc, network.locations, cost).total_j
        opt_total = evaluate_plan(opt, network.locations, cost).total_j
        assert opt_total <= bc_total + 1e-6 * max(1.0, bc_total)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=25),
           st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=1.0, max_value=100.0))
    def test_bundle_cover_partitions_sensors(self, count, seed, radius):
        from repro.bundling import greedy_bundles
        network = uniform_deployment(count=count, seed=seed,
                                     field_side_m=500.0)
        bundle_set = greedy_bundles(network, radius)
        seen = set()
        for bundle in bundle_set:
            assert not (bundle.members & seen)
            seen |= bundle.members
        assert seen == set(range(count))


class TestSerializationProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=1.0, max_value=60.0))
    def test_plan_json_round_trip_preserves_everything(self, count,
                                                       seed, radius):
        from repro.io import plan_from_dict, plan_to_dict
        network = uniform_deployment(count=count, seed=seed,
                                     field_side_m=400.0)
        cost = CostParameters.paper_defaults()
        plan = make_planner("BC", radius).plan(network, cost)
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.depot == plan.depot
        assert [s.sensors for s in restored.stops] == \
            [s.sensors for s in plan.stops]
        assert [s.position for s in restored.stops] == \
            [s.position for s in plan.stops]


class TestFleetProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=25),
           st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=6))
    def test_split_conserves_stops_and_bounds_makespan(self, count,
                                                       seed, chargers):
        from repro.fleet import split_plan
        network = uniform_deployment(count=count, seed=seed,
                                     field_side_m=400.0)
        cost = CostParameters.paper_defaults()
        plan = make_planner("BC", 30.0).plan(network, cost)
        fleet = split_plan(plan, chargers, cost)
        served = [stop.position for a in fleet.assignments
                  for stop in a.plan.stops]
        assert served == [stop.position for stop in plan.stops]
        single = split_plan(plan, 1, cost)
        assert fleet.makespan_s <= single.makespan_s + 1e-6


class TestKcenterProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=25),
           st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=1.0, max_value=200.0))
    def test_kcenter_cover_always_valid(self, count, seed, radius):
        from repro.bundling import kcenter_bundles
        network = uniform_deployment(count=count, seed=seed,
                                     field_side_m=400.0)
        bundle_set = kcenter_bundles(network, radius)
        bundle_set.validate_cover(network)
        bundle_set.validate_radius(network)
