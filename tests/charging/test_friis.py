"""Tests for the paper's Eq. 1 charging model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import constants
from repro.charging import FriisChargingModel
from repro.errors import ModelError

distances = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False,
                      allow_infinity=False)


class TestEquationOne:
    def test_paper_constants(self):
        model = FriisChargingModel()
        assert model.alpha == 36.0
        assert model.beta == 30.0
        assert model.source_power_w == pytest.approx(0.015)

    def test_received_power_formula(self):
        model = FriisChargingModel(alpha=36.0, beta=30.0,
                                   source_power_w=1.0)
        # p_r = 36 / (0 + 30)^2 = 0.04 at d = 0.
        assert model.received_power(0.0) == pytest.approx(0.04)
        # p_r = 36 / (30 + 30)^2 = 0.01 at d = 30.
        assert model.received_power(30.0) == pytest.approx(0.01)

    def test_quadratic_attenuation(self):
        model = FriisChargingModel()
        # Moving from d to a distance where (d + beta) doubles cuts
        # received power by 4x.
        p_near = model.received_power(0.0)
        p_far = model.received_power(30.0)  # (d + 30) doubles
        assert p_near / p_far == pytest.approx(4.0)

    @given(distances, distances)
    def test_monotone_decreasing(self, d1, d2):
        model = FriisChargingModel()
        lo, hi = min(d1, d2), max(d1, d2)
        assert model.received_power(lo) >= model.received_power(hi)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            FriisChargingModel(alpha=0.0)
        with pytest.raises(ModelError):
            FriisChargingModel(beta=-1.0)
        with pytest.raises(ModelError):
            FriisChargingModel(source_power_w=0.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ModelError):
            FriisChargingModel().received_power(-1.0)


class TestChargeTime:
    def test_wisp_anecdote_scale(self):
        # The paper quotes ~155 s to reach 1.8 V on a 100 uF cap at 10 m
        # with a real reader; with Eq. 1 the shape (time grows
        # quadratically in d + beta) is what matters.
        model = FriisChargingModel()
        t_10 = model.charge_time(10.0, 1.0)
        t_0 = model.charge_time(0.0, 1.0)
        assert t_10 / t_0 == pytest.approx((40.0 / 30.0) ** 2)

    def test_zero_energy_needs_zero_time(self):
        assert FriisChargingModel().charge_time(100.0, 0.0) == 0.0

    def test_negative_energy_rejected(self):
        with pytest.raises(ModelError):
            FriisChargingModel().charge_time(1.0, -1.0)

    @given(distances)
    def test_energy_cost_independent_of_source_power(self, d):
        # For Eq. 1 charger-side energy = delta (d + beta)^2 / alpha: a
        # stronger transmitter finishes proportionally faster.
        weak = FriisChargingModel(source_power_w=0.015)
        strong = FriisChargingModel(source_power_w=3.0)
        assert weak.charge_energy_cost(d, 2.0) == pytest.approx(
            strong.charge_energy_cost(d, 2.0))

    def test_energy_cost_closed_form(self):
        model = FriisChargingModel()
        assert model.charge_energy_cost(0.0, 2.0) == pytest.approx(
            2.0 * 30.0 ** 2 / 36.0)  # = 50 J

    @given(distances)
    def test_closed_form_matches_generic_path(self, d):
        model = FriisChargingModel()
        generic = model.source_power_w * model.charge_time(d, 2.0)
        assert model.charge_energy_cost(d, 2.0) == pytest.approx(generic)


class TestFromFirstPrinciples:
    def test_paper_link_budget(self):
        # G_s = 8 dBi, G_r = 2 dBi, lambda = 0.33 m (Section III-A).
        model = FriisChargingModel.from_friis_parameters(
            transmit_gain_dbi=8.0, receive_gain_dbi=2.0,
            wavelength_m=0.33, rectifier_efficiency=0.5,
            polarization_loss=1.0, beta=0.1, source_power_w=3.0)
        expected_alpha = (10.0 ** 0.8 * 10.0 ** 0.2 * 0.5
                          * (0.33 / (4 * math.pi)) ** 2)
        assert model.alpha == pytest.approx(expected_alpha)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ModelError):
            FriisChargingModel.from_friis_parameters(
                8.0, 2.0, 0.33, rectifier_efficiency=1.5,
                polarization_loss=1.0, beta=0.1, source_power_w=3.0)

    def test_constants_module_agrees(self):
        assert constants.ALPHA == 36.0
        assert constants.BETA == 30.0
        assert constants.DELTA_J == 2.0
        assert constants.MOVE_COST_J_PER_M == 5.59
        assert constants.CHARGE_POWER_W == pytest.approx(0.015)
