"""Tests for the ChargingModel base-class behaviour."""

import math

import pytest

from repro.charging import ChargingModel, FriisChargingModel
from repro.errors import ModelError


class _StepModel(ChargingModel):
    """Minimal subclass: constant power inside 10 m, zero outside."""

    def received_power(self, distance_m: float) -> float:
        self._check_distance(distance_m)
        return 0.5 if distance_m <= 10.0 else 0.0


class TestBaseClass:
    def test_invalid_source_power(self):
        with pytest.raises(ModelError):
            _StepModel(0.0)
        with pytest.raises(ModelError):
            _StepModel(float("nan"))

    def test_charge_time_generic(self):
        model = _StepModel(1.0)
        assert model.charge_time(5.0, 1.0) == pytest.approx(2.0)

    def test_charge_time_infeasible_is_inf(self):
        model = _StepModel(1.0)
        assert math.isinf(model.charge_time(20.0, 1.0))

    def test_charge_time_zero_energy(self):
        model = _StepModel(1.0)
        assert model.charge_time(20.0, 0.0) == 0.0

    def test_charge_time_negative_energy_rejected(self):
        with pytest.raises(ModelError):
            _StepModel(1.0).charge_time(1.0, -1.0)

    def test_energy_cost_generic(self):
        model = _StepModel(2.0)
        # 2 W source * (1 J / 0.5 W) dwell = 4 J.
        assert model.charge_energy_cost(5.0, 1.0) == pytest.approx(4.0)

    def test_efficiency(self):
        model = _StepModel(2.0)
        assert model.efficiency(5.0) == pytest.approx(0.25)
        assert model.efficiency(50.0) == 0.0

    def test_check_distance_guard(self):
        with pytest.raises(ModelError):
            _StepModel(1.0).received_power(float("inf"))

    def test_subclass_plugs_into_cost_parameters(self):
        from repro.charging import CostParameters
        cost = CostParameters(model=_StepModel(1.0), delta_j=1.0)
        assert cost.dwell_time_for_distance(5.0) == pytest.approx(2.0)
        assert math.isinf(cost.dwell_time_for_distance(20.0))

    def test_friis_is_a_charging_model(self):
        assert isinstance(FriisChargingModel(), ChargingModel)
