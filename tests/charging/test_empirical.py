"""Tests for the empirical charging model."""

import math

import pytest

from repro.charging import EmpiricalChargingModel, FriisChargingModel
from repro.errors import ModelError

SAMPLES = [(0.0, 1e-3), (10.0, 4e-4), (20.0, 1e-4), (40.0, 2e-5)]


class TestConstruction:
    def test_too_few_samples(self):
        with pytest.raises(ModelError):
            EmpiricalChargingModel([(0.0, 1e-3)], source_power_w=1.0)

    def test_non_monotone_rejected(self):
        bad = [(0.0, 1e-4), (10.0, 5e-4)]
        with pytest.raises(ModelError):
            EmpiricalChargingModel(bad, source_power_w=1.0)

    def test_duplicate_distance_rejected(self):
        bad = [(5.0, 1e-3), (5.0, 1e-4)]
        with pytest.raises(ModelError):
            EmpiricalChargingModel(bad, source_power_w=1.0)

    def test_nonpositive_power_rejected(self):
        bad = [(0.0, 1e-3), (10.0, 0.0)]
        with pytest.raises(ModelError):
            EmpiricalChargingModel(bad, source_power_w=1.0)

    def test_unsorted_input_accepted(self):
        shuffled = [SAMPLES[2], SAMPLES[0], SAMPLES[3], SAMPLES[1]]
        model = EmpiricalChargingModel(shuffled, source_power_w=1.0)
        assert model.max_distance_m == 40.0


class TestInterpolation:
    @pytest.fixture
    def model(self):
        return EmpiricalChargingModel(SAMPLES, source_power_w=1.0)

    def test_exact_at_samples(self, model):
        for distance, power in SAMPLES:
            assert model.received_power(distance) == pytest.approx(
                power, rel=1e-9)

    def test_clamped_below_first(self, model):
        assert model.received_power(0.0) == pytest.approx(1e-3)

    def test_zero_beyond_last(self, model):
        assert model.received_power(41.0) == 0.0
        assert math.isinf(model.charge_time(41.0, 1.0))

    def test_log_linear_midpoint(self, model):
        # Between (10, 4e-4) and (20, 1e-4): log midpoint = sqrt product.
        expected = math.sqrt(4e-4 * 1e-4)
        assert model.received_power(15.0) == pytest.approx(expected,
                                                           rel=1e-9)

    def test_monotone_everywhere(self, model):
        values = [model.received_power(d / 2.0) for d in range(0, 81)]
        for previous, current in zip(values, values[1:]):
            assert current <= previous + 1e-15


class TestFromModel:
    def test_tabulated_friis_tracks_original(self):
        friis = FriisChargingModel()
        tabulated = EmpiricalChargingModel.from_model(
            friis, [0.0, 5.0, 10.0, 20.0, 40.0, 80.0])
        for distance in (0.0, 3.0, 12.0, 33.0, 70.0):
            assert tabulated.received_power(distance) == pytest.approx(
                friis.received_power(distance), rel=0.05)

    def test_plugs_into_planner_stack(self, medium_network):
        from repro.charging import CostParameters
        from repro.planners import BundleChargingPlanner
        from repro.tour import evaluate_plan
        friis = FriisChargingModel()
        # Tabulate out to field scale so every dwell stays finite.
        distances = [0.0] + [2.0 ** k for k in range(11)]
        model = EmpiricalChargingModel.from_model(friis, distances)
        cost = CostParameters(model=model)
        plan = BundleChargingPlanner(40.0).plan(medium_network, cost)
        metrics = evaluate_plan(plan, medium_network.locations, cost)
        assert metrics.total_j > 0.0
