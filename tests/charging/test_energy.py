"""Tests for cost parameters and energy accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.charging import (CostParameters, EnergyBreakdown,
                            FriisChargingModel)
from repro.errors import ModelError


class TestCostParameters:
    def test_paper_defaults(self):
        cost = CostParameters.paper_defaults()
        assert cost.move_cost_j_per_m == 5.59
        assert cost.delta_j == 2.0
        assert isinstance(cost.model, FriisChargingModel)

    def test_movement_energy(self):
        cost = CostParameters.paper_defaults()
        assert cost.movement_energy(100.0) == pytest.approx(559.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ModelError):
            CostParameters.paper_defaults().movement_energy(-1.0)

    def test_invalid_delta_rejected(self):
        with pytest.raises(ModelError):
            CostParameters(model=FriisChargingModel(), delta_j=0.0)

    def test_invalid_move_cost_rejected(self):
        with pytest.raises(ModelError):
            CostParameters(model=FriisChargingModel(),
                           move_cost_j_per_m=-1.0)

    def test_dwell_time_for_distance(self):
        cost = CostParameters.paper_defaults()
        # t = delta (d + beta)^2 / (alpha p_c) at d = 0:
        expected = 2.0 * 900.0 / (36.0 * 0.015)
        assert cost.dwell_time_for_distance(0.0) == pytest.approx(
            expected)

    def test_charging_energy_for_distance(self):
        cost = CostParameters.paper_defaults()
        assert cost.charging_energy_for_distance(0.0) == pytest.approx(
            50.0)
        assert cost.charging_energy_for_distance(30.0) == pytest.approx(
            200.0)

    @given(st.floats(min_value=0.0, max_value=500.0),
           st.floats(min_value=0.0, max_value=500.0))
    def test_charging_energy_monotone_in_distance(self, d1, d2):
        cost = CostParameters.paper_defaults()
        lo, hi = min(d1, d2), max(d1, d2)
        assert (cost.charging_energy_for_distance(lo)
                <= cost.charging_energy_for_distance(hi) + 1e-9)


class TestEnergyBreakdown:
    def test_empty(self):
        breakdown = EnergyBreakdown()
        assert breakdown.total_j == 0.0
        assert breakdown.total_charging_time_s == 0.0

    def test_add_leg(self):
        cost = CostParameters.paper_defaults()
        breakdown = EnergyBreakdown()
        breakdown.add_leg(10.0, cost)
        breakdown.add_leg(5.0, cost)
        assert breakdown.tour_length_m == 15.0
        assert breakdown.movement_j == pytest.approx(15.0 * 5.59)

    def test_add_stop(self):
        cost = CostParameters.paper_defaults()
        breakdown = EnergyBreakdown()
        breakdown.add_stop(60.0, cost)
        assert breakdown.charging_j == pytest.approx(0.9)  # 0.9 J/min
        assert breakdown.dwell_times_s == [60.0]

    def test_invalid_dwell_rejected(self):
        cost = CostParameters.paper_defaults()
        with pytest.raises(ModelError):
            EnergyBreakdown().add_stop(-1.0, cost)
        with pytest.raises(ModelError):
            EnergyBreakdown().add_stop(float("inf"), cost)

    def test_total_is_sum(self):
        cost = CostParameters.paper_defaults()
        breakdown = EnergyBreakdown()
        breakdown.add_leg(100.0, cost)
        breakdown.add_stop(120.0, cost)
        assert breakdown.total_j == pytest.approx(
            breakdown.movement_j + breakdown.charging_j)

    def test_as_dict_keys(self):
        row = EnergyBreakdown().as_dict()
        assert set(row) == {"total_j", "movement_j", "charging_j",
                            "tour_length_m", "charging_time_s", "stops"}
