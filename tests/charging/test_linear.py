"""Tests for the alternative charging models."""

import math

import pytest

from repro.charging import IdealDiskChargingModel, LinearChargingModel
from repro.errors import ModelError


class TestLinear:
    def test_peak_at_zero(self):
        model = LinearChargingModel(peak_efficiency=0.5, cutoff_m=10.0,
                                    source_power_w=2.0)
        assert model.received_power(0.0) == pytest.approx(1.0)

    def test_zero_at_cutoff(self):
        model = LinearChargingModel(peak_efficiency=0.5, cutoff_m=10.0,
                                    source_power_w=2.0)
        assert model.received_power(10.0) == 0.0
        assert model.received_power(50.0) == 0.0

    def test_halfway(self):
        model = LinearChargingModel(peak_efficiency=0.4, cutoff_m=10.0,
                                    source_power_w=1.0)
        assert model.received_power(5.0) == pytest.approx(0.2)

    def test_infinite_time_beyond_cutoff(self):
        model = LinearChargingModel(peak_efficiency=0.4, cutoff_m=10.0,
                                    source_power_w=1.0)
        assert math.isinf(model.charge_time(10.0, 1.0))

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            LinearChargingModel(0.0, 10.0, 1.0)
        with pytest.raises(ModelError):
            LinearChargingModel(1.5, 10.0, 1.0)
        with pytest.raises(ModelError):
            LinearChargingModel(0.5, 0.0, 1.0)


class TestIdealDisk:
    def test_constant_within_range(self):
        model = IdealDiskChargingModel(efficiency=0.8, range_m=5.0,
                                       source_power_w=2.0)
        assert model.received_power(0.0) == pytest.approx(1.6)
        assert model.received_power(5.0) == pytest.approx(1.6)

    def test_zero_outside(self):
        model = IdealDiskChargingModel(efficiency=0.8, range_m=5.0,
                                       source_power_w=2.0)
        assert model.received_power(5.01) == 0.0

    def test_charge_time_distance_independent_inside(self):
        model = IdealDiskChargingModel(efficiency=0.5, range_m=5.0,
                                       source_power_w=2.0)
        assert model.charge_time(0.0, 3.0) == model.charge_time(4.9, 3.0)

    def test_efficiency_accessor(self):
        model = IdealDiskChargingModel(efficiency=0.5, range_m=5.0,
                                       source_power_w=2.0)
        assert model.efficiency(1.0) == pytest.approx(0.5)
        assert model.efficiency(9.0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            IdealDiskChargingModel(0.0, 5.0, 1.0)
        with pytest.raises(ModelError):
            IdealDiskChargingModel(0.5, -5.0, 1.0)
