"""Tests for the Eq. 3 dwell-policy accounting modes."""

import pytest

from repro.charging import (DWELL_POLICIES, CostParameters,
                            FriisChargingModel)
from repro.errors import ModelError


def _cost(policy):
    return CostParameters(model=FriisChargingModel(),
                          dwell_policy=policy)


class TestPolicies:
    def test_constants(self):
        assert DWELL_POLICIES == ("simultaneous", "sequential")

    def test_default_is_simultaneous(self):
        assert CostParameters.paper_defaults().dwell_policy == \
            "simultaneous"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ModelError):
            _cost("parallel-ish")

    def test_empty_distances_zero_dwell(self):
        for policy in DWELL_POLICIES:
            assert _cost(policy).dwell_time_for_distances([]) == 0.0
            assert _cost(policy).charging_energy_for_distances([]) == 0.0

    def test_single_sensor_identical_under_both(self):
        simultaneous = _cost("simultaneous")
        sequential = _cost("sequential")
        assert simultaneous.dwell_time_for_distances([12.0]) == \
            pytest.approx(sequential.dwell_time_for_distances([12.0]))

    def test_simultaneous_uses_farthest(self):
        cost = _cost("simultaneous")
        assert cost.dwell_time_for_distances([5.0, 20.0]) == \
            pytest.approx(cost.dwell_time_for_distance(20.0))

    def test_sequential_sums_members(self):
        cost = _cost("sequential")
        expected = (cost.dwell_time_for_distance(5.0)
                    + cost.dwell_time_for_distance(20.0))
        assert cost.dwell_time_for_distances([5.0, 20.0]) == \
            pytest.approx(expected)

    def test_sequential_never_shorter(self):
        distances = [3.0, 8.0, 21.0]
        assert (_cost("sequential").dwell_time_for_distances(distances)
                >= _cost("simultaneous").dwell_time_for_distances(
                    distances))

    def test_energy_closed_form_sequential(self):
        cost = _cost("sequential")
        # 2 J * (d + 30)^2 / 36 per sensor.
        expected = 2.0 * (900.0 + 1600.0) / 36.0
        assert cost.charging_energy_for_distances([0.0, 10.0]) == \
            pytest.approx(expected)


class TestPolicyThroughPlanners:
    def test_bc_plan_dwell_respects_policy(self, medium_network):
        from repro.planners import BundleChargingPlanner
        from repro.tour import evaluate_plan
        simultaneous = _cost("simultaneous")
        sequential = _cost("sequential")
        planner = BundleChargingPlanner(60.0)
        sim_plan = planner.plan(medium_network, simultaneous)
        seq_plan = planner.plan(medium_network, sequential)
        # Same bundles, but sequential dwells are at least as long.
        assert len(sim_plan) == len(seq_plan)
        assert seq_plan.total_dwell_s() >= sim_plan.total_dwell_s()
        # Each evaluates consistently under its own accounting.
        evaluate_plan(sim_plan, medium_network.locations, simultaneous)
        evaluate_plan(seq_plan, medium_network.locations, sequential)

    def test_sequential_plan_still_validates_in_simulator(
            self, medium_network):
        from repro.planners import BundleChargingPlanner
        from repro.sim import validate_plan
        sequential = _cost("sequential")
        plan = BundleChargingPlanner(60.0).plan(medium_network,
                                                sequential)
        result = validate_plan(plan, medium_network, sequential,
                               strict=True)
        assert result.satisfied

    def test_interior_optimum_under_sequential(self):
        # The accounting ablation: sequential dwell produces the
        # Fig. 6(b)-style interior optimal radius.
        from repro.network import uniform_deployment
        from repro.planners import BundleChargingPlanner
        from repro.tour import evaluate_plan
        sequential = _cost("sequential")
        network = uniform_deployment(count=80, seed=31)

        def total(radius):
            plan = BundleChargingPlanner(radius).plan(network,
                                                      sequential)
            return evaluate_plan(plan, network.locations,
                                 sequential).total_j

        interior = min(total(r) for r in (10.0, 15.0, 20.0))
        assert interior < total(2.0)
        assert interior < total(200.0)
