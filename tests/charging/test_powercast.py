"""Tests for the simulated Powercast testbed front end."""

import math

import pytest

from repro import constants
from repro.charging import P2110_SENSITIVITY_W, PowercastChargingModel
from repro.errors import ModelError


class TestDatasheetFigures:
    def test_default_parameters(self):
        model = PowercastChargingModel()
        assert model.source_power_w == 3.0
        # 915 MHz -> lambda ~ 0.3276 m ~ "0.33 m" in the paper.
        assert model.wavelength_m == pytest.approx(0.3276, abs=1e-3)

    def test_rf_power_decays(self):
        model = PowercastChargingModel()
        assert model.rf_input_power(0.5) > model.rf_input_power(2.0)

    def test_sensitivity_cutoff(self):
        model = PowercastChargingModel()
        cutoff = model.max_charging_range()
        assert cutoff > 0.0
        assert model.received_power(cutoff * 0.9) > 0.0
        assert model.received_power(cutoff * 1.1) == 0.0

    def test_cutoff_covers_office(self):
        # The testbed room is 5 m x 5 m; its diagonal must be chargeable,
        # otherwise the paper's experiment could not have worked.
        model = PowercastChargingModel()
        assert model.max_charging_range() > 5.0 * math.sqrt(2.0)

    def test_harvester_efficiency_applied(self):
        lossless = PowercastChargingModel(harvester_efficiency=1.0,
                                          sensitivity_w=0.0)
        lossy = PowercastChargingModel(harvester_efficiency=0.5,
                                       sensitivity_w=0.0)
        assert lossy.received_power(1.0) == pytest.approx(
            0.5 * lossless.received_power(1.0))

    def test_sensitivity_constant(self):
        # -11 dBm = 10^(-1.1) mW.
        assert P2110_SENSITIVITY_W == pytest.approx(
            10.0 ** (-1.1) / 1000.0)


class TestValidation:
    def test_invalid_frequency(self):
        with pytest.raises(ModelError):
            PowercastChargingModel(frequency_hz=0.0)

    def test_invalid_efficiency(self):
        with pytest.raises(ModelError):
            PowercastChargingModel(harvester_efficiency=0.0)
        with pytest.raises(ModelError):
            PowercastChargingModel(harvester_efficiency=1.1)

    def test_invalid_offset(self):
        with pytest.raises(ModelError):
            PowercastChargingModel(near_field_offset_m=0.0)

    def test_invalid_sensitivity(self):
        with pytest.raises(ModelError):
            PowercastChargingModel(sensitivity_w=-1.0)

    def test_negative_distance(self):
        with pytest.raises(ModelError):
            PowercastChargingModel().received_power(-0.1)


class TestTestbedEnergyScale:
    def test_4mj_charge_time_reasonable(self):
        # Charging 4 mJ at ~1 m should take seconds-to-minutes, like the
        # real P2110 dev kit.
        model = PowercastChargingModel()
        t = model.charge_time(1.0, constants.TESTBED_DELTA_J)
        assert 0.01 < t < 600.0

    def test_infinite_time_beyond_cutoff(self):
        model = PowercastChargingModel()
        far = model.max_charging_range() + 1.0
        assert math.isinf(model.charge_time(far, 1e-3))
