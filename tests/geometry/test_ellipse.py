"""Tests for the Theorem 4/5 ellipse machinery."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (Ellipse, Point, bisector_residual, focal_sum,
                            min_focal_sum_on_circle)

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestEllipse:
    def test_semi_minor(self):
        ellipse = Ellipse(Point(-3, 0), Point(3, 0), semi_major=5.0)
        assert ellipse.semi_minor == pytest.approx(4.0)

    def test_center(self):
        ellipse = Ellipse(Point(0, 0), Point(4, 0), semi_major=3.0)
        assert ellipse.center.is_close(Point(2, 0))

    def test_contains_focus(self):
        ellipse = Ellipse(Point(-3, 0), Point(3, 0), semi_major=5.0)
        assert ellipse.contains(Point(-3, 0))
        assert ellipse.contains(Point(5, 0))
        assert not ellipse.contains(Point(5.1, 0))

    def test_invalid_axis_rejected(self):
        with pytest.raises(GeometryError):
            Ellipse(Point(-3, 0), Point(3, 0), semi_major=2.0)

    def test_focal_sum_on_boundary_constant(self):
        ellipse = Ellipse(Point(-3, 0), Point(3, 0), semi_major=5.0)
        top = Point(0, 4)
        side = Point(5, 0)
        assert ellipse.focal_sum(top) == pytest.approx(10.0)
        assert ellipse.focal_sum(side) == pytest.approx(10.0)


class TestFocalSum:
    def test_on_segment_between_foci(self):
        # Any point between the foci has focal sum = focal distance.
        assert focal_sum(Point(1, 0), Point(0, 0),
                         Point(4, 0)) == pytest.approx(4.0)

    def test_off_axis(self):
        assert focal_sum(Point(0, 3), Point(0, 0),
                         Point(4, 0)) == pytest.approx(3.0 + 5.0)


class TestTangencySearch:
    def test_zero_radius_returns_center(self):
        center = Point(5, 5)
        point, value = min_focal_sum_on_circle(center, 0.0, Point(0, 0),
                                               Point(10, 0))
        assert point == center
        assert value == pytest.approx(focal_sum(center, Point(0, 0),
                                                Point(10, 0)))

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            min_focal_sum_on_circle(Point(0, 0), -1.0, Point(1, 0),
                                    Point(2, 0))

    def test_symmetric_case_moves_toward_midpoint(self):
        # Circle at (0, 5), foci at (-10, 0) and (10, 0): the optimum is
        # straight down from the center, toward the segment.
        point, _ = min_focal_sum_on_circle(Point(0, 5), 2.0,
                                           Point(-10, 0), Point(10, 0))
        assert point.is_close(Point(0, 3), tol=1e-4)

    def test_collinear_case(self):
        # Center on the segment between the foci: every move along the
        # segment keeps the focal sum minimal (= focal distance).
        point, value = min_focal_sum_on_circle(Point(5, 0), 1.0,
                                               Point(0, 0), Point(10, 0))
        assert value == pytest.approx(10.0, rel=1e-6)
        assert abs(point.y) < 1e-3 or value <= 10.0 + 1e-6

    def test_result_is_on_circle(self):
        center = Point(3, -2)
        point, _ = min_focal_sum_on_circle(center, 2.5, Point(10, 10),
                                           Point(-5, 4))
        assert center.distance_to(point) == pytest.approx(2.5, rel=1e-6)

    @settings(max_examples=80, deadline=None)
    @given(points, points, points,
           st.floats(min_value=0.01, max_value=30.0))
    def test_beats_dense_scan(self, center, f1, f2, radius):
        point, value = min_focal_sum_on_circle(center, radius, f1, f2)
        # Compare with a dense scan: the search result must be at least
        # as good as every scanned point (up to discretization error of
        # the scan itself).
        scan_best = min(
            focal_sum(center + Point.from_polar(radius,
                                                2 * math.pi * k / 720),
                      f1, f2)
            for k in range(720))
        assert value <= scan_best + 1e-3 * max(1.0, scan_best)

    @settings(max_examples=50, deadline=None)
    @given(points, points, st.floats(min_value=0.1, max_value=20.0))
    def test_bisector_residual_zero_at_optimum(self, f1, f2, radius):
        from hypothesis import assume

        from repro.geometry import Segment

        center = Point(0.0, 50.0)
        # Theorem 5's precondition: the tangency is interior, i.e. the
        # segment between the foci stays clearly outside the circle (when
        # a focus is inside/on the circle the optimum degenerates to the
        # focus or a chord point, where no bisector condition holds).
        assume(f1.distance_to(f2) > 1e-3)
        seg_dist = Segment(f1, f2).distance_to_point(center)
        assume(seg_dist > 1.2 * radius)
        point, _ = min_focal_sum_on_circle(center, radius, f1, f2)
        residual = bisector_residual(center, point, f1, f2)
        # Theorem 5: the radius bisects the focal angle at the optimum.
        assert abs(residual) < 5e-2


class TestBisectorResidual:
    def test_symmetric_zero(self):
        # Perfectly symmetric geometry: residual is exactly zero.
        residual = bisector_residual(Point(0, 5), Point(0, 2),
                                     Point(-7, 0), Point(7, 0))
        assert residual == pytest.approx(0.0, abs=1e-12)

    def test_sign_flips_across_optimum(self):
        center = Point(0, 5)
        f1, f2 = Point(-7, 0), Point(7, 0)
        left = center + Point.from_polar(2.0, -math.pi / 2 - 0.3)
        right = center + Point.from_polar(2.0, -math.pi / 2 + 0.3)
        r_left = bisector_residual(center, left, f1, f2)
        r_right = bisector_residual(center, right, f1, f2)
        assert r_left * r_right < 0.0
