"""Tests for repro.geometry.soa — the struct-of-arrays geometry engine.

The contract under test is *bit-identity*: every flat kernel must
reproduce its reference sibling's output exactly (not approximately) on
every input, because the pipeline's cache keys, figure artifacts and the
PAR001 lint rule all assume the two paths are interchangeable.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bundling.bitset import indices_from_mask, mask_from_indices
from repro.bundling.candidates import (candidate_member_masks_reference,
                                       candidate_member_sets_reference)
from repro.errors import GeometryError
from repro.geometry import (FlatDeployment, GridIndex, Point,
                            fits_in_radius, flat_candidate_masks,
                            flat_distance_rows, flat_fits_in_radius,
                            flat_members_within, grid_cell_size)
from repro.geometry.soa import _MissDict
from repro.tsp.distance import distance_rows_reference

coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, coords, coords)


def _random_points(n, seed, side=100.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0.0, side), rng.uniform(0.0, side))
            for _ in range(n)]


class TestFlatDeployment:
    def test_from_points_round_trips(self):
        pts = _random_points(20, 1)
        flat = FlatDeployment.from_points(pts)
        assert len(flat) == 20
        for i, p in enumerate(pts):
            assert flat.point(i) == p

    def test_length_mismatch_raises(self):
        with pytest.raises(GeometryError):
            FlatDeployment([0.0, 1.0], [0.0])

    def test_coords_are_readonly_memoryviews(self):
        flat = FlatDeployment([1.0, 2.0], [3.0, 4.0])
        xs, ys = flat.coords()
        assert xs.readonly and ys.readonly
        assert list(xs) == [1.0, 2.0]
        assert list(ys) == [3.0, 4.0]
        with pytest.raises(TypeError):
            xs[0] = 9.0

    def test_grids_cached_per_cell_size(self):
        flat = FlatDeployment.from_points(_random_points(10, 2))
        assert flat.grid(5.0) is flat.grid(5.0)
        assert flat.grid(5.0) is not flat.grid(7.0)

    def test_invalid_cell_size_raises(self):
        flat = FlatDeployment([0.0], [0.0])
        for bad in (0.0, -1.0, math.inf, math.nan):
            with pytest.raises(GeometryError):
                flat.grid(bad)

    def test_empty_deployment(self):
        flat = FlatDeployment([], [])
        assert len(flat) == 0
        assert flat_candidate_masks(flat, 5.0) == []
        assert flat_members_within(flat, 0.0, 0.0, 5.0) == 0


class TestFlatMembersWithin:
    def test_matches_grid_index_on_random_queries(self):
        pts = _random_points(60, 3)
        flat = FlatDeployment.from_points(pts)
        index = GridIndex(pts, grid_cell_size(7.5))
        rng = random.Random(4)
        for _ in range(50):
            q = Point(rng.uniform(-10.0, 110.0), rng.uniform(-10.0, 110.0))
            expected = mask_from_indices(index.neighbors_within(q, 7.5))
            assert flat_members_within(flat, q.x, q.y, 7.5) == expected

    def test_degenerate_zero_radius(self):
        pts = [Point(0.0, 0.0), Point(0.0, 0.0), Point(1.0, 1.0)]
        flat = FlatDeployment.from_points(pts)
        assert flat_members_within(flat, 0.0, 0.0, 0.0) == 0b011
        assert flat_members_within(flat, 1.0, 1.0, 0.0) == 0b100
        assert flat_members_within(flat, 0.5, 0.5, 0.0) == 0

    def test_negative_radius_raises(self):
        flat = FlatDeployment([0.0], [0.0])
        with pytest.raises(GeometryError):
            flat_members_within(flat, 0.0, 0.0, -1.0)


class TestFlatFitsInRadius:
    def test_matches_reference_on_random_subsets(self):
        pts = _random_points(40, 5)
        flat = FlatDeployment.from_points(pts)
        rng = random.Random(6)
        for _ in range(40):
            members = rng.sample(range(40), rng.randint(1, 10))
            radius = rng.uniform(0.0, 30.0)
            expected = fits_in_radius([pts[i] for i in members], radius)
            assert flat_fits_in_radius(flat, members, radius) == expected

    def test_empty_members_fit_any_radius(self):
        flat = FlatDeployment([0.0], [0.0])
        assert flat_fits_in_radius(flat, [], 0.0)

    def test_negative_radius_raises(self):
        flat = FlatDeployment([0.0], [0.0])
        with pytest.raises(GeometryError):
            flat_fits_in_radius(flat, [0], -0.5)


class TestFlatDistanceRows:
    def test_bit_identical_to_reference(self):
        pts = _random_points(30, 7)
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        assert flat_distance_rows(xs, ys) == distance_rows_reference(pts)

    def test_empty_and_singleton(self):
        assert flat_distance_rows([], []) == []
        assert flat_distance_rows([3.0], [4.0]) == [[0.0]]


class TestFlatCandidateMasks:
    def test_negative_radius_raises(self):
        flat = FlatDeployment([0.0], [0.0])
        with pytest.raises(GeometryError):
            flat_candidate_masks(flat, -1.0)

    def test_degenerate_zero_radius(self):
        # r == 0: one singleton per distinct location, coincident points
        # merge into one candidate.
        pts = [Point(0.0, 0.0), Point(0.0, 0.0), Point(5.0, 5.0)]
        flat = FlatDeployment.from_points(pts)
        masks = flat_candidate_masks(flat, 0.0)
        assert masks == [0b011, 0b100]

    def test_tiny_radius_takes_dict_fallback(self):
        # A tiny cell size over a wide extent blows the flat-list span
        # guard, exercising the _MissDict-backed lookup path.
        pts = _random_points(12, 8, side=100.0)
        flat = FlatDeployment.from_points(pts)
        radius = 5e-10
        grid = flat.grid(grid_cell_size(radius))
        span = (grid.col_hi - grid.col_lo + 7) * grid.stride
        assert span > 32 * len(flat) + 4096  # the guard must trip
        expected = [mask_from_indices(s) for s in
                    candidate_member_sets_reference(pts, radius)]
        assert flat_candidate_masks(flat, radius) == expected

    def test_missdict_missing_key_yields_none_without_insert(self):
        lookup = _MissDict({3: []})
        assert lookup[99] is None
        assert 99 not in lookup


class TestCandidateFamilyParity:
    """Satellite 3's property parity sweep: the SoA enumeration must be
    bit-identical to both reference enumerations across radii and
    densities, including cluster-heavy and coincident-point inputs."""

    @pytest.mark.parametrize("n,radius,side,seed", [
        (1, 10.0, 100.0, 11),
        (25, 0.0, 100.0, 12),
        (50, 2.0, 100.0, 13),      # sparse: most cells empty
        (80, 20.0, 100.0, 14),     # dense: heavy pair traffic
        (60, 60.0, 100.0, 15),     # radius comparable to the extent
        (40, 200.0, 100.0, 16),    # every pair in range: one big family
        (30, 1e-3, 100.0, 17),     # near-degenerate but list-backed
    ])
    def test_matches_both_references(self, n, radius, side, seed):
        pts = _random_points(n, seed, side=side)
        flat = FlatDeployment.from_points(pts)
        fast = flat_candidate_masks(flat, radius)
        assert fast == candidate_member_masks_reference(pts, radius)
        assert fast == [mask_from_indices(s) for s in
                        candidate_member_sets_reference(pts, radius)]

    def test_coincident_cluster(self):
        pts = ([Point(10.0, 10.0)] * 4
               + [Point(10.0 + 1e-9, 10.0)] * 2
               + _random_points(20, 18, side=40.0))
        flat = FlatDeployment.from_points(pts)
        fast = flat_candidate_masks(flat, 3.0)
        assert fast == candidate_member_masks_reference(pts, 3.0)

    @settings(max_examples=40, deadline=None)
    @given(pts=st.lists(points, min_size=1, max_size=25),
           radius=st.floats(min_value=0.0, max_value=150.0,
                            allow_nan=False, allow_infinity=False))
    def test_property_parity(self, pts, radius):
        flat = FlatDeployment.from_points(pts)
        fast = flat_candidate_masks(flat, radius)
        reference = [mask_from_indices(s) for s in
                     candidate_member_sets_reference(pts, radius)]
        assert fast == reference
        # Masks decode to strictly deduplicated member sets in canonical
        # order: descending cardinality, then lexicographic.
        decoded = [tuple(indices_from_mask(m)) for m in fast]
        assert len(set(decoded)) == len(decoded)
        assert decoded == sorted(decoded, key=lambda t: (-len(t), t))
