"""Tests for repro.geometry.hull."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (Point, convex_hull, hull_perimeter,
                            smallest_enclosing_disk)

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestConvexHull:
    def test_square_hull(self, square_points):
        hull = convex_hull(square_points + [Point(0.5, 0.5)])
        assert len(hull) == 4
        assert set(hull) == set(square_points)

    def test_collinear_input(self):
        pts = [Point(float(i), float(i)) for i in range(5)]
        hull = convex_hull(pts)
        assert len(hull) == 2

    def test_single_point(self):
        assert convex_hull([Point(1, 1)]) == [Point(1, 1)]

    def test_duplicates_removed(self):
        hull = convex_hull([Point(0, 0), Point(0, 0), Point(1, 0),
                            Point(0, 1)])
        assert len(hull) == 3

    def test_counter_clockwise_orientation(self, square_points):
        hull = convex_hull(square_points)
        area2 = sum(hull[i].cross(hull[(i + 1) % len(hull)])
                    for i in range(len(hull)))
        assert area2 > 0.0  # CCW => positive signed area

    @settings(max_examples=60, deadline=None)
    @given(st.lists(points, min_size=3, max_size=40))
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return
        # Each input point must be inside the hull: left of (or on)
        # every CCW edge.
        for q in pts:
            for i in range(len(hull)):
                edge = hull[(i + 1) % len(hull)] - hull[i]
                to_q = q - hull[i]
                assert edge.cross(to_q) >= -1e-6 * max(
                    1.0, edge.norm() * to_q.norm())

    @settings(max_examples=40, deadline=None)
    @given(st.lists(points, min_size=1, max_size=30))
    def test_hull_min_disk_equals_full_min_disk(self, pts):
        full = smallest_enclosing_disk(pts)
        on_hull = smallest_enclosing_disk(convex_hull(pts))
        assert full.radius == pytest.approx(on_hull.radius, rel=1e-6,
                                            abs=1e-6)


class TestPerimeter:
    def test_unit_square(self, square_points):
        assert hull_perimeter(square_points) == pytest.approx(4.0)

    def test_degenerate(self):
        assert hull_perimeter([Point(0, 0)]) == 0.0

    def test_two_points_counts_both_ways(self):
        assert hull_perimeter([Point(0, 0), Point(3, 0)]) == \
            pytest.approx(6.0)
