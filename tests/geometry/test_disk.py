"""Tests for repro.geometry.disk."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (Disk, Point, disk_from_three_points,
                            disk_from_two_points,
                            disks_through_pair_with_radius)

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestDisk:
    def test_contains_center(self):
        assert Disk(Point(0, 0), 1.0).contains(Point(0, 0))

    def test_contains_boundary(self):
        assert Disk(Point(0, 0), 1.0).contains(Point(1, 0))

    def test_excludes_outside(self):
        assert not Disk(Point(0, 0), 1.0).contains(Point(1.1, 0))

    def test_contains_all(self):
        disk = Disk(Point(0, 0), 2.0)
        assert disk.contains_all([Point(1, 0), Point(0, -2)])
        assert not disk.contains_all([Point(1, 0), Point(3, 0)])

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Disk(Point(0, 0), -1.0)

    def test_nan_radius_rejected(self):
        with pytest.raises(GeometryError):
            Disk(Point(0, 0), float("nan"))

    def test_intersects_touching(self):
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(2, 0), 1.0)
        assert a.intersects(b)

    def test_intersects_disjoint(self):
        a = Disk(Point(0, 0), 1.0)
        b = Disk(Point(2.5, 0), 1.0)
        assert not a.intersects(b)

    def test_area(self):
        assert Disk(Point(0, 0), 2.0).area() == pytest.approx(
            4.0 * math.pi)

    def test_boundary_point(self):
        point = Disk(Point(1, 1), 2.0).boundary_point(0.0)
        assert point.is_close(Point(3, 1))

    def test_scaled(self):
        disk = Disk(Point(1, 1), 2.0).scaled(0.5)
        assert disk.radius == 1.0
        assert disk.center == Point(1, 1)


class TestConstructions:
    def test_two_point_disk(self):
        disk = disk_from_two_points(Point(0, 0), Point(2, 0))
        assert disk.center.is_close(Point(1, 0))
        assert disk.radius == pytest.approx(1.0)

    def test_three_point_disk_right_triangle(self):
        # Circumcircle of a right triangle is centered on the hypotenuse.
        disk = disk_from_three_points(Point(0, 0), Point(2, 0),
                                      Point(0, 2))
        assert disk is not None
        assert disk.center.is_close(Point(1, 1))
        assert disk.radius == pytest.approx(math.sqrt(2.0))

    def test_three_point_collinear_returns_none(self):
        assert disk_from_three_points(Point(0, 0), Point(1, 0),
                                      Point(2, 0)) is None

    @given(points, points, points)
    def test_circumcircle_touches_all_three(self, a, b, c):
        disk = disk_from_three_points(a, b, c)
        if disk is None:
            return
        for p in (a, b, c):
            assert disk.center.distance_to(p) == pytest.approx(
                disk.radius, rel=1e-6, abs=1e-6)


class TestPairDisks:
    def test_too_far_apart(self):
        assert disks_through_pair_with_radius(Point(0, 0), Point(10, 0),
                                              1.0) == ()

    def test_exactly_diameter(self):
        disks = disks_through_pair_with_radius(Point(0, 0), Point(2, 0),
                                               1.0)
        assert len(disks) == 1
        assert disks[0].center.is_close(Point(1, 0))

    def test_two_solutions(self):
        disks = disks_through_pair_with_radius(Point(0, 0), Point(1, 0),
                                               1.0)
        assert len(disks) == 2
        for disk in disks:
            assert disk.radius == 1.0
            assert disk.contains(Point(0, 0))
            assert disk.contains(Point(1, 0))
        assert not disks[0].center.is_close(disks[1].center)

    def test_coincident_points(self):
        disks = disks_through_pair_with_radius(Point(1, 1), Point(1, 1),
                                               2.0)
        assert len(disks) == 1
        assert disks[0].center == Point(1, 1)

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            disks_through_pair_with_radius(Point(0, 0), Point(1, 0),
                                           -1.0)

    @given(points, points, st.floats(min_value=0.1, max_value=100.0))
    def test_both_points_on_every_returned_boundary(self, a, b, radius):
        for disk in disks_through_pair_with_radius(a, b, radius):
            assert disk.center.distance_to(a) <= radius * (1 + 1e-7)
            assert disk.center.distance_to(b) <= radius * (1 + 1e-7)
