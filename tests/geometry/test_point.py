"""Tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, as_point, centroid, max_distance
from repro.geometry.point import polyline_length

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, finite, finite)


class TestArithmetic:
    def test_add(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_sub(self):
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_mul_both_sides(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_div(self):
        assert Point(2, 4) / 2 == Point(1, 2)

    def test_neg(self):
        assert -Point(1, -2) == Point(-1, 2)

    def test_iter_unpacking(self):
        x, y = Point(5, 7)
        assert (x, y) == (5, 7)

    def test_hashable(self):
        assert len({Point(1, 1), Point(1, 1), Point(2, 1)}) == 2


class TestMetrics:
    def test_norm_345(self):
        assert Point(3, 4).norm() == 5.0

    def test_norm_squared(self):
        assert Point(3, 4).norm_squared() == 25.0

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_squared(self):
        assert Point(1, 1).distance_squared_to(Point(4, 5)) == 25.0

    def test_dot(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11.0

    def test_cross_sign(self):
        assert Point(1, 0).cross(Point(0, 1)) == 1.0
        assert Point(0, 1).cross(Point(1, 0)) == -1.0

    def test_normalized_unit_length(self):
        assert Point(3, 4).normalized().norm() == pytest.approx(1.0)

    def test_normalized_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Point(0, 0).normalized()

    def test_angle(self):
        assert Point(0, 1).angle() == pytest.approx(math.pi / 2)

    def test_rotated_quarter_turn(self):
        rotated = Point(1, 0).rotated(math.pi / 2)
        assert rotated.is_close(Point(0, 1))

    def test_perpendicular(self):
        assert Point(1, 0).perpendicular() == Point(0, 1)

    def test_from_polar(self):
        point = Point.from_polar(2.0, math.pi)
        assert point.is_close(Point(-2, 0))


class TestHelpers:
    def test_as_point_passthrough(self):
        p = Point(1, 2)
        assert as_point(p) is p

    def test_as_point_from_tuple(self):
        assert as_point((1, 2)) == Point(1.0, 2.0)

    def test_centroid(self):
        result = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert result == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_polyline_open(self):
        pts = [Point(0, 0), Point(3, 4), Point(3, 0)]
        assert polyline_length(pts) == pytest.approx(9.0)

    def test_polyline_closed(self):
        pts = [Point(0, 0), Point(3, 4), Point(3, 0)]
        assert polyline_length(pts, closed=True) == pytest.approx(12.0)

    def test_polyline_single_point(self):
        assert polyline_length([Point(1, 1)]) == 0.0

    def test_max_distance(self):
        assert max_distance(Point(0, 0),
                            [Point(1, 0), Point(0, 5)]) == 5.0

    def test_max_distance_empty(self):
        assert max_distance(Point(0, 0), []) == 0.0


class TestProperties:
    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert (a.distance_to(c)
                <= a.distance_to(b) + b.distance_to(c) + 1e-6)

    @given(points)
    def test_add_sub_roundtrip(self, p):
        shifted = p + Point(10.0, -4.0)
        back = shifted - Point(10.0, -4.0)
        assert back.is_close(p, tol=1e-6)

    @given(points, st.floats(min_value=-math.pi, max_value=math.pi))
    def test_rotation_preserves_norm(self, p, angle):
        assert p.rotated(angle).norm() == pytest.approx(p.norm(),
                                                        abs=1e-6)
