"""Tests for repro.geometry.grid_index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import GridIndex, Point

coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestConstruction:
    def test_invalid_cell_size(self):
        with pytest.raises(GeometryError):
            GridIndex([Point(0, 0)], 0.0)
        with pytest.raises(GeometryError):
            GridIndex([Point(0, 0)], -1.0)

    def test_len(self):
        index = GridIndex([Point(0, 0), Point(1, 1)], 1.0)
        assert len(index) == 2

    def test_negative_coordinates_supported(self):
        index = GridIndex([Point(-5, -5), Point(5, 5)], 2.0)
        assert index.neighbors_within(Point(-5, -5), 0.5) == [0]


class TestQueries:
    def test_exact_radius_inclusive(self):
        index = GridIndex([Point(0, 0), Point(3, 0)], 1.0)
        assert sorted(index.neighbors_within(Point(0, 0), 3.0)) == [0, 1]

    def test_exclude_self(self):
        index = GridIndex([Point(0, 0), Point(1, 0)], 1.0)
        found = index.neighbors_within(Point(0, 0), 2.0,
                                       include_self=False)
        assert found == [1]

    def test_negative_radius_rejected(self):
        index = GridIndex([Point(0, 0)], 1.0)
        with pytest.raises(GeometryError):
            index.neighbors_within(Point(0, 0), -1.0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(points, min_size=1, max_size=60),
           points,
           st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.5, max_value=20.0))
    def test_matches_brute_force(self, pts, query, radius, cell):
        index = GridIndex(pts, cell)
        fast = sorted(index.neighbors_within(query, radius))
        slow = sorted(i for i, p in enumerate(pts)
                      if p.distance_to(query) <= radius)
        assert fast == slow


class TestPairs:
    def test_pairs_within_small(self):
        pts = [Point(0, 0), Point(1, 0), Point(5, 0)]
        index = GridIndex(pts, 1.0)
        assert sorted(index.pairs_within(1.5)) == [(0, 1)]

    def test_pairs_each_reported_once(self):
        rng = random.Random(0)
        pts = [Point(rng.uniform(0, 10), rng.uniform(0, 10))
               for _ in range(40)]
        index = GridIndex(pts, 2.0)
        pairs = list(index.pairs_within(3.0))
        assert len(pairs) == len(set(pairs))
        for i, j in pairs:
            assert i < j
            assert pts[i].distance_to(pts[j]) <= 3.0

    def test_pairs_match_brute_force(self):
        rng = random.Random(1)
        pts = [Point(rng.uniform(0, 20), rng.uniform(0, 20))
               for _ in range(50)]
        index = GridIndex(pts, 4.0)
        fast = sorted(index.pairs_within(5.0))
        slow = sorted((i, j)
                      for i in range(len(pts))
                      for j in range(i + 1, len(pts))
                      if pts[i].distance_to(pts[j]) <= 5.0)
        assert fast == slow


class TestPairSweep:
    """The forward-cell pair sweep and its per-point reference scan."""

    def test_pair_just_under_2r_across_cells(self):
        # Candidate enumeration builds the grid with cell == r but asks
        # for pairs within 2r, so the sweep must reach two cells out.
        # This pair sits at distance just under 2r with several cell
        # boundaries between the endpoints.
        radius = 10.0
        a = Point(0.5, 0.5)
        b = Point(0.5 + 2.0 * radius - 1e-6, 0.5)
        index = GridIndex([a, b], radius)
        assert list(index.pairs_within(2.0 * radius)) == [(0, 1)]
        assert list(index.pairs_within_scan(2.0 * radius)) == [(0, 1)]

    def test_pair_just_over_2r_excluded(self):
        radius = 10.0
        a = Point(0.5, 0.5)
        b = Point(0.5 + 2.0 * radius + 1e-6, 0.5)
        index = GridIndex([a, b], radius)
        assert list(index.pairs_within(2.0 * radius)) == []

    def test_sweep_matches_scan_query_larger_than_cell(self):
        rng = random.Random(7)
        pts = [Point(rng.uniform(0, 60), rng.uniform(0, 60))
               for _ in range(80)]
        index = GridIndex(pts, 5.0)
        for query in (5.0, 10.0, 12.5, 20.0):
            sweep = sorted(index.pairs_within(query))
            scan = sorted(index.pairs_within_scan(query))
            brute = sorted((i, j)
                           for i in range(len(pts))
                           for j in range(i + 1, len(pts))
                           if pts[i].distance_to(pts[j]) <= query)
            assert sweep == scan == brute

    def test_duplicate_points_yield_one_pair(self):
        pts = [Point(3.0, 3.0), Point(3.0, 3.0)]
        index = GridIndex(pts, 1.0)
        assert list(index.pairs_within(0.0)) == [(0, 1)]

    def test_negative_radius_rejected(self):
        index = GridIndex([Point(0, 0)], 1.0)
        with pytest.raises(GeometryError):
            list(index.pairs_within(-1.0))

    @settings(deadline=None, max_examples=40)
    @given(st.lists(points, min_size=2, max_size=40),
           st.floats(min_value=0.5, max_value=30.0),
           st.floats(min_value=0.5, max_value=10.0))
    def test_sweep_matches_brute_force(self, pts, query, cell):
        index = GridIndex(pts, cell)
        sweep = sorted(index.pairs_within(query))
        brute = sorted((i, j)
                       for i in range(len(pts))
                       for j in range(i + 1, len(pts))
                       if pts[i].distance_to(pts[j]) <= query)
        assert sweep == brute
