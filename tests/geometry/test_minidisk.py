"""Tests for Welzl's MinDisk (the paper's Algorithm 1)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (Point, brute_force_enclosing_disk,
                            enclosing_disk_radius, fits_in_radius,
                            smallest_enclosing_disk)

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, coords, coords)
point_lists = st.lists(points, min_size=1, max_size=25)


class TestBasics:
    def test_empty_set(self):
        disk = smallest_enclosing_disk([])
        assert disk.radius == 0.0

    def test_single_point(self):
        disk = smallest_enclosing_disk([Point(3, 4)])
        assert disk.center == Point(3, 4)
        assert disk.radius == 0.0

    def test_two_points(self):
        disk = smallest_enclosing_disk([Point(0, 0), Point(4, 0)])
        assert disk.center.is_close(Point(2, 0))
        assert disk.radius == pytest.approx(2.0)

    def test_equilateral_triangle(self):
        h = math.sqrt(3.0) / 2.0
        pts = [Point(0, 0), Point(1, 0), Point(0.5, h)]
        disk = smallest_enclosing_disk(pts)
        # Circumradius of a unit equilateral triangle is 1/sqrt(3).
        assert disk.radius == pytest.approx(1.0 / math.sqrt(3.0))

    def test_obtuse_triangle_uses_diameter(self):
        # For an obtuse triangle the min disk is the longest side's
        # diameter circle, not the circumcircle.
        pts = [Point(0, 0), Point(10, 0), Point(5, 0.1)]
        disk = smallest_enclosing_disk(pts)
        assert disk.radius == pytest.approx(5.0, abs=1e-3)

    def test_square(self, square_points):
        disk = smallest_enclosing_disk(square_points)
        assert disk.center.is_close(Point(0.5, 0.5))
        assert disk.radius == pytest.approx(math.sqrt(0.5))

    def test_duplicated_points(self):
        pts = [Point(1, 1)] * 5 + [Point(3, 1)]
        disk = smallest_enclosing_disk(pts)
        assert disk.radius == pytest.approx(1.0)

    def test_collinear_points(self):
        pts = [Point(float(i), 0.0) for i in range(10)]
        disk = smallest_enclosing_disk(pts)
        assert disk.radius == pytest.approx(4.5)
        assert disk.center.is_close(Point(4.5, 0.0))

    def test_deterministic_default_rng(self):
        pts = [Point(i * 0.7 % 5, i * 1.3 % 7) for i in range(30)]
        first = smallest_enclosing_disk(pts)
        second = smallest_enclosing_disk(pts)
        assert first.center.is_close(second.center)
        assert first.radius == second.radius


class TestDecisional:
    def test_fits_exact_boundary(self):
        pts = [Point(0, 0), Point(2, 0)]
        assert fits_in_radius(pts, 1.0)
        assert not fits_in_radius(pts, 0.99)

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            fits_in_radius([Point(0, 0)], -1.0)

    def test_radius_helper_matches_disk(self):
        pts = [Point(0, 0), Point(0, 6), Point(3, 3)]
        assert enclosing_disk_radius(pts) == pytest.approx(
            smallest_enclosing_disk(pts).radius)


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(points, min_size=1, max_size=9))
    def test_matches_brute_force_radius(self, pts):
        fast = smallest_enclosing_disk(pts)
        slow = brute_force_enclosing_disk(pts)
        assert fast.radius == pytest.approx(slow.radius, rel=1e-6,
                                            abs=1e-6)

    @settings(max_examples=100, deadline=None)
    @given(point_lists)
    def test_all_points_enclosed(self, pts):
        disk = smallest_enclosing_disk(pts)
        for p in pts:
            assert disk.contains(p, eps=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(point_lists)
    def test_supported_by_boundary_points(self, pts):
        # Minimality witness: some input point must lie (numerically) on
        # the boundary, else the disk could shrink.
        disk = smallest_enclosing_disk(pts)
        if disk.radius == 0.0:
            return
        closest = min(abs(disk.center.distance_to(p) - disk.radius)
                      for p in pts)
        assert closest <= 1e-6 * max(1.0, disk.radius)

    @settings(max_examples=40, deadline=None)
    @given(point_lists, st.integers(min_value=0, max_value=2**31))
    def test_shuffle_invariance(self, pts, seed):
        rng = random.Random(seed)
        shuffled = pts[:]
        rng.shuffle(shuffled)
        a = smallest_enclosing_disk(pts)
        b = smallest_enclosing_disk(shuffled)
        assert a.radius == pytest.approx(b.radius, rel=1e-6, abs=1e-6)


class TestScale:
    def test_large_input_linearish(self):
        rng = random.Random(7)
        pts = [Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
               for _ in range(3000)]
        disk = smallest_enclosing_disk(pts)
        assert all(disk.contains(p, eps=1e-6) for p in pts)
        # The min disk of a dense uniform square sample approaches the
        # square's circumscribed circle.
        assert disk.radius <= 1000.0 * math.sqrt(0.5) * 1.01
        assert disk.radius >= 450.0
