"""Tests for repro.geometry.segment."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Disk, Point, Segment

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                   allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestBasics:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length() == 5.0

    def test_point_at(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.point_at(0.3).is_close(Point(3, 0))

    def test_midpoint(self):
        seg = Segment(Point(0, 0), Point(4, 2))
        assert seg.midpoint().is_close(Point(2, 1))


class TestClosestPoint:
    def test_interior_projection(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.closest_point(Point(4, 5)).is_close(Point(4, 0))

    def test_clamped_to_start(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.closest_point(Point(-5, 3)).is_close(Point(0, 0))

    def test_clamped_to_end(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.closest_point(Point(15, -3)).is_close(Point(10, 0))

    def test_degenerate_segment(self):
        seg = Segment(Point(2, 2), Point(2, 2))
        assert seg.closest_point(Point(9, 9)) == Point(2, 2)

    def test_distance_to_point(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.distance_to_point(Point(5, 7)) == pytest.approx(7.0)

    @given(points, points, points)
    def test_closest_is_no_farther_than_endpoints(self, a, b, q):
        seg = Segment(a, b)
        best = seg.distance_to_point(q)
        assert best <= q.distance_to(a) + 1e-9
        assert best <= q.distance_to(b) + 1e-9


class TestDiskIntersection:
    def test_passes_through(self):
        seg = Segment(Point(-10, 0), Point(10, 0))
        assert seg.intersects_disk(Disk(Point(0, 1), 2.0))

    def test_misses(self):
        seg = Segment(Point(-10, 0), Point(10, 0))
        assert not seg.intersects_disk(Disk(Point(0, 5), 2.0))

    def test_endpoint_inside(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.intersects_disk(Disk(Point(0, 0), 1.0))

    def test_first_point_in_disk_on_boundary(self):
        seg = Segment(Point(-10, 0), Point(10, 0))
        disk = Disk(Point(0, 0), 3.0)
        entry = seg.first_point_in_disk(disk)
        assert entry.is_close(Point(-3, 0))

    def test_first_point_when_start_inside(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        disk = Disk(Point(0, 0), 2.0)
        entry = seg.first_point_in_disk(disk)
        # Entry parameter t <= 0 clamps handled: returned point must be
        # inside the disk and on the segment.
        assert disk.contains(entry, eps=1e-6)
        assert 0.0 <= entry.x <= 10.0

    @given(points, points, points,
           st.floats(min_value=0.5, max_value=50.0))
    def test_first_point_is_inside_when_intersecting(self, a, b, c, r):
        seg = Segment(a, b)
        disk = Disk(c, r)
        if not seg.intersects_disk(disk):
            return
        entry = seg.first_point_in_disk(disk)
        assert disk.contains(entry, eps=1e-5)
