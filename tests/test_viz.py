"""Tests for the ASCII visualization module."""

import pytest

from repro import CostParameters, make_planner, uniform_deployment
from repro.errors import ExperimentError
from repro.geometry import Point
from repro.viz import AsciiCanvas, render_network, render_plan, \
    sparkline


class TestCanvas:
    def test_dimensions(self):
        canvas = AsciiCanvas(100.0, width=10, height=5)
        lines = canvas.render().splitlines()
        assert len(lines) == 7  # 5 rows + 2 borders
        assert all(len(line) == 12 for line in lines)

    def test_put_and_clamp(self):
        canvas = AsciiCanvas(100.0, width=10, height=5)
        canvas.put(Point(0, 0), "X")
        canvas.put(Point(500, 500), "Y")  # clamped to a corner
        art = canvas.render()
        assert "X" in art
        assert "Y" in art

    def test_y_axis_points_up(self):
        canvas = AsciiCanvas(100.0, width=10, height=5)
        canvas.put(Point(0, 100), "T")  # top-left in world coords
        first_row = canvas.render().splitlines()[1]
        assert "T" in first_row

    def test_line_does_not_overwrite_markers(self):
        canvas = AsciiCanvas(100.0, width=20, height=10)
        canvas.put(Point(0, 0), "X")
        canvas.line(Point(0, 0), Point(100, 0))
        art = canvas.render()
        assert "X" in art
        assert "." in art

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ExperimentError):
            AsciiCanvas(0.0)
        with pytest.raises(ExperimentError):
            AsciiCanvas(100.0, width=1)


class TestRenderers:
    def test_render_plan_contains_all_markers(self, paper_cost):
        network = uniform_deployment(count=20, seed=5)
        plan = make_planner("BC", radius=40.0).plan(network, paper_cost)
        art = render_plan(plan, network.locations,
                          network.field_side_m)
        assert "*" in art
        assert "A" in art
        assert "D" in art
        assert "stops" in art  # legend

    def test_render_plan_no_legend(self, paper_cost):
        network = uniform_deployment(count=10, seed=5)
        plan = make_planner("SC", radius=0.0).plan(network, paper_cost)
        art = render_plan(plan, network.locations,
                          network.field_side_m, legend=False)
        assert "stops" not in art

    def test_render_network(self):
        network = uniform_deployment(count=15, seed=6)
        art = render_network(network)
        assert art.count("*") >= 1
        assert "D" in art


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert line == "".join(sorted(line))
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_width_limit(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
